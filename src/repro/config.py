"""Configuration dataclasses for every subsystem.

All scale-sensitive quantities from the paper (corpus size, candidate
budget, GA hyper-parameters from Appendix B, number of IO examples, test
suite sizes) live here so experiments can be run at laptop scale by
default and at paper scale by changing a config, not code.

Presets
-------
``NetSynConfig.small()``
    A configuration that trains and synthesizes in seconds; used by the
    unit tests and the default benchmark scale.
``NetSynConfig.paper()``
    The hyper-parameters reported in Appendix B of the paper (pool size
    100, 5 elites, 40% crossover, 30% mutation, 30,000 generations,
    3,000,000-candidate budget).  Training corpus size is still a
    parameter because the paper's 4.2M-program corpus is far beyond an
    offline CPU run.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


# ---------------------------------------------------------------------------
# DSL / data generation
# ---------------------------------------------------------------------------


@dataclass
class DSLConfig:
    """Input generation and IO-example parameters."""

    #: inclusive bounds on generated input-list lengths
    min_input_length: int = 5
    max_input_length: int = 10
    #: inclusive bounds on generated input values
    min_input_value: int = -64
    max_input_value: int = 64
    #: number of IO examples per synthesis task (``m`` in the paper)
    n_io_examples: int = 5

    def validate(self) -> None:
        if self.min_input_length < 0 or self.max_input_length < self.min_input_length:
            raise ValueError("invalid input length bounds")
        if self.min_input_value > self.max_input_value:
            raise ValueError("invalid input value bounds")
        if self.n_io_examples <= 0:
            raise ValueError("n_io_examples must be positive")


# ---------------------------------------------------------------------------
# Genetic algorithm (Appendix B)
# ---------------------------------------------------------------------------


@dataclass
class GAConfig:
    """Genetic-algorithm hyper-parameters (Appendix B of the paper)."""

    population_size: int = 100
    #: number of top genes copied unchanged to the next generation
    elite_count: int = 5
    crossover_rate: float = 0.40
    mutation_rate: float = 0.30
    max_generations: int = 30_000

    def validate(self) -> None:
        if self.population_size <= 1:
            raise ValueError("population_size must exceed 1")
        if not 0 <= self.elite_count < self.population_size:
            raise ValueError("elite_count must be in [0, population_size)")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be a probability")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be a probability")
        if self.crossover_rate + self.mutation_rate > 1.0:
            raise ValueError("crossover_rate + mutation_rate must not exceed 1")
        if self.max_generations <= 0:
            raise ValueError("max_generations must be positive")


@dataclass
class NeighborhoodConfig:
    """Restricted local neighborhood search (Section 4.2.2)."""

    enabled: bool = True
    #: "bfs" or "dfs" neighborhood construction
    strategy: str = "bfs"
    #: number of top-scoring genes whose neighborhoods are searched
    top_n: int = 3
    #: sliding window ``w`` of generations used by the saturation trigger
    window: int = 10
    #: minimum generations between two neighborhood searches
    cooldown: int = 5

    def validate(self) -> None:
        if self.strategy not in ("bfs", "dfs"):
            raise ValueError("strategy must be 'bfs' or 'dfs'")
        if self.top_n <= 0:
            raise ValueError("top_n must be positive")
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


# ---------------------------------------------------------------------------
# Neural network fitness function
# ---------------------------------------------------------------------------


@dataclass
class NNConfig:
    """Architecture of the neural-network fitness function (Figure 2)."""

    #: dimension of the learned value/function embeddings
    embedding_dim: int = 16
    #: LSTM hidden state size (also the size of the pooled encoder)
    hidden_dim: int = 32
    #: width of the fully connected head
    fc_dim: int = 32
    #: "lstm" reproduces the paper's encoder; "pooled" is a faster
    #: bag-of-embeddings MLP encoder used for quick experiments
    encoder: str = "lstm"
    #: dropout probability applied to the fully connected head during training
    dropout: float = 0.0

    def validate(self) -> None:
        if self.embedding_dim <= 0 or self.hidden_dim <= 0 or self.fc_dim <= 0:
            raise ValueError("layer sizes must be positive")
        if self.encoder not in ("lstm", "pooled"):
            raise ValueError("encoder must be 'lstm' or 'pooled'")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")


@dataclass
class TrainingConfig:
    """Phase-1 training-data generation and optimization parameters."""

    #: number of example programs in the training corpus
    corpus_size: int = 2_000
    #: length of the corpus programs (the paper trains on length-5 programs)
    program_length: int = 5
    #: IO examples per corpus program
    n_io_examples: int = 5
    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 1e-2
    validation_fraction: float = 0.1
    #: balance the CF/LCS label distribution as the paper does
    balance_labels: bool = True
    seed: int = 0

    def validate(self) -> None:
        if self.corpus_size <= 0:
            raise ValueError("corpus_size must be positive")
        if self.program_length <= 0:
            raise ValueError("program_length must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if not 0.0 < self.learning_rate:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


# ---------------------------------------------------------------------------
# NetSyn (core) and experiments
# ---------------------------------------------------------------------------

FITNESS_KINDS = ("cf", "lcs", "fp", "edit", "oracle_cf", "oracle_lcs")


@dataclass
class NetSynConfig:
    """Complete configuration of a NetSyn synthesizer."""

    #: which fitness function drives the GA: "cf", "lcs", "fp" (learned),
    #: "edit" (output edit distance) or "oracle_cf"/"oracle_lcs" (upper bound)
    fitness_kind: str = "cf"
    #: length ``L`` of candidate programs generated by the GA
    program_length: int = 5
    #: maximum number of candidate programs examined before giving up
    max_search_space: int = 50_000
    #: use the function-probability map to guide mutation (MutationFP)
    fp_guided_mutation: bool = True
    seed: int = 0
    #: memoize predicted NN-FF scores per (program, io_set) and forward
    #: only genuinely new genes each generation; False restores the
    #: historical score-everything path (the bit-identity control)
    memoize_scores: bool = True
    #: capacity of the predicted-score LRU (per fitness kind)
    score_cache_size: int = 100_000
    #: capacity of the trace-sample LRU feeding the NN-FF encoder
    sample_cache_size: int = 50_000
    #: capacity of the FP probability-map LRU (one small vector per spec)
    map_cache_size: int = 512
    #: reuse one ExecutionEngine (and its evaluation cache) across a
    #: backend's runs instead of building a fresh one per synthesis;
    #: cached values are deterministic per (program, io_set), so sharing
    #: never changes results — it only turns repeat work into lookups
    share_evaluation_cache: bool = True
    #: execute candidate populations through the columnar batch engine
    #: (:class:`repro.execution.BatchExecutionEngine`): one vectorized
    #: dispatch per unique (step, batch) with prefix sharing, instead of
    #: one compiled call per (candidate, example).  Results are value-
    #: and trace-identical to the serial path; ``False`` restores the
    #: historical per-candidate engine (the bit-identity control)
    vectorized: bool = True

    dsl: DSLConfig = field(default_factory=DSLConfig)
    ga: GAConfig = field(default_factory=GAConfig)
    neighborhood: NeighborhoodConfig = field(default_factory=NeighborhoodConfig)
    nn: NNConfig = field(default_factory=NNConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def validate(self) -> None:
        if self.fitness_kind not in FITNESS_KINDS:
            raise ValueError(f"fitness_kind must be one of {FITNESS_KINDS}")
        if self.program_length <= 0:
            raise ValueError("program_length must be positive")
        if self.max_search_space <= 0:
            raise ValueError("max_search_space must be positive")
        if min(self.score_cache_size, self.sample_cache_size, self.map_cache_size) < 0:
            raise ValueError("cache sizes must be non-negative")
        self.dsl.validate()
        self.ga.validate()
        self.neighborhood.validate()
        self.nn.validate()
        self.training.validate()

    # -- presets ---------------------------------------------------------
    @classmethod
    def small(cls, fitness_kind: str = "cf", seed: int = 0) -> "NetSynConfig":
        """A fast configuration suitable for tests and quick examples."""
        return cls(
            fitness_kind=fitness_kind,
            program_length=4,
            max_search_space=8_000,
            seed=seed,
            ga=GAConfig(population_size=40, elite_count=4, max_generations=300),
            neighborhood=NeighborhoodConfig(top_n=2, window=6),
            nn=NNConfig(embedding_dim=8, hidden_dim=16, fc_dim=16, encoder="pooled"),
            training=TrainingConfig(
                corpus_size=300,
                program_length=4,
                n_io_examples=3,
                epochs=3,
                batch_size=32,
                seed=seed,
            ),
            dsl=DSLConfig(n_io_examples=3, min_input_length=4, max_input_length=7),
        )

    @classmethod
    def paper(cls, fitness_kind: str = "cf", seed: int = 0) -> "NetSynConfig":
        """Appendix-B hyper-parameters (corpus size remains configurable)."""
        return cls(
            fitness_kind=fitness_kind,
            program_length=5,
            max_search_space=3_000_000,
            seed=seed,
            ga=GAConfig(
                population_size=100,
                elite_count=5,
                crossover_rate=0.40,
                mutation_rate=0.30,
                max_generations=30_000,
            ),
            neighborhood=NeighborhoodConfig(top_n=5, window=10),
            nn=NNConfig(embedding_dim=32, hidden_dim=64, fc_dim=64, encoder="lstm"),
            training=TrainingConfig(
                corpus_size=50_000,
                program_length=5,
                n_io_examples=5,
                epochs=40,
                batch_size=128,
                seed=seed,
            ),
            dsl=DSLConfig(n_io_examples=5),
        )

    def replace(self, **changes) -> "NetSynConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **changes)


@dataclass
class ServiceConfig:
    """Configuration of the synthesis service layer (sessions and jobs).

    ``artifact_dir`` enables fit-once-serve-many across processes: a
    session persists its trained Phase-1 artifacts there and later
    sessions warm-start from disk instead of retraining.
    """

    #: directory for persisted Phase-1 artifacts (None disables persistence)
    artifact_dir: Optional[str] = None
    #: load artifacts from ``artifact_dir`` when present
    warm_start: bool = True
    #: persist newly trained artifacts to ``artifact_dir``
    save_artifacts: bool = True
    #: default worker-process count for ``SynthesisSession.run``
    n_workers: int = 1
    #: serve Phase-1 weights to parallel workers from a shared mmap-backed
    #: segment (packed next to the persisted weights.npz) instead of
    #: pickling a full model copy into every worker process
    shared_weights: bool = True
    #: directory for the shared segment; defaults to ``artifact_dir``,
    #: falling back to a per-session temporary directory
    shared_dir: Optional[str] = None
    #: snapshot the session's evaluation/score caches into the shared
    #: segment so workers start warm (keys are process-stable)
    share_worker_caches: bool = True
    #: L2 tier: share a lock-free mmap score table (shared_scores.bin,
    #: next to the packed weights) across the parent and every worker of
    #: a parallel run, so one worker's NN forward serves all others while
    #: a job is still running.  On by default: values are deterministic
    #: per structural key so results are bit-identical to serial runs;
    #: the per-event cache *counters* are advisory under sharing (which
    #: worker scores a pair first depends on scheduling, so hit/miss
    #: trajectories can differ run to run — see docs/execution.md).
    #: Requires ``shared_weights`` (the table lives in the shared
    #: segment dir).
    shared_score_table: bool = True
    #: slot count of the shared score table (power of two; 64 B per slot)
    table_slots: int = 1 << 16
    #: coalesce worker progress events into batches of this size before
    #: they cross the multiprocessing queue (flushed when full, when the
    #: next event arrives >50 ms after the last flush, and at job end, so
    #: per-job stream order and completeness are unchanged).  1 = one
    #: queue put per event (the historical path)
    event_batch_size: int = 1
    #: fold the L3 cache log into one deduplicated segment whenever it
    #: exceeds this many segments
    cache_log_compact_threshold: int = 8
    #: stream worker-side progress events back to the parent through a
    #: multiprocessing queue (drained live by a pump thread), so session
    #: listeners observe remote jobs exactly like local ones; False
    #: restores the terminal-event-only parallel behaviour
    stream_worker_events: bool = True
    #: merge each worker's score/evaluation-cache entries back into the
    #: parent session's backend when its job completes, so one worker's
    #: NN forwards warm every later run (the merge is idempotent: cached
    #: values are deterministic per key)
    merge_worker_caches: bool = True
    #: persist the session's score/evaluation caches next to the Phase-1
    #: artifacts (``artifact_dir``) after each ``run()``, keyed by the
    #: model hash, so a re-opened session starts warm across processes
    persist_caches: bool = True
    #: budget charges between two "candidates" progress events
    progress_every: int = 50
    #: fuse concurrent same-inputs jobs of one ``run()`` call into shared
    #: columnar kernel dispatches (see :mod:`repro.execution.fusion`).
    #: Results, per-job events and budget charges are unchanged; progress
    #: events additionally carry a ``fused_dispatches`` counter
    fuse_jobs: bool = False
    #: most recent events retained on each job (older ones are dropped so
    #: paper-scale budgets cannot grow job.events without bound)
    max_events_per_job: int = 10_000

    # -- fault tolerance (the supervised worker pool) --------------------
    #: run parallel jobs under the WorkerSupervisor: heartbeats, dead/hung
    #: worker detection, bounded retries with backoff, quarantine, per-job
    #: deadlines and serial degradation.  False restores the bare
    #: multiprocessing.Pool fan-out (no recovery; a killed worker hangs
    #: the run — the historical behaviour)
    supervised: bool = True
    #: how many times a job whose worker crashed is re-run before it is
    #: quarantined (ends ``failed`` with a FailureReport); a poison job
    #: therefore runs at most ``1 + max_job_retries`` times
    max_job_retries: int = 2
    #: base delay before a crashed job's first retry; doubles per attempt
    retry_backoff: float = 0.05
    #: upper bound on the exponential retry backoff
    retry_backoff_max: float = 2.0
    #: deterministic jitter fraction added to each backoff (seeded by the
    #: fault plan / session seed, job index and attempt)
    retry_jitter: float = 0.25
    #: seconds between two heartbeat events from an idle-or-busy worker
    #: (heartbeats travel the event queue; requires stream_worker_events)
    heartbeat_interval: float = 0.25
    #: a worker whose last heartbeat is older than this while it runs a
    #: job is considered hung and is hard-killed (its job is retried)
    heartbeat_timeout: float = 15.0
    #: per-job wall-clock deadline in seconds (None = no deadline): an
    #: overdue job is first cancelled cooperatively via its shared flag,
    #: then its worker is hard-killed after ``deadline_grace``
    job_deadline: Optional[float] = None
    #: seconds between the cooperative deadline cancel and the hard kill
    deadline_grace: float = 2.0
    #: total worker crashes after which the pool is abandoned and the
    #: remaining jobs run serially in the parent (``degraded_serial``)
    max_pool_crashes: int = 8
    #: deterministic fault-injection plan (repro.execution.faults.FaultPlan)
    #: installed in the parent and shipped to every worker; None in
    #: production — this knob exists so every recovery path above is
    #: exercised by tests and the CI chaos job
    fault_plan: Optional[Any] = None

    # -- serving (the network layer, repro.serving) ----------------------
    #: ``host:port`` of a synthesis server whose score pool this session
    #: consults as its L4 cache tier (misses that fall through L1-L3 ask
    #: the server; computed scores are pushed back asynchronously).
    #: None — the default — keeps the session fully local.
    remote_score_cache: Optional[str] = None

    def __post_init__(self) -> None:
        # validate at construction: a bad knob should fail here with a
        # clear ValueError, not surface later as an opaque mmap/queue
        # failure inside a worker process
        self.validate()

    def validate(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.progress_every < 1:
            raise ValueError("progress_every must be at least 1")
        if self.max_events_per_job < 1:
            raise ValueError("max_events_per_job must be at least 1")
        if self.table_slots <= 0 or self.table_slots & (self.table_slots - 1):
            raise ValueError("table_slots must be a positive power of two")
        if self.event_batch_size < 1:
            raise ValueError("event_batch_size must be at least 1")
        if self.cache_log_compact_threshold < 1:
            raise ValueError("cache_log_compact_threshold must be at least 1")
        if self.max_job_retries < 0:
            raise ValueError("max_job_retries must be non-negative")
        if self.retry_backoff < 0 or self.retry_backoff_max < self.retry_backoff:
            raise ValueError(
                "retry_backoff must be non-negative and <= retry_backoff_max"
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if self.job_deadline is not None and self.job_deadline <= 0:
            raise ValueError("job_deadline must be positive (or None)")
        if self.deadline_grace < 0:
            raise ValueError("deadline_grace must be non-negative")
        if self.max_pool_crashes < 1:
            raise ValueError("max_pool_crashes must be at least 1")
        if self.fault_plan is not None and hasattr(self.fault_plan, "validate"):
            self.fault_plan.validate()
        if self.remote_score_cache is not None:
            parse_address(self.remote_score_cache)


def parse_address(address: str) -> Tuple[str, int]:
    """Split a ``host:port`` string, validating the port.

    The one address syntax used across the serving layer (server bind
    address, client connect address, ``remote_score_cache``).  IPv6
    literals use the usual bracket form (``[::1]:7777``).
    """
    if not isinstance(address, str) or ":" not in address:
        raise ValueError(f"address must be 'host:port', got {address!r}")
    host, _, port_text = address.rpartition(":")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in address {address!r}") from None
    if not host or not 0 <= port <= 65535:
        raise ValueError(f"invalid address {address!r}")
    return host, port


@dataclass
class ServingConfig:
    """Configuration of the network synthesis service (``repro.serving``).

    One server owns one warm :class:`~repro.core.service.SynthesisSession`
    and serves many concurrent client connections: job submission with
    bounded admission, live wire-streamed progress events, cancellation,
    and the shared L4 score pool.
    """

    #: bind host of the server
    host: str = "127.0.0.1"
    #: bind port; 0 picks an ephemeral port (read it off ``server.port``)
    port: int = 0
    #: admission bound: jobs admitted but not yet settled.  A submit
    #: beyond this is rejected with an ``over_capacity`` error frame
    #: carrying ``retry_after`` — backpressure by rejection, never by
    #: stalling the accept loop
    max_pending_jobs: int = 64
    #: retry hint (seconds) returned with ``over_capacity`` rejections
    retry_after: float = 0.5
    #: worker-process count the server schedules each batch with
    #: (forwarded to ``SynthesisSession.run``); 1 = serial in-server
    n_workers: int = 1
    #: how long the scheduler waits after the first queued job for more
    #: submissions before starting the batch — the micro-batching window
    #: that lets concurrent clients coalesce into one parallel run
    batch_window: float = 0.05
    #: hard bound on a single wire frame (a frame larger than this is a
    #: protocol error and closes the connection)
    max_frame_bytes: int = 16 * 1024 * 1024
    #: score-pool pushes are batched: a client tier flushes its queue as
    #: one ``cache_put`` frame when it holds this many entries
    push_batch_size: int = 128
    #: ... or when the oldest queued entry is this old (seconds)
    push_interval: float = 0.25
    #: honour ``shutdown`` frames from clients (tests and examples);
    #: production servers keep this off and stop from their own process
    allow_remote_shutdown: bool = False
    #: directory of the crash-safe write-ahead job journal
    #: (:mod:`repro.serving.journal`); ``None`` disables durability — a
    #: crashed server then loses its in-flight and queued jobs
    journal_dir: Optional[str] = None
    #: journal size (bytes) past which a settle triggers compaction
    journal_compact_bytes: int = 4 * 1024 * 1024
    #: fsync every journal record (survives machine crash, not just
    #: process death) at a per-record fsync cost
    journal_fsync: bool = False
    #: seconds a graceful drain (SIGTERM / ``request_drain``) waits for
    #: running jobs before stopping anyway (leftovers stay journaled)
    drain_timeout: float = 30.0
    #: fuse co-admitted jobs that share example inputs into the same
    #: columnar kernel dispatches (forwarded to the session's
    #: ``ServiceConfig.fuse_jobs``); per-job results, event streams and
    #: budget charges are unchanged — see docs/serving.md
    fuse_jobs: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.host:
            raise ValueError("host must be non-empty")
        if not 0 <= self.port <= 65535:
            raise ValueError("port must be in [0, 65535]")
        if self.max_pending_jobs < 1:
            raise ValueError("max_pending_jobs must be at least 1")
        if self.retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.max_frame_bytes < 1024:
            raise ValueError("max_frame_bytes must be at least 1 KiB")
        if self.push_batch_size < 1:
            raise ValueError("push_batch_size must be at least 1")
        if self.push_interval <= 0:
            raise ValueError("push_interval must be positive")
        if self.journal_compact_bytes < 4096:
            raise ValueError("journal_compact_bytes must be at least 4 KiB")
        if self.drain_timeout < 0:
            raise ValueError("drain_timeout must be non-negative")

    @property
    def address(self) -> str:
        """The ``host:port`` string clients connect to."""
        return f"{self.host}:{self.port}"


@dataclass
class ExperimentConfig:
    """Configuration of an evaluation experiment (a table or figure)."""

    #: program lengths evaluated (the paper uses 5, 7 and 10)
    lengths: Tuple[int, ...] = (5, 7, 10)
    #: number of test programs per length (paper: 100 — 50 singleton + 50 list)
    n_test_programs: int = 20
    #: number of synthesis runs per program (``K`` in the paper; 10)
    n_runs: int = 3
    #: candidate-program budget per run (paper: 3,000,000)
    max_search_space: int = 20_000
    #: methods to evaluate, by registry name
    methods: Tuple[str, ...] = ("netsyn_cf", "netsyn_lcs", "netsyn_fp")
    #: master seed
    seed: int = 0
    #: scale multiplier applied to n_test_programs / n_runs / budget
    scale: float = 1.0

    def scaled(self) -> "ExperimentConfig":
        """Apply the ``scale`` multiplier (and the ``NETSYN_SCALE`` env var)."""
        scale = self.scale * float(os.environ.get("NETSYN_SCALE", "1.0"))
        return dataclasses.replace(
            self,
            n_test_programs=max(1, int(round(self.n_test_programs * scale))),
            n_runs=max(1, int(round(self.n_runs * scale))),
            max_search_space=max(100, int(round(self.max_search_space * scale))),
            scale=1.0,
        )

    def validate(self) -> None:
        if not self.lengths:
            raise ValueError("at least one program length is required")
        if self.n_test_programs <= 0 or self.n_runs <= 0:
            raise ValueError("n_test_programs and n_runs must be positive")
        if self.max_search_space <= 0:
            raise ValueError("max_search_space must be positive")
        if not self.methods:
            raise ValueError("at least one method is required")
