"""Memoization of predicted NN-FF fitness per ``(program, io_set)``.

The GA re-scores its whole population every generation, but most members
— elites, reproduced survivors, genes re-visited by the neighborhood
search — were already scored in an earlier generation.  Pre-memoization
the NN forward pass could not skip them: padding widths (and the BLAS
kernels selected for the batch) depended on batch composition, so the
same program could score differently depending on who it shared a batch
with.  With the batch-shape-invariant encoder/model path (fixed padding
widths, trailing-pad trimming, never-singleton GEMM batches) a program's
predicted fitness is one well-defined number, and this module caches it:

* :class:`LRUCache` — a generic bounded least-recently-used store with
  hit/miss/eviction counters (also used to bound the fitness layer's
  sample and probability-map caches).
* :class:`ScoreCache` — an LRU of predicted fitness values keyed by the
  structural ``(program, io_set)`` keys of :mod:`repro.execution.cache`
  (process-stable, so contents can be snapshotted across workers), plus
  the batch-partitioning helper the fitness layer uses to forward only
  genuinely new genes.

Memoized values are deterministic functions of ``(program, io_set)``, so
— exactly like the :class:`~repro.execution.cache.EvaluationCache` —
the cache can never change the result of a run, only its cost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.program import Program
from repro.execution.cache import CacheStats, program_key, stage_newest

_MISSING = object()


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    Parameters
    ----------
    capacity:
        Maximum number of entries.  When the bound is reached the least
        recently *used* (read or written) entry is evicted.  ``0``
        disables storage entirely: every ``get`` misses and ``put`` is a
        no-op, which is how the bit-identity controls are built.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._store: "OrderedDict[Hashable, Any]" = OrderedDict()
        #: keys written since the last :meth:`clear_dirty` — the delta
        #: journal parallel workers export instead of the whole cache
        self._dirty: set = set()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, key: Hashable, default: Any = None, namespace: str = "lru") -> Any:
        """Cached value (marking it most-recently-used) or ``default``."""
        value = self._store.get(key, _MISSING)
        hit = value is not _MISSING
        self.stats.record(namespace, hit)
        if not hit:
            return default
        self._store.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but touching neither counters nor recency."""
        value = self._store.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the least recently used entry if full."""
        if not self.enabled:
            return
        if key in self._store:
            self._store.move_to_end(key)
        elif len(self._store) >= self.capacity:
            self._store.popitem(last=False)
            self.stats.evictions += 1
        self._store[key] = value
        self._dirty.add(key)
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._store.clear()
        self._dirty.clear()

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Snapshot of the entries, least recently used first."""
        return list(self._store.items())

    # ------------------------------------------------------------------
    def clear_dirty(self) -> None:
        """Start a fresh delta window (e.g. at the start of a worker job)."""
        self._dirty.clear()

    def dirty_items(self) -> List[Tuple[Hashable, Any]]:
        """Entries written since :meth:`clear_dirty`, in store order.

        Keys evicted after being written are silently absent — a delta
        only ships values that still exist.  This is what bounds the
        merge-back payload of a parallel job to the entries *that job*
        computed rather than the whole cache.
        """
        if not self._dirty:
            return []
        return [(key, value) for key, value in self._store.items() if key in self._dirty]

    def load(self, items: Sequence[Tuple[Hashable, Any]]) -> int:
        """Bulk-insert snapshot entries (e.g. from another process).

        Returns the number of entries retained after the bound is applied
        (a snapshot larger than the capacity keeps only its newest
        entries; a disabled cache retains nothing).  Existing entries are
        overwritten — values are deterministic per key, so this can only
        refresh recency.

        The input streams through a staging dict bounded by ``capacity``:
        loading a snapshot (or a whole L3 cache log) never materializes
        more than ``capacity`` entries at once, no matter how large the
        source is.  Any iterable works, oldest entry first.
        """
        if not self.enabled:
            # drain the iterable without storing anything (parity with a
            # put loop on a disabled cache)
            for _ in items:
                pass
            return 0
        staged = stage_newest(items, self.capacity)
        for key, value in staged.items():
            self.put(key, value)
        # count after the fact: staged entries can still evict each other's
        # survivors when the cache already held other keys
        return sum(1 for key in staged if key in self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(entries={len(self._store)}, capacity={self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )


class ScoreCache:
    """Predicted-fitness memo keyed by structural ``(program, io_set)`` keys.

    One instance serves one scoring model (the namespace keeps two models
    from ever reading each other's values).  Keys are process-stable, so
    snapshots taken with :meth:`snapshot` can warm-start the score cache
    of a worker process (see ``docs/execution.md``).
    """

    def __init__(self, capacity: int = 100_000, namespace: str = "score") -> None:
        self.namespace = namespace
        self._lru = LRUCache(capacity)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._lru.capacity

    @property
    def enabled(self) -> bool:
        return self._lru.enabled

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    # ------------------------------------------------------------------
    def get(self, program: Program, io_key: Tuple) -> Optional[float]:
        """Cached predicted fitness of ``program`` on the spec, or ``None``."""
        return self._lru.get((program_key(program), io_key), namespace=self.namespace)

    def put(self, program: Program, io_key: Tuple, value: float) -> None:
        self._lru.put((program_key(program), io_key), float(value))

    def put_key(self, key: Tuple[int, ...], io_key: Tuple, value: float) -> None:
        """Store by precomputed program key (used by the batch fill path)."""
        self._lru.put((key, io_key), float(value))

    # ------------------------------------------------------------------
    def partition(
        self, programs: Sequence[Program], io_key: Tuple
    ) -> Tuple[np.ndarray, "OrderedDict[Tuple[int, ...], Tuple[Program, List[int]]]"]:
        """Split a population into cached scores and genes still to forward.

        Returns ``(scores, pending)`` where ``scores[i]`` is filled for
        every cache hit and ``pending`` maps each *distinct* uncached
        program key — in first-occurrence order, so forward batches are
        deterministic — to ``(program, positions)``; duplicated genes are
        forwarded once and fanned out to every position.
        """
        scores = np.zeros(len(programs))
        pending: "OrderedDict[Tuple[int, ...], Tuple[Program, List[int]]]" = OrderedDict()
        for index, program in enumerate(programs):
            key = program_key(program)
            cached = self._lru.get((key, io_key), _MISSING, namespace=self.namespace)
            if cached is not _MISSING:
                scores[index] = cached
            elif key in pending:
                pending[key][1].append(index)
            else:
                pending[key] = (program, [index])
        return scores, pending

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Tuple[Hashable, float]]:
        """Picklable contents (keys are structural, so cross-process safe)."""
        return self._lru.items()

    def clear_dirty(self) -> None:
        """Start a fresh delta window (see :meth:`LRUCache.clear_dirty`)."""
        self._lru.clear_dirty()

    def dirty_snapshot(self) -> List[Tuple[Hashable, float]]:
        """Entries written since :meth:`clear_dirty` (the merge-back delta)."""
        return self._lru.dirty_items()

    def load_snapshot(self, items: Sequence[Tuple[Hashable, float]]) -> int:
        """Warm-start from a snapshot taken in another process."""
        return self._lru.load(items)

    def clear(self) -> None:
        self._lru.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScoreCache(namespace={self.namespace!r}, entries={len(self)}, "
            f"capacity={self.capacity}, hit_rate={self.stats.hit_rate:.3f})"
        )


class TieredScoreCache(ScoreCache):
    """The score-cache facade over the cache tiers (see ``docs/execution.md``).

    * **L1** — the per-process :class:`ScoreCache` LRU this class *is*.
    * **L2** — an optional
      :class:`~repro.execution.shared_table.SharedScoreTable`: a
      lock-free mmap hash shared by every process of a parallel session.
      L1 misses fall through to L2, and L2 hits are promoted into L1
      (which also marks them dirty, so the parent's next L3 segment
      persists scores first computed by a worker).  Writes go through to
      both tiers.
    * **L3** — the append-only persistent cache log; it never appears
      here directly: segments are loaded into L1 via
      :meth:`load_snapshot` at session open and appended from L1's dirty
      window at persist time (``ArtifactStore.save_caches``).
    * **L4** — an optional *remote* score tier (see
      ``repro.serving.cache_tier``): misses that fall through L1 and L2
      consult a network score server shared by a whole fleet of hosts,
      and locally computed scores are pushed back asynchronously.  Like
      L2 it speaks 64-bit structural keys; remote hits are promoted into
      L1 (and published to L2 when a table is attached) and counted on
      ``stats.remote_hits``.

    With no table and no remote tier attached (the default) this class
    behaves exactly like :class:`ScoreCache`, which is what keeps the
    defaults-off serial path bit-identical.  Because every value is a
    deterministic function of its structural key, serving a value from
    any tier yields the same number — tiering changes where work
    happens, never what a run computes.
    """

    def __init__(
        self, capacity: int = 100_000, namespace: str = "score", table=None, remote=None
    ) -> None:
        super().__init__(capacity=capacity, namespace=namespace)
        self._table = table
        self._remote = remote
        #: io_key -> 32-byte digest memo (a run touches a handful of
        #: specs; hashing the spec once amortizes the dominant key bytes)
        self._io_tokens: "OrderedDict[Tuple, bytes]" = OrderedDict()

    # ------------------------------------------------------------------
    @property
    def table(self):
        """The attached L2 shared table (None when running single-tier)."""
        return self._table

    def attach_table(self, table) -> None:
        """Attach (or replace) the L2 shared table."""
        self._table = table

    @property
    def remote(self):
        """The attached L4 remote score tier (None when offline)."""
        return self._remote

    def attach_remote(self, remote) -> None:
        """Attach (or replace) the L4 remote score tier.

        ``remote`` needs two methods: ``get(key64) -> Optional[float]``
        (a synchronous lookup against the shared pool) and
        ``put(key64, value)`` (an asynchronous push — the tier buffers
        and batches; a slow or dead server must never block scoring).
        """
        self._remote = remote

    def _key64(self, key: Tuple[int, ...], io_key: Tuple) -> int:
        from repro.execution.shared_table import io_token, structural_key64

        token = self._io_tokens.get(io_key)
        if token is None:
            token = io_token(io_key)
            if len(self._io_tokens) >= 32:
                self._io_tokens.popitem(last=False)
            self._io_tokens[io_key] = token
        return structural_key64(key, token)

    def _shared_get(self, key: Tuple[int, ...], io_key: Tuple) -> Optional[float]:
        """L2 lookup; hits are promoted into L1 and counted on its stats."""
        if self._table is None:
            return None
        entry = self._table.get(self._key64(key, io_key))
        if entry is None:
            return None
        value, cross = entry
        self._lru.stats.shared_hits += 1
        if cross:
            self._lru.stats.shared_cross_hits += 1
        self._lru.put((key, io_key), value)
        return value

    def _shared_put(self, key: Tuple[int, ...], io_key: Tuple, value: float) -> None:
        if self._table is not None:
            self._table.put(self._key64(key, io_key), value)

    def _remote_get(self, key: Tuple[int, ...], io_key: Tuple) -> Optional[float]:
        """L4 lookup; hits are promoted into L1 (and published to L2)."""
        if self._remote is None:
            return None
        value = self._remote.get(self._key64(key, io_key))
        if value is None:
            return None
        self._lru.stats.remote_hits += 1
        self._lru.put((key, io_key), value)
        if self._table is not None:
            self._table.put(self._key64(key, io_key), value)
        return value

    def _remote_put(self, key: Tuple[int, ...], io_key: Tuple, value: float) -> None:
        if self._remote is not None:
            self._remote.put(self._key64(key, io_key), value)

    def _fallthrough_get(self, key: Tuple[int, ...], io_key: Tuple) -> Optional[float]:
        """L2 then L4, in tier order (used after every L1 miss)."""
        value = self._shared_get(key, io_key)
        if value is not None:
            return value
        return self._remote_get(key, io_key)

    # ------------------------------------------------------------------
    def get(self, program: Program, io_key: Tuple) -> Optional[float]:
        key = program_key(program)
        cached = self._lru.get((key, io_key), _MISSING, namespace=self.namespace)
        if cached is not _MISSING:
            return cached
        return self._fallthrough_get(key, io_key)

    def put(self, program: Program, io_key: Tuple, value: float) -> None:
        super().put(program, io_key, value)
        self._shared_put(program_key(program), io_key, float(value))
        self._remote_put(program_key(program), io_key, float(value))

    def put_key(self, key: Tuple[int, ...], io_key: Tuple, value: float) -> None:
        super().put_key(key, io_key, value)
        self._shared_put(key, io_key, float(value))
        self._remote_put(key, io_key, float(value))

    def partition(
        self, programs: Sequence[Program], io_key: Tuple
    ) -> Tuple[np.ndarray, "OrderedDict[Tuple[int, ...], Tuple[Program, List[int]]]"]:
        if self._table is None and self._remote is None:
            return super().partition(programs, io_key)
        scores = np.zeros(len(programs))
        pending: "OrderedDict[Tuple[int, ...], Tuple[Program, List[int]]]" = OrderedDict()
        for index, program in enumerate(programs):
            key = program_key(program)
            cached = self._lru.get((key, io_key), _MISSING, namespace=self.namespace)
            if cached is not _MISSING:
                scores[index] = cached
            elif key in pending:
                pending[key][1].append(index)
            else:
                shared = self._fallthrough_get(key, io_key)
                if shared is not None:
                    scores[index] = shared
                else:
                    pending[key] = (program, [index])
        return scores, pending

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tiers = "L1" + ("+L2" if self._table is not None else "")
        tiers += "+L4" if self._remote is not None else ""
        return (
            f"TieredScoreCache({tiers}, namespace={self.namespace!r}, "
            f"entries={len(self)}, capacity={self.capacity})"
        )
