"""Execution subsystem: compiled programs, evaluation caching, shared engines.

This package owns *how* candidate programs get executed during Phase-2
search.  The DSL package defines the semantics (reference interpreter and
the static-binding compiler); this package layers memoization on top and
hands every search component — GA engine, fitness functions, neighborhood
search — one shared :class:`ExecutionEngine` so a candidate is executed at
most once per IO specification per run.
"""

from repro.execution.cache import (
    CacheStats,
    EvaluationCache,
    freeze_value,
    io_set_key,
    program_key,
)
from repro.execution.engine import ExecutionEngine, uncached_engine
from repro.execution.faults import Fault, FaultInjected, FaultPlan
from repro.execution.fusion import FusedBatchEngine, FusionPlane, inputs_key
from repro.execution.score_cache import LRUCache, ScoreCache, TieredScoreCache
from repro.execution.shared_table import SharedScoreTable
from repro.execution.vectorized import BatchExecutionEngine, ColumnarEvaluator

__all__ = [
    "BatchExecutionEngine",
    "CacheStats",
    "ColumnarEvaluator",
    "EvaluationCache",
    "ExecutionEngine",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "FusedBatchEngine",
    "FusionPlane",
    "LRUCache",
    "ScoreCache",
    "SharedScoreTable",
    "TieredScoreCache",
    "freeze_value",
    "inputs_key",
    "io_set_key",
    "program_key",
    "uncached_engine",
]
