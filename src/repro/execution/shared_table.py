"""Lock-free shared score table: an open-addressed hash over ``mmap``.

This is the **L2** tier of the score-cache stack (see
``docs/execution.md``): a fixed-size table of ``key64 -> float64``
entries living in one flat file next to ``shared_weights.bin``, mapped
read-write by every process of a parallel session.  One worker's NN
forward pass becomes visible to all other workers *while the job is
still running* — the per-job delta merge (L1 -> parent) only lands when
a job completes, which at paper-scale budgets is far too late.

Design
------
The table is an open-addressed hash with bounded linear probing.  Each
slot is one 64-byte cache line of five used words::

    word 0  seq     0 = empty, odd = write in progress, even > 0 = published
    word 1  key     64-bit structural key (see :func:`structural_key64`)
    word 2  value   IEEE-754 bits of the float64 score
    word 3  check   mix64 digest of (key, value, writer)
    word 4  writer  pid of the storing process (cross-worker hit counters)

Publication follows the seqlock pattern: a writer claims an empty slot
by storing an odd ``seq``, fills the payload words, then stores the
final even ``seq``.  A reader loads ``seq``, the payload, and ``seq``
again, and accepts the entry only when both loads observed the same
published (even, non-zero) value *and* the ``check`` word matches the
payload.  Aligned 8-byte stores are single machine stores under CPython
on every platform we target, and the checksum makes the (already
astronomically unlikely) interleaving of two writers racing for one
slot detectable: a slot whose words come from two different writes
fails the ``check`` validation and reads as a miss.

Because every value is a deterministic function of its key, the table
needs no deletes, no updates and no locks: a lost race simply drops one
cache entry, and a duplicate insert stores the identical bytes.  A full
probe chain drops the entry too (``stats.drops``) — this is a cache,
not a store of record.

Keys are 64-bit structural digests, so two distinct ``(program,
io_set)`` pairs can in principle collide; at the default 2^16 slots and
paper-scale key counts the birthday probability is ~1e-9 per run, and a
collision can only substitute one deterministic score for another (it
cannot corrupt memory or crash a run).  The file is keyed by
``ArtifactStore.model_hash()`` because cached scores are functions of
the model weights: :meth:`SharedScoreTable.ensure` silently recreates a
table whose hash no longer matches.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

#: file name of the packed table, next to ``shared_weights.bin``
SHARED_SCORES_BIN = "shared_scores.bin"

_MAGIC = 0x4E53_4C32_5343_4F52  # "NSL2SCOR"
_FORMAT_VERSION = 1
#: header: magic, version, n_slots, max_probe, 32-byte model hash -> 64B
_HEADER_BYTES = 64
#: one slot per cache line: seq, key, value, check, writer, 3 words pad
_SLOT_WORDS = 8
_SLOT_BYTES = _SLOT_WORDS * 8

_W_SEQ, _W_KEY, _W_VALUE, _W_CHECK, _W_WRITER = 0, 1, 2, 3, 4

_M64 = (1 << 64) - 1

#: how far a probe chain may run before an insert is dropped / a lookup
#: gives up; chains this long only appear near pathological load factors
_MAX_PROBE = 64


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, well-distributed 64-bit mix."""
    x &= _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


def _check_word(key: int, value_bits: int, writer: int) -> int:
    """The slot checksum: detects payload words from two different writes.

    The mixes are chained, not XOR-combined, so the digest is asymmetric
    in its operands (swapping key and value bits changes it).
    """
    return _mix64(key ^ _mix64(value_bits ^ _mix64(writer)))


def _float_bits(value: float) -> int:
    return int(np.float64(value).view(np.uint64))


def _bits_float(bits: int) -> float:
    return float(np.uint64(bits).view(np.float64))


def io_token(io_key: Tuple) -> bytes:
    """A 32-byte digest of a structural IO key (the per-spec half of a key).

    Computed once per specification and reused for every program keyed
    against it — the IO key dominates the bytes of a structural key.
    """
    return hashlib.blake2b(
        pickle.dumps(io_key, protocol=4), digest_size=32
    ).digest()


def structural_key64(program_key: Tuple[int, ...], token: bytes) -> int:
    """The table's 64-bit key for ``(program_key, io_key)``.

    Deterministic across processes (structural inputs, fixed pickle
    protocol, keyed blake2b), which is what lets any worker read any
    other worker's entries.
    """
    digest = hashlib.blake2b(
        pickle.dumps(program_key, protocol=4), digest_size=8, key=token
    ).digest()
    return int.from_bytes(digest, "little")


class SharedTableStats:
    """Process-local counters of one attached table (never in the file)."""

    __slots__ = ("hits", "misses", "cross_hits", "stores", "drops")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.cross_hits = 0
        self.stores = 0
        self.drops = 0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cross_hits": self.cross_hits,
            "stores": self.stores,
            "drops": self.drops,
        }


class SharedScoreTable:
    """One process's handle on the shared mmap score table.

    Create the file once in the parent (:meth:`create` / :meth:`ensure`),
    then :meth:`attach` from any number of reader/writer processes.  All
    operations are wait-free: no locks are taken and no operation blocks
    on another process.
    """

    def __init__(self, path: Path, words: np.memmap, n_slots: int) -> None:
        self.path = Path(path)
        self._words = words
        self.n_slots = int(n_slots)
        self._mask = self.n_slots - 1
        self._writer = os.getpid() & _M64
        self.stats = SharedTableStats()

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path, n_slots: int = 1 << 16, model_hash: str = ""
    ) -> "SharedScoreTable":
        """Write a fresh zeroed table file and attach it."""
        if n_slots <= 0 or n_slots & (n_slots - 1):
            raise ValueError("n_slots must be a positive power of two")
        path = Path(path)
        header = np.zeros(_HEADER_BYTES // 8, dtype="<u8")
        header[0] = _MAGIC
        header[1] = _FORMAT_VERSION
        header[2] = n_slots
        header[3] = _MAX_PROBE
        digest = bytes.fromhex(model_hash) if model_hash else b"\0" * 32
        header_bytes = header.tobytes()[:32] + digest.ljust(32, b"\0")[:32]
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as handle:
            handle.write(header_bytes)
            handle.truncate(_HEADER_BYTES + n_slots * _SLOT_BYTES)
        os.replace(tmp, path)
        return cls.attach(path)

    @classmethod
    def attach(cls, path) -> "SharedScoreTable":
        """Map an existing table file read-write (any process, any time)."""
        path = Path(path)
        with path.open("rb") as handle:
            header = np.frombuffer(handle.read(32), dtype="<u8")
        if len(header) < 4 or int(header[0]) != _MAGIC:
            raise ValueError(f"{path} is not a shared score table")
        if int(header[1]) != _FORMAT_VERSION:
            raise ValueError(
                f"shared score table {path} has format {int(header[1])}, "
                f"expected {_FORMAT_VERSION}"
            )
        n_slots = int(header[2])
        if n_slots <= 0 or n_slots & (n_slots - 1):
            raise ValueError(
                f"shared score table {path} has a torn header (n_slots={n_slots})"
            )
        expected_size = _HEADER_BYTES + n_slots * _SLOT_BYTES
        actual_size = path.stat().st_size
        if actual_size < expected_size:
            # e.g. the creating process was killed between the header
            # write and the truncate-to-size: mapping would either fail
            # or fault on first slot access, so reject it up front
            raise ValueError(
                f"shared score table {path} is truncated "
                f"({actual_size} bytes, expected {expected_size})"
            )
        words = np.memmap(
            path,
            dtype="<u8",
            mode="r+",
            offset=_HEADER_BYTES,
            shape=(n_slots, _SLOT_WORDS),
        )
        return cls(path, words, n_slots)

    @classmethod
    def ensure(
        cls, path, n_slots: int = 1 << 16, model_hash: str = ""
    ) -> "SharedScoreTable":
        """Attach the table at ``path``, recreating it when stale.

        "Stale" means missing, unreadable, torn (bad magic/version or a
        file shorter than its header claims — e.g. the creator was
        killed mid-create), differently sized, or written under
        different model weights — cached scores are functions of the
        weights, so a table surviving from an earlier session must not
        serve a retrained model.
        """
        path = Path(path)
        if path.is_file():
            try:
                with path.open("rb") as handle:
                    header = np.frombuffer(handle.read(32), dtype="<u8")
                if (
                    len(header) == 4
                    and int(header[0]) == _MAGIC
                    and int(header[1]) == _FORMAT_VERSION
                    and int(header[2]) == n_slots
                    and path.stat().st_size >= _HEADER_BYTES + n_slots * _SLOT_BYTES
                    and cls.stored_model_hash(path) == (model_hash or "")
                ):
                    return cls.attach(path)
            except (OSError, ValueError):
                pass
        return cls.create(path, n_slots=n_slots, model_hash=model_hash)

    @staticmethod
    def stored_model_hash(path) -> str:
        """The model hash recorded in the table header ("" when unset)."""
        with Path(path).open("rb") as handle:
            handle.seek(32)
            digest = handle.read(32)
        return "" if digest == b"\0" * 32 else digest.hex()

    # ------------------------------------------------------------------
    def get(self, key64: int) -> Optional[Tuple[float, bool]]:
        """Published value for ``key64`` as ``(value, cross_process)``.

        ``cross_process`` is True when the entry was stored by another
        process — the counter the cross-worker sharing guarantee is
        asserted on.  Returns None on a miss, an in-progress write, or a
        torn/invalid slot (all indistinguishable from "not cached yet").
        """
        words = self._words
        index = key64 & self._mask
        for _ in range(_MAX_PROBE):
            slot = words[index]
            seq = int(slot[_W_SEQ])
            if seq == 0:
                break  # empty slot terminates the probe chain
            if not seq & 1:
                key = int(slot[_W_KEY])
                if key == key64:
                    value_bits = int(slot[_W_VALUE])
                    check = int(slot[_W_CHECK])
                    writer = int(slot[_W_WRITER])
                    # seqlock validation: the slot must not have changed
                    # under us, and the payload words must belong to one
                    # write (the checksum rejects mixed-writer payloads)
                    if int(words[index, _W_SEQ]) == seq and check == _check_word(
                        key, value_bits, writer
                    ):
                        self.stats.hits += 1
                        cross = writer != self._writer
                        if cross:
                            self.stats.cross_hits += 1
                        return _bits_float(value_bits), cross
                    break  # torn or racing: read as a miss
            # odd seq (write in progress) or a different key: probe on
            index = (index + 1) & self._mask
        self.stats.misses += 1
        return None

    def put(self, key64: int, value: float) -> bool:
        """Publish ``value`` under ``key64`` (idempotent; may drop when full).

        Returns True when the entry is (already or newly) published.
        """
        words = self._words
        value_bits = _float_bits(value)
        index = key64 & self._mask
        for _ in range(_MAX_PROBE):
            seq = int(words[index, _W_SEQ])
            if seq == 0:
                # claim: odd seq -> payload -> even seq (the seqlock)
                words[index, _W_SEQ] = 1
                words[index, _W_KEY] = key64
                words[index, _W_VALUE] = value_bits
                words[index, _W_CHECK] = _check_word(key64, value_bits, self._writer)
                words[index, _W_WRITER] = self._writer
                words[index, _W_SEQ] = 2
                self.stats.stores += 1
                return True
            if not seq & 1 and int(words[index, _W_KEY]) == key64:
                return True  # someone already published this key
            # occupied by another key or mid-write: probe on
            index = (index + 1) & self._mask
        self.stats.drops += 1
        return False

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of published slots (a full scan; for tests/benchmarks)."""
        seqs = np.asarray(self._words[:, _W_SEQ])
        return int(np.count_nonzero((seqs != 0) & (seqs % 2 == 0)))

    def __len__(self) -> int:
        return self.occupancy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharedScoreTable(path={str(self.path)!r}, slots={self.n_slots}, "
            f"hits={self.stats.hits}, cross={self.stats.cross_hits})"
        )
