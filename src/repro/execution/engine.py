"""The execution engine: compiled, cached program evaluation.

:class:`ExecutionEngine` is the single entry point the GA engine, the
fitness functions and the neighborhood search use to execute candidate
programs against an IO specification.  It combines

* the compile-once execution path (:mod:`repro.dsl.compiler`), and
* an :class:`~repro.execution.cache.EvaluationCache` memoizing outputs,
  execution traces and solution verdicts per ``(program, io_set)``,

so one candidate is interpreted at most once per specification no matter
how many layers ask about it.  Traces subsume outputs: when a trace is
already cached, outputs are derived from it instead of re-executing.

All results are deterministic functions of ``(program, io_set)``, so
caching never changes the semantics of a run — seeded GA runs are
bit-identical with and without the cache (tested in
``tests/test_execution_engine.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dsl.compiler import compile_program, input_signature
from repro.dsl.equivalence import IOSet
from repro.dsl.interpreter import ExecutionTrace
from repro.dsl.program import Program
from repro.dsl.types import Value, values_equal
from repro.execution.cache import EvaluationCache, io_set_key, program_key

#: cache namespaces
_NS_OUTPUTS = "outputs"
_NS_TRACES = "traces"
_NS_SOLUTIONS = "solutions"


class ExecutionEngine:
    """Compiled + cached evaluation of programs against IO specifications.

    Parameters
    ----------
    cache:
        The shared :class:`EvaluationCache`; a fresh bounded cache is
        created when omitted.  Pass ``EvaluationCache(max_entries=0)``
        for an uncached engine (results are still compiled).
    compiled:
        When False, fall back to the reference interpreter for execution
        (used to cross-check the compiled path).
    """

    def __init__(self, cache: Optional[EvaluationCache] = None, compiled: bool = True) -> None:
        self.cache = cache if cache is not None else EvaluationCache()
        self.compiled = bool(compiled)
        # identity-keyed memo of io_set -> structural key; a run touches a
        # handful of specifications, each looked up thousands of times.
        # Holding the io_set strongly pins its id, so ids cannot be reused.
        self._io_key_memo: List[Tuple[IOSet, Tuple]] = []

    # ------------------------------------------------------------------
    def io_key(self, io_set: IOSet) -> Tuple:
        """The structural key of ``io_set`` (exposed for fitness caches)."""
        for seen, key in self._io_key_memo:
            if seen is io_set:
                return key
        key = io_set_key(io_set)
        if len(self._io_key_memo) >= 32:
            del self._io_key_memo[0]
        self._io_key_memo.append((io_set, key))
        return key

    # ------------------------------------------------------------------
    def _execute_output(self, program: Program, inputs: Sequence[Value]) -> Value:
        if self.compiled:
            return compile_program(program, input_signature(inputs)).output(inputs)
        from repro.dsl.interpreter import Interpreter

        return Interpreter(trace=False, compiled=False).output_of(program, inputs)

    def _execute_trace(self, program: Program, inputs: Sequence[Value]) -> ExecutionTrace:
        if self.compiled:
            return compile_program(program, input_signature(inputs)).run(inputs, trace=True)
        from repro.dsl.interpreter import Interpreter

        return Interpreter(trace=True, compiled=False).run(program, inputs)

    # ------------------------------------------------------------------
    def outputs(self, program: Program, io_set: IOSet, io_key: Optional[Tuple] = None) -> Tuple[Value, ...]:
        """Final output of ``program`` on every example of ``io_set``.

        A result derived from already-cached execution traces counts as a
        cache *hit*: no execution happened, and the hit-rate feeding the
        benchmarks and progress events must reflect executions avoided,
        not which namespace happened to answer.
        """
        key = (program_key(program), self.io_key(io_set) if io_key is None else io_key)
        cached = self.cache.peek(_NS_OUTPUTS, key)
        if cached is not None:
            self.cache.stats.record(_NS_OUTPUTS, hit=True)
            return cached
        traces = self.cache.peek(_NS_TRACES, key)
        if traces is not None:
            self.cache.stats.record(_NS_OUTPUTS, hit=True)
            outputs = tuple(trace.output for trace in traces)
        else:
            self.cache.stats.record(_NS_OUTPUTS, hit=False)
            outputs = tuple(self._execute_output(program, example.inputs) for example in io_set)
        self.cache.put(_NS_OUTPUTS, key, outputs)
        return outputs

    def traces(self, program: Program, io_set: IOSet, io_key: Optional[Tuple] = None) -> List[ExecutionTrace]:
        """Full execution traces of ``program`` on every example."""
        key = (program_key(program), self.io_key(io_set) if io_key is None else io_key)
        cached = self.cache.get(_NS_TRACES, key)
        if cached is not None:
            return cached
        traces = [self._execute_trace(program, example.inputs) for example in io_set]
        self.cache.put(_NS_TRACES, key, traces)
        return traces

    def satisfies(self, program: Program, io_set: IOSet, io_key: Optional[Tuple] = None) -> bool:
        """True when ``program`` reproduces every example of ``io_set``.

        This is the GA's solution check; it shares the cached outputs
        with fitness scoring, so checking a candidate that a fitness
        function already executed costs one dictionary lookup.
        """
        resolved = self.io_key(io_set) if io_key is None else io_key
        key = (program_key(program), resolved)
        cached = self.cache.get(_NS_SOLUTIONS, key)
        if cached is not None:
            return cached
        outputs = self.outputs(program, io_set, io_key=resolved)
        verdict = all(
            values_equal(output, example.output) for output, example in zip(outputs, io_set)
        )
        self.cache.put(_NS_SOLUTIONS, key, verdict)
        return verdict

    # ------------------------------------------------------------------
    # generic per-(program, io_set) memo slots for the fitness layer
    def get_cached(self, namespace: str, program: Program, io_key: Tuple):
        """Fitness-layer memo lookup (``None`` on a miss)."""
        return self.cache.get(namespace, (program_key(program), io_key))

    def put_cached(self, namespace: str, program: Program, io_key: Tuple, value) -> None:
        """Fitness-layer memo store."""
        self.cache.put(namespace, (program_key(program), io_key), value)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Hit/miss counters of the underlying cache."""
        return self.cache.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionEngine(compiled={self.compiled}, cache={self.cache!r})"


def uncached_engine(compiled: bool = True) -> ExecutionEngine:
    """An engine that never memoizes — the control for identity tests."""
    return ExecutionEngine(cache=EvaluationCache(max_entries=0), compiled=compiled)
