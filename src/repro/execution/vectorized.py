"""Columnar population-level evaluation: the vectorized execution path.

The serial engine executes one ``(candidate, example)`` pair per
interpreter pass.  A GA generation, however, asks one question about a
whole *population* against one IO specification — and populations built
by crossover, mutation and reproduction share long function-id prefixes
(and outright duplicates).  This module exploits both redundancies:

1. **Prefix sharing.**  Candidates are deduplicated into a trie over
   ``program.function_ids``, per input type signature.  Argument bindings
   depend only on the signature and the fid prefix
   (:mod:`repro.dsl.compiler`), so every candidate sharing a prefix
   shares the prefix's intermediate values exactly.  Each unique prefix
   is computed once, no matter how many candidates extend it.
2. **Example batching.**  A trie level stores its values as numpy
   columns of shape ``[unique prefixes x examples]`` (lists as padded
   2-D blocks with per-row lengths).  Prefixes applying the same DSL
   function with the same bindings are grouped so each group runs as
   *one* kernel dispatch (:mod:`repro.dsl.vector_ops`) — one dispatch
   per unique ``(step, binding shape)`` instead of one interpreter step
   per ``(function, candidate, example)``.

The trie itself is built with numpy (one ``np.unique`` per level over
``parent-prefix x fid`` codes), and argument bindings are derived from a
per-prefix *type bitmask* instead of compiling each candidate: bit ``k``
records whether history slot ``k`` holds a list, which is all the
backwards type-scan of the compiler depends on.  Bindings are memoized
per ``(registry, history length, mask, fid)`` in a module-level cache —
the analog of the compiler's compile cache, warm across calls.

:class:`BatchExecutionEngine` wraps the evaluator behind the
:class:`~repro.execution.engine.ExecutionEngine` contract: batch results
land in the same ``outputs``/``traces``/``solutions`` cache namespaces
with the same per-program hit/miss accounting, so the L1-L3 cache tiers,
snapshots and the fitness layer see vectorized traffic exactly like
serial traffic.  Values and traces are bit-identical to the compiled and
reference paths (``tests/test_vectorized.py``); functions without a
vectorized kernel (extended registries) fall back to their scalar
``impl`` row by row, and inputs outside the int64-safe range route the
whole signature block to the serial compiled path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.compiler import compile_program, input_signature, normalize_inputs
from repro.dsl.equivalence import IOSet
from repro.dsl.functions import DSLFunction, FunctionRegistry
from repro.dsl.interpreter import ExecutionTrace, StepRecord
from repro.dsl.program import Program
from repro.dsl.types import DSLType, Value, default_for, values_equal
from repro.dsl.vector_ops import SAFE_INT_BOUND, batch_impl_for
from repro.execution.cache import EvaluationCache, program_key
from repro.execution.engine import ExecutionEngine

_NS_OUTPUTS = "outputs"
_NS_TRACES = "traces"
_NS_SOLUTIONS = "solutions"

_INT = DSLType.INT
_DEFAULT_INT = default_for(_INT)

#: ``fid -> (function, kernel, arg_types, returns_list)``, memoized per registry
_FnInfo = Tuple[DSLFunction, object, Tuple[DSLType, ...], bool]

#: function ids above this bound take the (exact but slower) dict-based
#: trie build; below it, (parent, fid) pairs pack into int64 codes
_MAX_PACKED_FID = 1 << 20

# ---------------------------------------------------------------------------
# Per-registry memo tables (bindings and kernels), module-level like the
# compile cache: warm across evaluators, pinned by holding the registry.
# ---------------------------------------------------------------------------

_REGISTRY_TABLES: Dict[int, Tuple[FunctionRegistry, Dict[int, _FnInfo], Dict]] = {}


def _tables_for(registry: FunctionRegistry):
    entry = _REGISTRY_TABLES.get(id(registry))
    if entry is None or entry[0] is not registry:
        if len(_REGISTRY_TABLES) >= 64:
            _REGISTRY_TABLES.clear()
        entry = (registry, {}, {})
        _REGISTRY_TABLES[id(registry)] = entry
    return entry


@dataclass
class KernelStats:
    """Kernel-level telemetry for one :class:`ColumnarEvaluator`.

    ``dispatches`` counts actual numpy-kernel (and scalar-fallback)
    invocations, ``fused_groups`` the extra ``(function, binding)`` groups
    that rode an already-counted dispatch, ``bucketed_dispatches`` the
    dispatches issued by the width-bucketing split.  The ``leaf_*`` /
    ``nodes_inserted`` counters describe the persistent tries: a leaf hit
    is a program answered entirely from trie-resident state.
    """

    dispatches: int = 0
    fused_groups: int = 0
    bucketed_dispatches: int = 0
    leaf_lookups: int = 0
    leaf_hits: int = 0
    nodes_inserted: int = 0
    trie_evictions: int = 0

    @property
    def reuse_ratio(self) -> float:
        """Fraction of requested programs served from existing trie leaves."""
        return self.leaf_hits / self.leaf_lookups if self.leaf_lookups else 0.0

    def snapshot(self) -> dict:
        return {
            "dispatch_count": self.dispatches,
            "fused_group_count": self.fused_groups,
            "bucketed_dispatch_count": self.bucketed_dispatches,
            "trie_leaf_lookups": self.leaf_lookups,
            "trie_leaf_hits": self.leaf_hits,
            "trie_nodes_inserted": self.nodes_inserted,
            "trie_evictions": self.trie_evictions,
            "reuse_ratio": self.reuse_ratio,
        }


#: Width-bucketing crossover, measured on the dev container (reduced-scale
#: sweep in ``benchmarks/bench_execution_throughput.py``): a bucketed
#: dispatch pays one gather + scatter per bucket, so it only wins once the
#: row block is large, the dense width is non-trivial and the power-of-2
#: buckets drop at least half of the padded cells.  The per-bucket
#: overhead is fixed (~100us of fancy indexing) while the savings scale
#: with the cells dropped, so groups below an absolute dense-cell floor
#: always dispatch dense regardless of their padding ratio.  Below the
#: crossover the group stays on the single dense dispatch.
WIDTH_BUCKET_MIN_ROWS = 64
WIDTH_BUCKET_MIN_WIDTH = 8
WIDTH_BUCKET_MIN_CELLS = 65536
WIDTH_BUCKET_CELL_RATIO = 2.0


def _dispatch_group(kernel, args, stats: KernelStats):
    """One group dispatch: dense, or split into power-of-2 width buckets.

    List columns are padded to the widest row of their group; when a group
    mixes short and long rows the padding cells dominate the kernel's
    work.  Rows are bucketed by the power-of-2 ceiling of their effective
    width (the max length across the group's list arguments) and each
    bucket dispatches densely at its own width.  Every kernel is
    value-exact under trailing zero padding (the column invariant), so
    bucketed and dense dispatches are bit-identical.
    """
    list_args = [arg for arg in args if isinstance(arg, tuple)]
    if not list_args:
        stats.dispatches += 1
        return kernel(*args)
    rows = list_args[0][1].shape[0]
    full_width = max(arg[0].shape[1] for arg in list_args)
    if (
        rows < WIDTH_BUCKET_MIN_ROWS
        or full_width < WIDTH_BUCKET_MIN_WIDTH
        or rows * full_width < WIDTH_BUCKET_MIN_CELLS
    ):
        stats.dispatches += 1
        return kernel(*args)
    need = list_args[0][1]
    for arg in list_args[1:]:
        need = np.maximum(need, arg[1])
    exp = np.ceil(np.log2(np.maximum(need, 1))).astype(np.int64)
    bucket_cells = int(np.left_shift(1, exp).sum())
    if bucket_cells * WIDTH_BUCKET_CELL_RATIO >= rows * full_width:
        stats.dispatches += 1
        return kernel(*args)
    out_int: Optional[np.ndarray] = None
    out_lens: Optional[np.ndarray] = None
    list_parts: List[Tuple[np.ndarray, tuple]] = []
    out_width = 0
    for e in np.unique(exp).tolist():
        rows_idx = np.nonzero(exp == e)[0]
        w = min(1 << e, full_width)
        sub = []
        for arg in args:
            if isinstance(arg, tuple):
                values, lengths = arg
                sub.append((values[rows_idx, : min(w, values.shape[1])], lengths[rows_idx]))
            else:
                sub.append(arg[rows_idx])
        stats.dispatches += 1
        stats.bucketed_dispatches += 1
        payload = kernel(*sub)
        if isinstance(payload, tuple):
            if out_lens is None:
                out_lens = np.zeros(rows, dtype=np.int64)
            list_parts.append((rows_idx, payload))
            if payload[0].shape[1] > out_width:
                out_width = payload[0].shape[1]
        else:
            if out_int is None:
                out_int = np.zeros(rows, dtype=np.int64)
            out_int[rows_idx] = payload
    if out_int is not None:
        return out_int
    out_vals = np.zeros((rows, out_width), dtype=np.int64)
    for rows_idx, (values, lens) in list_parts:
        out_vals[rows_idx, : values.shape[1]] = values
        out_lens[rows_idx] = lens
    return out_vals, out_lens


def _fn_info_of(fid: int, registry: FunctionRegistry, fn_table: Dict[int, _FnInfo]) -> _FnInfo:
    info = fn_table.get(fid)
    if info is None:
        fn = registry.by_id(fid)
        info = (fn, batch_impl_for(fn), fn.arg_types, fn.return_type is not _INT)
        fn_table[fid] = info
    return info


def _resolve_pairs(
    pairs: np.ndarray,
    stride: int,
    history_len: int,
    fn_info: Callable[[int], _FnInfo],
    bind_cache: Dict,
):
    """Bindings and fid-major dispatch groups for unique ``(mask, fid)`` pairs.

    Returns ``(pair_gid, pair_ret, pair_binds, group_meta)``: the dispatch
    group of each pair (renumbered fid-major so same-function groups sit
    on adjacent ranges and fuse), whether it returns a list, its binding
    tuple, and the per-group ``(fid, bindings, returns_list)`` metadata.
    """
    n_pairs = len(pairs)
    pair_gid = np.empty(n_pairs, dtype=np.int64)
    pair_ret = np.empty(n_pairs, dtype=np.int64)
    pair_binds: List[Tuple[int, ...]] = []
    group_meta: List[Tuple[int, Tuple[int, ...], bool]] = []
    group_of: Dict[Tuple, int] = {}
    pair_mask_list = (pairs // stride).tolist()
    pair_fid_list = (pairs % stride).tolist()
    for u in range(n_pairs):
        fid = pair_fid_list[u]
        bind_key = (history_len, pair_mask_list[u], fid)
        entry = bind_cache.get(bind_key)
        if entry is None:
            if len(bind_cache) >= 65536:
                bind_cache.clear()
            info = fn_info(fid)
            bind = _compute_bindings(pair_mask_list[u], history_len, info[2])
            entry = (bind, (fid,) + bind, info[3])
            bind_cache[bind_key] = entry
        bind, group_key, ret_is_list = entry
        gid = group_of.get(group_key)
        if gid is None:
            gid = len(group_meta)
            group_of[group_key] = gid
            group_meta.append((fid, bind, bool(ret_is_list)))
        pair_gid[u] = gid
        pair_ret[u] = 1 if ret_is_list else 0
        pair_binds.append(bind)
    n_groups = len(group_meta)
    if n_groups > 1:
        order_g = sorted(range(n_groups), key=lambda g: (group_meta[g][0], group_meta[g][1]))
        remap = np.empty(n_groups, dtype=np.int64)
        for new_gid, g in enumerate(order_g):
            remap[g] = new_gid
        pair_gid = remap[pair_gid]
        group_meta = [group_meta[g] for g in order_g]
    return pair_gid, pair_ret, pair_binds, group_meta


def _scalar_group(fn, arg_types, returns_list, args, rows: int):
    """Row-by-row fallback through ``fn.impl`` for non-catalog functions."""
    decoded = []
    for arg_type, column in zip(arg_types, args):
        if arg_type is _INT:
            decoded.append(column.tolist())
        else:
            values, lengths = column
            block = values.tolist()
            decoded.append([row[:n] for row, n in zip(block, lengths.tolist())])
    outputs = [fn.impl(*(column[r] for column in decoded)) for r in range(rows)]
    if not returns_list:
        if any(abs(v) > SAFE_INT_BOUND for v in outputs):
            raise _ColumnarUnsupported(fn.name)
        return np.array(outputs, dtype=np.int64)
    if any(abs(v) > SAFE_INT_BOUND for row in outputs for v in row):
        raise _ColumnarUnsupported(fn.name)
    width = max((len(row) for row in outputs), default=0)
    values = np.zeros((rows, width), dtype=np.int64)
    lengths = np.zeros(rows, dtype=np.int64)
    for r, row in enumerate(outputs):
        values[r, : len(row)] = row
        lengths[r] = len(row)
    return values, lengths


def _concat_cols(parts):
    """Stack per-group argument columns for a fused same-function dispatch.

    Int columns concatenate directly; list columns are padded to the span's
    widest source (pad cells stay zero, preserving the column invariant).
    """
    if not isinstance(parts[0], tuple):
        return np.concatenate(parts)
    width = 0
    total = 0
    for values, _lengths in parts:
        total += values.shape[0]
        if values.shape[1] > width:
            width = values.shape[1]
    vals = np.zeros((total, width), dtype=np.int64)
    lens = np.empty(total, dtype=np.int64)
    offset = 0
    for values, lengths in parts:
        rows = values.shape[0]
        vals[offset : offset + rows, : values.shape[1]] = values
        lens[offset : offset + rows] = lengths
        offset += rows
    return vals, lens


def _compute_bindings(mask: int, history_len: int, arg_types: Tuple[DSLType, ...]) -> Tuple[int, ...]:
    """The compiler's backwards type-scan, driven by a type bitmask.

    ``mask`` has bit ``k`` set when history slot ``k`` holds a list.  Each
    argument binds to the highest available slot of its type; two
    arguments of the same type exclude each other's slot, exactly like
    :meth:`repro.dsl.compiler.CompiledProgram._bind`.
    """
    full = (1 << history_len) - 1
    pools = {True: mask & full, False: ~mask & full}
    bindings = []
    for arg_type in arg_types:
        wants_list = arg_type is not _INT
        pool = pools[wants_list]
        slot = pool.bit_length() - 1
        if slot >= 0:
            pools[wants_list] = pool & ~(1 << slot)
        bindings.append(slot)
    return tuple(bindings)


class _ColumnarUnsupported(Exception):
    """Raised when a batch cannot be evaluated columnar-exactly (e.g. a
    scalar-fallback function produced values outside the int64-safe range);
    the caller reverts to the serial compiled path."""


class _SignatureBlock:
    """The examples of one input type signature, encoded as columns."""

    __slots__ = (
        "signature",
        "example_indices",
        "norm_inputs",
        "n_inputs",
        "m",
        "vector_ok",
        "columns",
        "root_mask",
    )

    def __init__(self, signature: Tuple[DSLType, ...]) -> None:
        self.signature = signature
        self.example_indices: List[int] = []
        self.norm_inputs: List[List[Value]] = []
        self.n_inputs = len(signature)
        self.m = 0
        self.vector_ok = True
        self.columns: List = []
        self.root_mask = 0
        for k, slot_type in enumerate(signature):
            if slot_type is not _INT:
                self.root_mask |= 1 << k

    def encode(self) -> None:
        self.m = len(self.example_indices)
        for slot, slot_type in enumerate(self.signature):
            if slot_type is _INT:
                values = [inputs[slot] for inputs in self.norm_inputs]
                if any(abs(v) > SAFE_INT_BOUND for v in values):
                    self.vector_ok = False
                    return
                self.columns.append(np.array(values, dtype=np.int64))
            else:
                rows = [inputs[slot] for inputs in self.norm_inputs]
                if any(abs(v) > SAFE_INT_BOUND for row in rows for v in row):
                    self.vector_ok = False
                    return
                width = max((len(row) for row in rows), default=0)
                values = np.zeros((self.m, width), dtype=np.int64)
                lengths = np.zeros(self.m, dtype=np.int64)
                for r, row in enumerate(rows):
                    values[r, : len(row)] = row
                    lengths[r] = len(row)
                self.columns.append((values, lengths))


class _Level:
    """One trie level: columns over ``[unique prefixes x examples]`` rows."""

    __slots__ = (
        "fid_arr",
        "pair_idx",
        "pair_binds",
        "group_meta",
        "bounds",
        "glive",
        "anc",
        "int_vals",
        "list_vals",
        "lens",
        "is_list",
    )

    def __init__(self) -> None:
        self.fid_arr: Optional[np.ndarray] = None  # fid per prefix
        #: prefix -> index into ``pair_binds`` (bindings per (mask, fid) pair)
        self.pair_idx: Optional[np.ndarray] = None
        self.pair_binds: List[Tuple[int, ...]] = []
        #: per group: (fid, bindings, returns_list)
        self.group_meta: List[Tuple[int, Tuple[int, ...], bool]] = []
        #: cumulative group sizes; group ``g`` spans ``[bounds[g-1], bounds[g])``
        self.bounds: Optional[np.ndarray] = None
        #: per group: does any live prefix need this group's values?
        self.glive: List[bool] = []
        #: earlier-level index -> ancestor prefix id per prefix of this level
        self.anc: Dict[int, np.ndarray] = {}
        self.int_vals: Optional[np.ndarray] = None
        self.list_vals: Optional[np.ndarray] = None
        self.lens: Optional[np.ndarray] = None
        self.is_list: Optional[np.ndarray] = None


class _TrieRun(object):
    """One columnar evaluation: a batch of programs over one signature block.

    Builds the prefix trie level by level; at each level prefixes are
    ordered so that groups sharing ``(fid, bindings)`` occupy contiguous
    rows, each group executing as a single kernel dispatch.
    """

    def __init__(
        self,
        block: _SignatureBlock,
        programs: Sequence[Program],
        registry: FunctionRegistry,
        fn_table: Dict[int, _FnInfo],
        bind_cache: Dict,
        want_traces: bool,
        stats: Optional[KernelStats] = None,
    ) -> None:
        self.block = block
        self.programs = programs
        self.registry = registry
        self.fn_table = fn_table
        self.bind_cache = bind_cache
        self.stats = stats if stats is not None else KernelStats()
        self.m = block.m
        self.levels: List[_Level] = []
        self.paths: Optional[np.ndarray] = None  # [program, level] prefix ids
        self.paths_list: List[List[int]] = []
        self.seq_lens: List[int] = [len(p.function_ids) for p in programs]
        self._erange = np.arange(self.m, dtype=np.int64)
        self._tiles: Dict[int, tuple] = {}
        self._decoded: Dict[Tuple[int, int], list] = {}
        self._level_raw: Dict[int, tuple] = {}
        self._records: Dict[Tuple[int, int, int], StepRecord] = {}
        self._run(want_traces)

    # -- trie construction + execution ---------------------------------
    def _fn_info(self, fid: int) -> _FnInfo:
        return _fn_info_of(fid, self.registry, self.fn_table)

    def _run(self, want_traces: bool) -> None:
        n = len(self.programs)
        seq_lens = self.seq_lens
        max_len = max(seq_lens, default=0)
        if n == 0 or max_len == 0:
            self.paths = np.full((n, max(max_len, 1)), -1, dtype=np.int64)
            self.paths_list = self.paths.tolist()
            return
        fid_matrix = np.zeros((n, max_len), dtype=np.int64)
        for i, program in enumerate(self.programs):
            seq = program.function_ids
            fid_matrix[i, : len(seq)] = seq
        max_fid = int(fid_matrix.max())
        if max_fid >= _MAX_PACKED_FID or max_fid < 0:
            raise _ColumnarUnsupported("function ids outside packed-code range")
        stride = max_fid + 1

        lengths = np.array(seq_lens, dtype=np.int64)
        paths = np.full((n, max_len), -1, dtype=np.int64)
        prev = np.zeros(n, dtype=np.int64)
        masks_prev = np.array([self.block.root_mask], dtype=np.int64)
        alive = np.arange(n)
        n_inputs = self.block.n_inputs
        bind_cache = self.bind_cache
        levels = self.levels

        # -- phase 1: build the trie level by level (no execution yet) --
        for j in range(max_len):
            history_len = n_inputs + j
            alive = alive[lengths[alive] > j]
            codes = prev[alive] * stride + fid_matrix[alive, j]
            uniq, inverse = np.unique(codes, return_inverse=True)
            parent_u = uniq // stride
            fid_u = uniq % stride
            parent_masks = masks_prev[parent_u]

            # bindings depend only on the (type mask, fid) pair; resolve
            # each distinct pair once (memoized across runs in bind_cache),
            # with groups renumbered fid-major so same-function groups sit
            # on adjacent row ranges phase 3 fuses into one dispatch
            pair_codes = parent_masks * stride + fid_u
            pairs, pair_inv = np.unique(pair_codes, return_inverse=True)
            pair_gid, pair_ret, pair_binds, group_meta = _resolve_pairs(
                pairs, stride, history_len, self._fn_info, bind_cache
            )

            # order prefixes so each group's rows are contiguous
            gids = pair_gid[pair_inv]
            count = len(uniq)
            order = np.argsort(gids, kind="stable")
            rank = np.empty(count, dtype=np.int64)
            rank[order] = np.arange(count, dtype=np.int64)
            final = rank[inverse]
            paths[alive, j] = final
            prev[alive] = final

            level = _Level()
            level.fid_arr = fid_u[order]
            level.pair_idx = pair_inv[order]
            level.pair_binds = pair_binds
            level.group_meta = group_meta
            level.bounds = np.bincount(gids, minlength=len(group_meta)).cumsum()
            parent_final = parent_u[order]
            if j > 0:
                level.anc[j - 1] = parent_final
                for d, arr in levels[j - 1].anc.items():
                    level.anc[d] = arr[parent_final]
            levels.append(level)
            masks_prev = (parent_masks | (pair_ret[pair_inv] << history_len))[order]

        self.paths = paths
        self.paths_list = paths.tolist()

        # -- phase 2: liveness — outputs-only runs skip any group whose
        # value no live prefix (a leaf, or an argument of a live group)
        # ever reads; trace runs need every intermediate value
        if want_traces:
            for level in levels:
                level.glive = [True] * len(level.group_meta)
        else:
            live = [np.zeros(len(level.fid_arr), dtype=bool) for level in levels]
            for length in np.unique(lengths):
                if length == 0:
                    continue
                rows = np.nonzero(lengths == length)[0]
                live[length - 1][paths[rows, length - 1]] = True
            for j in range(max_len - 1, -1, -1):
                level = levels[j]
                bounds = level.bounds
                starts = np.concatenate(([0], bounds[:-1]))
                group_live = np.logical_or.reduceat(live[j], starts).tolist()
                level.glive = group_live
                bounds_list = bounds.tolist()
                s = 0
                for gid, (fid, bind, _ret) in enumerate(level.group_meta):
                    e = bounds_list[gid]
                    if group_live[gid]:
                        for binding in bind:
                            if binding >= n_inputs:
                                src_j = binding - n_inputs
                                live[src_j][level.anc[src_j][s:e]] = True
                    s = e

        # -- phase 3: execute live groups, one kernel dispatch each -----
        m = self.m
        fn_table = self.fn_table
        for j, level in enumerate(levels):
            count = len(level.fid_arr)
            bounds_list = level.bounds.tolist()
            glive = level.glive
            src_cols: Dict[Tuple[int, bool], object] = {}
            payloads = []
            any_list = False
            any_int = False
            list_width = 0
            groups = level.group_meta
            n_groups = len(groups)
            _arg = self._arg
            gid = 0
            start = 0
            while gid < n_groups:
                if not glive[gid]:
                    start = bounds_list[gid]
                    gid += 1
                    continue
                fid = groups[gid][0]
                info = fn_table.get(fid)
                if info is None:
                    info = self._fn_info(fid)
                fn, kernel, arg_types, returns_list = info
                # fuse the run of consecutive live groups sharing this
                # function (adjacent by the fid-major renumbering above)
                # into one kernel dispatch over their concatenated rows
                stop = gid + 1
                if kernel is not None:
                    while stop < n_groups and glive[stop] and groups[stop][0] == fid:
                        stop += 1
                span_args: List[list] = []
                s = start
                for g in range(gid, stop):
                    e = bounds_list[g]
                    span_args.append(
                        [
                            _arg(level, src_cols, arg_type, binding, s, e)
                            for arg_type, binding in zip(arg_types, groups[g][1])
                        ]
                    )
                    s = e
                end = bounds_list[stop - 1]
                stats = self.stats
                if kernel is None:
                    payload = _scalar_group(fn, arg_types, returns_list, span_args[0], (end - start) * m)
                    stats.dispatches += 1
                elif stop - gid == 1:
                    payload = _dispatch_group(kernel, span_args[0], stats)
                else:
                    payload = _dispatch_group(
                        kernel, [_concat_cols(cols) for cols in zip(*span_args)], stats
                    )
                    stats.fused_groups += stop - gid - 1
                if returns_list:
                    any_list = True
                    if payload[0].shape[1] > list_width:
                        list_width = payload[0].shape[1]
                else:
                    any_int = True
                payloads.append((start, end, returns_list, payload))
                start = end
                gid = stop

            # assemble the level's columns
            group_rets = np.fromiter(
                (meta[2] for meta in level.group_meta), dtype=bool, count=len(level.group_meta)
            )
            level.is_list = np.repeat(group_rets, np.diff(level.bounds, prepend=0))
            if any_list:
                level.list_vals = np.zeros((count * m, list_width), dtype=np.int64)
                level.lens = np.zeros(count * m, dtype=np.int64)
            if any_int:
                level.int_vals = np.zeros(count * m, dtype=np.int64)
            for s, e, returns_list, payload in payloads:
                if returns_list:
                    values, lens = payload
                    level.list_vals[s * m : e * m, : values.shape[1]] = values
                    level.lens[s * m : e * m] = lens
                else:
                    level.int_vals[s * m : e * m] = payload

    def _arg(self, level: _Level, src_cols: Dict, arg_type: DSLType, binding: int, start: int, end: int):
        """The argument column for rows ``start*m .. end*m`` of a group."""
        m = self.m
        if binding < 0:  # no slot of the required type: the default value
            g = end - start
            if arg_type is _INT:
                return np.zeros(g * m, dtype=np.int64)
            return (np.zeros((g * m, 0), dtype=np.int64), np.zeros(g * m, dtype=np.int64))
        n_inputs = self.block.n_inputs
        if binding < n_inputs:  # a program input: a slice of one cached tile
            tile = self._tile(binding, end)
            if len(tile) == 3:
                return tile[1][start * m : end * m], tile[2][start * m : end * m]
            return tile[1][start * m : end * m]
        # an earlier step's output: the whole level's rows are gathered
        # once per source level, each group slicing its contiguous range
        src_j = binding - n_inputs
        # keyed by (level, type): one level holds int values for some
        # prefixes and lists for others, and groups may read either
        cache_key = (src_j, arg_type is _INT)
        col = src_cols.get(cache_key)
        if col is None:
            src = self.levels[src_j]
            anc = level.anc[src_j]
            rows = (anc[:, None] * m + self._erange).ravel()
            if arg_type is _INT:
                col = src.int_vals[rows]
            else:
                col = (src.list_vals[rows], src.lens[rows])
            src_cols[cache_key] = col
        if isinstance(col, tuple):
            return col[0][start * m : end * m], col[1][start * m : end * m]
        return col[start * m : end * m]

    def _tile(self, slot: int, min_prefixes: int) -> tuple:
        """Input column ``slot`` repeated per prefix (row ``r`` holds the
        value of example ``r % m``), grown by doubling as batches widen."""
        entry = self._tiles.get(slot)
        if entry is None or entry[0] < min_prefixes:
            capacity = min_prefixes if entry is None else max(min_prefixes, entry[0] * 2)
            column = self.block.columns[slot]
            if isinstance(column, tuple):
                values, lengths = column
                entry = (capacity, np.tile(values, (capacity, 1)), np.tile(lengths, capacity))
            else:
                entry = (capacity, np.tile(column, capacity))
            self._tiles[slot] = entry
        return entry

    # -- decoding ------------------------------------------------------
    def _raw_level(self, j: int) -> tuple:
        """Whole-level bulk decode to Python lists (one ``tolist`` per array)."""
        raw = self._level_raw.get(j)
        if raw is None:
            level = self.levels[j]
            ints = level.int_vals.tolist() if level.int_vals is not None else None
            if level.list_vals is not None:
                lists = level.list_vals.tolist()
                lens = level.lens.tolist()
            else:
                lists = lens = None
            raw = (ints, lists, lens, level.is_list.tolist())
            self._level_raw[j] = raw
        return raw

    def _decode(self, j: int, pid: int) -> list:
        """This prefix's value on every example, as Python objects (memoized)."""
        key = (j, pid)
        got = self._decoded.get(key)
        if got is None:
            ints, lists, lens, is_list = self._raw_level(j)
            base = pid * self.m
            top = base + self.m
            if is_list[pid]:
                got = [row[:k] for row, k in zip(lists[base:top], lens[base:top])]
            else:
                got = ints[base:top]
            self._decoded[key] = got
        return got

    def outputs_of(self, i: int) -> List[Value]:
        """Program ``i``'s final output per example (block-local order)."""
        length = self.seq_lens[i]
        if length == 0:
            return [_DEFAULT_INT] * self.m
        # leaves are unique per (deduplicated) program: decode directly,
        # skipping the memo the trace path uses for shared interior nodes
        pid = self.paths_list[i][length - 1]
        ints, lists, lens, is_list = self._raw_level(length - 1)
        base = pid * self.m
        top = base + self.m
        if is_list[pid]:
            return [row[:k] for row, k in zip(lists[base:top], lens[base:top])]
        return ints[base:top]

    def _record(self, j: int, pid: int, e: int) -> StepRecord:
        """The StepRecord of prefix ``pid`` on example ``e`` — shared by
        every program whose path goes through the prefix."""
        key = (j, pid, e)
        record = self._records.get(key)
        if record is None:
            level = self.levels[j]
            fid = int(level.fid_arr[pid])
            fn, _kernel, arg_types, _returns_list = self._fn_info(fid)
            bind = level.pair_binds[int(level.pair_idx[pid])]
            n_inputs = self.block.n_inputs
            args: List[Value] = []
            for binding, arg_type in zip(bind, arg_types):
                if binding < 0:
                    args.append(0 if arg_type is _INT else [])
                elif binding < n_inputs:
                    args.append(self.block.norm_inputs[e][binding])
                else:
                    src_j = binding - n_inputs
                    args.append(self._decode(src_j, int(level.anc[src_j][pid]))[e])
            record = StepRecord(
                index=j,
                fid=fid,
                name=fn.name,
                args=tuple(args),
                output=self._decode(j, pid)[e],
            )
            self._records[key] = record
        return record

    def trace_of(self, i: int, e: int) -> ExecutionTrace:
        """Program ``i``'s full trace on block-local example ``e``."""
        length = self.seq_lens[i]
        path = self.paths_list[i][:length]
        steps = [self._record(j, pid, e) for j, pid in enumerate(path)]
        return ExecutionTrace(
            inputs=tuple(self.block.norm_inputs[e]),
            steps=steps,
            output=steps[-1].output if steps else _DEFAULT_INT,
        )


class _LevelStore:
    """One persistent trie level: node metadata plus value columns.

    Nodes are identified by stable integer ids (append order); value rows
    of node ``p`` live at ``[p * m, (p + 1) * m)``.  Lookups go through a
    sorted view of the packed ``parent * stride + fid`` codes, rebuilt
    once per appending round.
    """

    __slots__ = (
        "count",
        "codes",
        "parent",
        "fids",
        "masks",
        "is_list",
        "int_vals",
        "list_vals",
        "lens",
        "_sorted_codes",
        "_sorted_ids",
    )

    def __init__(self) -> None:
        self.count = 0
        self.codes = np.empty(0, dtype=np.int64)
        self.parent = np.empty(0, dtype=np.int64)
        self.fids = np.empty(0, dtype=np.int64)
        self.masks = np.empty(0, dtype=np.int64)
        self.is_list = np.empty(0, dtype=bool)
        self.int_vals: Optional[np.ndarray] = None
        self.list_vals: Optional[np.ndarray] = None
        self.lens: Optional[np.ndarray] = None
        self._sorted_codes = self.codes
        self._sorted_ids = np.empty(0, dtype=np.int64)

    def lookup(self, codes: np.ndarray) -> np.ndarray:
        """Node id per packed code, ``-1`` where the code is absent."""
        if self.count == 0:
            return np.full(len(codes), -1, dtype=np.int64)
        pos = np.minimum(np.searchsorted(self._sorted_codes, codes), self.count - 1)
        ids = self._sorted_ids[pos]
        return np.where(self._sorted_codes[pos] == codes, ids, -1)

    def append_round(
        self,
        codes: np.ndarray,
        parent: np.ndarray,
        fids: np.ndarray,
        masks: np.ndarray,
        is_list: np.ndarray,
        round_int: Optional[np.ndarray],
        round_list: Optional[np.ndarray],
        round_lens: Optional[np.ndarray],
        m: int,
    ) -> None:
        """Append one fully-computed insertion round (new node ids are
        ``count .. count + len(codes)``, matching the round's row order)."""
        base = self.count
        add = len(codes)
        self.codes = np.concatenate([self.codes, codes])
        self.parent = np.concatenate([self.parent, parent])
        self.fids = np.concatenate([self.fids, fids])
        self.masks = np.concatenate([self.masks, masks])
        self.is_list = np.concatenate([self.is_list, is_list])
        if round_int is not None or self.int_vals is not None:
            if self.int_vals is None:
                self.int_vals = np.zeros(base * m, dtype=np.int64)
            if round_int is None:
                round_int = np.zeros(add * m, dtype=np.int64)
            self.int_vals = np.concatenate([self.int_vals, round_int])
        if round_list is not None or self.list_vals is not None:
            old_w = self.list_vals.shape[1] if self.list_vals is not None else 0
            new_w = round_list.shape[1] if round_list is not None else 0
            width = max(old_w, new_w)
            vals = np.zeros(((base + add) * m, width), dtype=np.int64)
            if self.list_vals is not None:
                vals[: base * m, :old_w] = self.list_vals
            if round_list is not None:
                vals[base * m :, :new_w] = round_list
            self.list_vals = vals
            lens = np.zeros((base + add) * m, dtype=np.int64)
            if self.lens is not None:
                lens[: base * m] = self.lens
            if round_lens is not None:
                lens[base * m :] = round_lens
            self.lens = lens
        self.count = base + add
        order = np.argsort(self.codes)
        self._sorted_codes = self.codes[order]
        self._sorted_ids = order


class _PersistentTrie(object):
    """An incremental prefix trie kept alive between ``*_batch`` calls.

    Where :class:`_TrieRun` rebuilds its trie and re-packs every column
    per call, this structure persists per ``(signature block, registry)``:
    programs already evaluated are answered by a structural-key leaf
    lookup, and only novel suffixes are inserted — one ``np.unique`` over
    the appended rows per level — and executed.  Adjacent GA generations
    overlap heavily (survivors plus a minority of fresh children), so the
    steady state is a handful of small insertion rounds per generation
    instead of a full rebuild.

    Differences from the transient run, both invisible to results: every
    inserted node is computed (a node dead for this batch may be an
    ancestor of the next batch's leaves, so there is no dead-code
    elimination), and decoded leaf outputs are memoized per node.  Trace
    requests stay on the transient path — they need every intermediate
    ``StepRecord`` and are memoized per program upstream.
    """

    def __init__(
        self,
        block: _SignatureBlock,
        registry: FunctionRegistry,
        fn_table: Dict[int, _FnInfo],
        bind_cache: Dict,
        stats: KernelStats,
    ) -> None:
        max_fid = max((fn.fid for fn in registry.functions), default=0)
        if max_fid >= _MAX_PACKED_FID or max_fid < 0:
            raise _ColumnarUnsupported("function ids outside packed-code range")
        self.block = block
        self.registry = registry
        self.fn_table = fn_table
        self.bind_cache = bind_cache
        self.stats = stats
        self.stride = max_fid + 1
        self.m = block.m
        self.levels: List[_LevelStore] = []
        self.node_count = 0
        self._erange = np.arange(self.m, dtype=np.int64)
        self._tiles: Dict[int, tuple] = {}
        #: ``program.function_ids`` -> leaf node id (the structural key)
        self._leaves: Dict[Tuple[int, ...], int] = {}
        #: ``(level, node)`` -> decoded per-example outputs
        self._leaf_memo: Dict[Tuple[int, int], list] = {}

    def _fn_info(self, fid: int) -> _FnInfo:
        return _fn_info_of(fid, self.registry, self.fn_table)

    # -- evaluation ----------------------------------------------------
    def outputs(self, programs: Sequence[Program]) -> List[list]:
        """Final outputs ``[program][block-local example]``; inserts any
        program not yet resident before decoding all of them in bulk."""
        m = self.m
        n = len(programs)
        results: List[Optional[list]] = [None] * n
        leaves = self._leaves
        stats = self.stats
        stats.leaf_lookups += n
        novel: List[int] = []
        for i, program in enumerate(programs):
            fids = program.function_ids
            if not fids:
                stats.leaf_hits += 1
                results[i] = [_DEFAULT_INT] * m
            elif fids in leaves:
                stats.leaf_hits += 1
            else:
                novel.append(i)
        if novel:
            self._insert([programs[i] for i in novel])
        pending = [
            (i, programs[i].function_ids) for i in range(n) if results[i] is None
        ]
        memo = self._leaf_memo
        need: Dict[Tuple[int, int], None] = {}
        for _i, fids in pending:
            key = (len(fids) - 1, leaves[fids])
            if key not in memo:
                need[key] = None
        if need:
            self._bulk_decode(list(need))
        for i, fids in pending:
            results[i] = list(memo[(len(fids) - 1, leaves[fids])])
        return results

    def _insert(self, programs: Sequence[Program]) -> None:
        seq_lens = [len(p.function_ids) for p in programs]
        k = len(programs)
        max_len = max(seq_lens)
        if min(seq_lens) == max_len:
            # uniform-length batch (the GA's fixed-length populations):
            # one C-level construction instead of k row assignments
            fid_matrix = np.array([p.function_ids for p in programs], dtype=np.int64)
        else:
            fid_matrix = np.zeros((k, max_len), dtype=np.int64)
            for i, program in enumerate(programs):
                seq = program.function_ids
                fid_matrix[i, : len(seq)] = seq
        top = int(fid_matrix.max())
        if top >= self.stride or top < 0:
            raise _ColumnarUnsupported("function id outside the registry stride")
        lengths = np.array(seq_lens, dtype=np.int64)
        paths = np.full((k, max_len), -1, dtype=np.int64)
        prev = np.zeros(k, dtype=np.int64)
        alive = np.arange(k)
        for j in range(max_len):
            alive = alive[lengths[alive] > j]
            while len(self.levels) <= j:
                self.levels.append(_LevelStore())
            level = self.levels[j]
            codes = prev[alive] * self.stride + fid_matrix[alive, j]
            ids = level.lookup(codes)
            if (ids < 0).any():
                # bulk leaf extraction: one np.unique over the appended rows
                self._insert_nodes(j, level, np.unique(codes[ids < 0]))
                ids = level.lookup(codes)
            paths[alive, j] = ids
            prev[alive] = ids
        for i, program in enumerate(programs):
            self._leaves[program.function_ids] = int(paths[i, seq_lens[i] - 1])

    def _insert_nodes(self, j: int, level: _LevelStore, new_codes: np.ndarray) -> None:
        stride = self.stride
        block = self.block
        m = self.m
        stats = self.stats
        parent_u = new_codes // stride
        fid_u = new_codes % stride
        if j == 0:
            parent_masks = np.full(len(new_codes), block.root_mask, dtype=np.int64)
        else:
            parent_masks = self.levels[j - 1].masks[parent_u]
        history_len = block.n_inputs + j
        pair_codes = parent_masks * stride + fid_u
        pairs, pair_inv = np.unique(pair_codes, return_inverse=True)
        pair_gid, pair_ret, _pair_binds, group_meta = _resolve_pairs(
            pairs, stride, history_len, self._fn_info, self.bind_cache
        )
        gids = pair_gid[pair_inv]
        count = len(new_codes)
        order = np.argsort(gids, kind="stable")
        codes_s = new_codes[order]
        parent_s = parent_u[order]
        fid_s = fid_u[order]
        masks_s = (parent_masks | (pair_ret[pair_inv] << history_len))[order]
        bounds = np.bincount(gids, minlength=len(group_meta)).cumsum()
        bounds_list = bounds.tolist()
        n_groups = len(group_meta)

        # execute every group of the round; all payloads are staged before
        # anything is appended, so a scalar-fallback overflow leaves the
        # persistent levels exactly as they were (the caller then retires
        # this trie and reverts the block to the per-call paths)
        anc_cache: Dict[int, np.ndarray] = {}
        src_cols: Dict[Tuple[int, bool], object] = {}
        payloads = []
        any_list = False
        any_int = False
        list_width = 0
        gid = 0
        start = 0
        while gid < n_groups:
            fid = group_meta[gid][0]
            fn, kernel, arg_types, returns_list = self._fn_info(fid)
            stop = gid + 1
            if kernel is not None:
                while stop < n_groups and group_meta[stop][0] == fid:
                    stop += 1
            span_args: List[list] = []
            s = start
            for g in range(gid, stop):
                e = bounds_list[g]
                span_args.append(
                    [
                        self._arg(j, parent_s, anc_cache, src_cols, arg_type, binding, s, e)
                        for arg_type, binding in zip(arg_types, group_meta[g][1])
                    ]
                )
                s = e
            end = bounds_list[stop - 1]
            if kernel is None:
                payload = _scalar_group(fn, arg_types, returns_list, span_args[0], (end - start) * m)
                stats.dispatches += 1
            elif stop - gid == 1:
                payload = _dispatch_group(kernel, span_args[0], stats)
            else:
                payload = _dispatch_group(
                    kernel, [_concat_cols(cols) for cols in zip(*span_args)], stats
                )
                stats.fused_groups += stop - gid - 1
            if returns_list:
                any_list = True
                if payload[0].shape[1] > list_width:
                    list_width = payload[0].shape[1]
            else:
                any_int = True
            payloads.append((start, end, returns_list, payload))
            start = end
            gid = stop

        group_rets = np.fromiter((meta[2] for meta in group_meta), dtype=bool, count=n_groups)
        is_list_s = np.repeat(group_rets, np.diff(bounds, prepend=0))
        round_int = np.zeros(count * m, dtype=np.int64) if any_int else None
        round_list = np.zeros((count * m, list_width), dtype=np.int64) if any_list else None
        round_lens = np.zeros(count * m, dtype=np.int64) if any_list else None
        for s, e, returns_list, payload in payloads:
            if returns_list:
                values, lens = payload
                round_list[s * m : e * m, : values.shape[1]] = values
                round_lens[s * m : e * m] = lens
            else:
                round_int[s * m : e * m] = payload
        level.append_round(
            codes_s, parent_s, fid_s, masks_s, is_list_s, round_int, round_list, round_lens, m
        )
        stats.nodes_inserted += count
        self.node_count += count

    def _arg(
        self,
        j: int,
        parent_s: np.ndarray,
        anc_cache: Dict[int, np.ndarray],
        src_cols: Dict[Tuple[int, bool], object],
        arg_type: DSLType,
        binding: int,
        start: int,
        end: int,
    ):
        """Argument column for round rows ``start*m .. end*m`` of a group."""
        m = self.m
        if binding < 0:
            g = end - start
            if arg_type is _INT:
                return np.zeros(g * m, dtype=np.int64)
            return (np.zeros((g * m, 0), dtype=np.int64), np.zeros(g * m, dtype=np.int64))
        n_inputs = self.block.n_inputs
        if binding < n_inputs:
            tile = self._tile(binding, end)
            if len(tile) == 3:
                return tile[1][start * m : end * m], tile[2][start * m : end * m]
            return tile[1][start * m : end * m]
        src_j = binding - n_inputs
        cache_key = (src_j, arg_type is _INT)
        col = src_cols.get(cache_key)
        if col is None:
            anc = anc_cache.get(src_j)
            if anc is None:
                anc = parent_s
                for t in range(j - 1, src_j, -1):
                    anc = self.levels[t].parent[anc]
                anc_cache[src_j] = anc
            src = self.levels[src_j]
            rows = (anc[:, None] * m + self._erange).ravel()
            if arg_type is _INT:
                col = src.int_vals[rows]
            else:
                col = (src.list_vals[rows], src.lens[rows])
            src_cols[cache_key] = col
        if isinstance(col, tuple):
            return col[0][start * m : end * m], col[1][start * m : end * m]
        return col[start * m : end * m]

    def _tile(self, slot: int, min_prefixes: int) -> tuple:
        """Input column ``slot`` repeated per round row, grown by doubling
        (persistent across insertion rounds, unlike the transient run's)."""
        entry = self._tiles.get(slot)
        if entry is None or entry[0] < min_prefixes:
            capacity = min_prefixes if entry is None else max(min_prefixes, entry[0] * 2)
            column = self.block.columns[slot]
            if isinstance(column, tuple):
                values, lengths = column
                entry = (capacity, np.tile(values, (capacity, 1)), np.tile(lengths, capacity))
            else:
                entry = (capacity, np.tile(column, capacity))
            self._tiles[slot] = entry
        return entry

    def _bulk_decode(self, keys: List[Tuple[int, int]]) -> None:
        """Decode the requested leaves to Python lists, one gather and one
        ``tolist`` per (level, kind), memoized per node."""
        m = self.m
        memo = self._leaf_memo
        by_level: Dict[int, List[int]] = {}
        for j, node in keys:
            by_level.setdefault(j, []).append(node)
        for j, nodes in by_level.items():
            level = self.levels[j]
            nodes_arr = np.array(nodes, dtype=np.int64)
            node_is_list = level.is_list[nodes_arr]
            int_nodes = nodes_arr[~node_is_list]
            list_nodes = nodes_arr[node_is_list]
            if int_nodes.size:
                rows = (int_nodes[:, None] * m + self._erange).ravel()
                flat = level.int_vals[rows].tolist()
                for k, node in enumerate(int_nodes.tolist()):
                    memo[(j, node)] = flat[k * m : (k + 1) * m]
            if list_nodes.size:
                rows = (list_nodes[:, None] * m + self._erange).ravel()
                vals = level.list_vals[rows].tolist()
                lens = level.lens[rows].tolist()
                for k, node in enumerate(list_nodes.tolist()):
                    base = k * m
                    memo[(j, node)] = [
                        row[:ln] for row, ln in zip(vals[base : base + m], lens[base : base + m])
                    ]


class ColumnarEvaluator:
    """Evaluates batches of programs against one example set, columnar.

    One instance is bound to the *inputs* of an IO specification (outputs
    play no role in execution); :meth:`outputs` and :meth:`traces` accept
    any batch of programs.  Examples are grouped by input type signature
    and each group is evaluated as its own prefix trie.

    Output evaluation keeps a :class:`_PersistentTrie` alive per
    ``(signature block, registry)`` between calls, so repeated batches pay
    only for their novel program suffixes.  The tries are invalidated by
    :meth:`invalidate` (the inputs changed — in practice a new evaluator
    is built instead), retired when a registry object is swapped for the
    same key, and swept once ``trie_node_budget`` resident nodes are
    exceeded.  Trace evaluation always uses the per-call path: traces
    need every intermediate step and are memoized per program upstream.
    """

    def __init__(
        self,
        example_inputs: Sequence[Sequence[Value]],
        trie_node_budget: int = 200_000,
    ) -> None:
        self.n_examples = len(example_inputs)
        self.trie_node_budget = trie_node_budget
        self._stats = KernelStats()
        #: ``(block index, id(registry))`` -> (pinned registry, trie).  The
        #: pinned reference keeps the id stable while the entry lives; a
        #: ``None`` trie marks a combination that proved unsupported
        #: mid-insert and stays on the per-call paths.
        self._tries: Dict[Tuple[int, int], Tuple[FunctionRegistry, Optional["_PersistentTrie"]]] = {}
        blocks: "OrderedDict[Tuple[DSLType, ...], _SignatureBlock]" = OrderedDict()
        for e, inputs in enumerate(example_inputs):
            norm = normalize_inputs(inputs)
            signature = input_signature(norm)
            block = blocks.get(signature)
            if block is None:
                block = _SignatureBlock(signature)
                blocks[signature] = block
            block.example_indices.append(e)
            block.norm_inputs.append(norm)
        self.blocks = list(blocks.values())
        for block in self.blocks:
            block.encode()

    # ------------------------------------------------------------------
    def outputs(self, programs: Sequence[Program]) -> List[List[Value]]:
        """Final outputs, ``[program][example]`` in original example order."""
        return self._evaluate(programs, want_traces=False)

    def traces(self, programs: Sequence[Program]) -> List[List[ExecutionTrace]]:
        """Full execution traces, ``[program][example]``."""
        return self._evaluate(programs, want_traces=True)

    def stats(self) -> dict:
        """Kernel + trie telemetry accumulated over this evaluator's life."""
        return self._stats.snapshot()

    def invalidate(self) -> None:
        """Drop every persistent trie (e.g. the registry contents changed
        in place); the next batch rebuilds incrementally from empty."""
        if self._tries:
            self._stats.trie_evictions += len(self._tries)
            self._tries.clear()

    # ------------------------------------------------------------------
    def _evaluate(self, programs: Sequence[Program], want_traces: bool):
        results: List[List] = [[None] * self.n_examples for _ in programs]
        # programs from different registries never share a trie: equal fids
        # would alias different functions
        partitions: "OrderedDict[int, List[int]]" = OrderedDict()
        for i, program in enumerate(programs):
            partitions.setdefault(id(program.registry), []).append(i)
        for indices in partitions.values():
            part = [programs[i] for i in indices]
            registry = part[0].registry
            for block_idx, block in enumerate(self.blocks):
                self._evaluate_block(
                    block_idx, block, part, registry, indices, results, want_traces
                )
        return results

    def _trie_for(
        self, block_idx: int, block, registry, fn_table, bind_cache
    ) -> Optional["_PersistentTrie"]:
        key = (block_idx, id(registry))
        entry = self._tries.get(key)
        if entry is not None and entry[0] is registry:
            return entry[1]
        # entry[0] is not registry: the id was reused after the pinned
        # registry was dropped by a sweep — treat as a registry swap
        try:
            trie = _PersistentTrie(block, registry, fn_table, bind_cache, self._stats)
        except _ColumnarUnsupported:
            trie = None
        if key not in self._tries and len(self._tries) >= 8:
            # bounded sweep: distinct registries churning through one
            # evaluator (cross-registry batches are rare; keep it simple)
            self._stats.trie_evictions += len(self._tries)
            self._tries.clear()
        self._tries[key] = (registry, trie)
        return trie

    def _evaluate_block(
        self, block_idx, block, part, registry, indices, results, want_traces
    ) -> None:
        run: Optional[_TrieRun] = None
        trie_outputs: Optional[List[list]] = None
        if block.vector_ok:
            _registry, fn_table, bind_cache = _tables_for(registry)
            if not want_traces:
                trie = self._trie_for(block_idx, block, registry, fn_table, bind_cache)
                if trie is not None:
                    try:
                        trie_outputs = trie.outputs(part)
                    except _ColumnarUnsupported:
                        # an insert overflowed the safe range mid-round:
                        # disable this (block, registry) combination and
                        # fall through to the per-call paths below
                        self._tries[(block_idx, id(registry))] = (registry, None)
                        trie_outputs = None
                    else:
                        if trie.node_count > self.trie_node_budget:
                            # size-bounded eviction: drop the trie; the
                            # next batch rebuilds incrementally from empty
                            self._stats.trie_evictions += 1
                            del self._tries[(block_idx, id(registry))]
            if trie_outputs is None:
                try:
                    run = _TrieRun(
                        block, part, registry, fn_table, bind_cache, want_traces,
                        stats=self._stats,
                    )
                except _ColumnarUnsupported:
                    run = None
        # single-block fast path: block-local example order IS the global
        # order, so results rows can be assigned wholesale
        direct = block.m == self.n_examples
        for local_i, i in enumerate(indices):
            if trie_outputs is not None:
                per_example = trie_outputs[local_i]
            elif run is not None:
                if want_traces:
                    per_example = [run.trace_of(local_i, e) for e in range(block.m)]
                else:
                    per_example = run.outputs_of(local_i)
            else:
                per_example = self._serial(part[local_i], block, want_traces)
            if direct:
                results[i] = per_example  # freshly allocated by every branch above
            else:
                for local_e, e in enumerate(block.example_indices):
                    results[i][e] = per_example[local_e]

    @staticmethod
    def _serial(program: Program, block: _SignatureBlock, want_traces: bool):
        compiled = compile_program(program, block.signature)
        if want_traces:
            return [compiled.run(inputs, trace=True) for inputs in block.norm_inputs]
        return [compiled.output(inputs) for inputs in block.norm_inputs]


class BatchExecutionEngine(ExecutionEngine):
    """An :class:`ExecutionEngine` with population-batch entry points.

    ``outputs_batch`` / ``traces_batch`` / ``satisfies_batch`` answer for
    a whole population in one call: cached programs are served from the
    usual namespaces (with the same hit/miss accounting as the serial
    methods), the misses — deduplicated by program key — are evaluated in
    one columnar pass, and the results are stored back so every cache
    tier, snapshot and sibling consumer observes exactly what a serial
    run would have produced.

    Single-program calls (``outputs``/``traces``/``satisfies``) inherit
    the serial path unchanged: a columnar pass only pays off when a batch
    shares work.  Batch results are value- and trace-identical to serial
    ones; only cache *counter* trajectories may differ (a duplicate
    inside one batch counts as one miss per occurrence, where serial
    evaluation would turn the second occurrence into a hit).
    """

    #: consumers test this instead of isinstance to keep layers decoupled
    is_batch = True

    def __init__(self, cache: Optional[EvaluationCache] = None, compiled: bool = True) -> None:
        super().__init__(cache=cache, compiled=compiled)
        self._evaluators: "OrderedDict[Tuple, ColumnarEvaluator]" = OrderedDict()
        #: batches answered entirely from cache, short-circuited before
        #: any dedup bookkeeping or trie packing
        self.batch_full_hits = 0

    # ------------------------------------------------------------------
    def kernel_stats(self) -> dict:
        """Aggregated :meth:`ColumnarEvaluator.stats` over every resident
        evaluator, plus the engine-level ``batch_full_hits`` counter."""
        totals: Dict[str, float] = {}
        for evaluator in self._evaluators.values():
            for field, value in evaluator.stats().items():
                if field == "reuse_ratio":
                    continue
                totals[field] = totals.get(field, 0) + value
        lookups = totals.get("trie_leaf_lookups", 0)
        totals["reuse_ratio"] = totals.get("trie_leaf_hits", 0) / lookups if lookups else 0.0
        totals["batch_full_hits"] = self.batch_full_hits
        return totals

    def _evaluator_for(self, io_set: IOSet, io_key: Tuple) -> ColumnarEvaluator:
        evaluator = self._evaluators.get(io_key)
        if evaluator is None:
            evaluator = ColumnarEvaluator([example.inputs for example in io_set])
            if len(self._evaluators) >= 32:
                self._evaluators.popitem(last=False)
            self._evaluators[io_key] = evaluator
        else:
            self._evaluators.move_to_end(io_key)
        return evaluator

    def _batch_outputs(self, programs: List[Program], io_set: IOSet, io_key: Tuple) -> List[List[Value]]:
        if not self.compiled:
            # reference-interpreter engines are the cross-check control:
            # keep them on the exact reference path, example by example
            return [
                [self._execute_output(program, example.inputs) for example in io_set]
                for program in programs
            ]
        if len(programs) == 1:
            program = programs[0]
            return [[self._execute_output(program, example.inputs) for example in io_set]]
        return self._evaluator_for(io_set, io_key).outputs(programs)

    def _batch_traces(self, programs: List[Program], io_set: IOSet, io_key: Tuple) -> List[List[ExecutionTrace]]:
        if not self.compiled:
            return [
                [self._execute_trace(program, example.inputs) for example in io_set]
                for program in programs
            ]
        if len(programs) == 1:
            program = programs[0]
            return [[self._execute_trace(program, example.inputs) for example in io_set]]
        return self._evaluator_for(io_set, io_key).traces(programs)

    # ------------------------------------------------------------------
    def outputs_batch(
        self, programs: Sequence[Program], io_set: IOSet, io_key: Optional[Tuple] = None
    ) -> List[Tuple[Value, ...]]:
        """:meth:`~ExecutionEngine.outputs` for a whole population."""
        resolved = self.io_key(io_set) if io_key is None else io_key
        results: List[Optional[Tuple[Value, ...]]] = [None] * len(programs)
        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        pending_programs: List[Program] = []
        cache = self.cache
        peek = cache.peek
        # an empty cache cannot answer any peek; nothing is stored until
        # after this loop, so the emptiness check holds for all programs
        check_cache = len(cache) > 0
        n_hits = 0
        for idx, program in enumerate(programs):
            pkey = program_key(program)
            if check_cache:
                key = (pkey, resolved)
                cached = peek(_NS_OUTPUTS, key)
                if cached is not None:
                    n_hits += 1
                    results[idx] = cached
                    continue
                traces = peek(_NS_TRACES, key)
                if traces is not None:
                    # derived from a cached trace: an execution avoided is a hit
                    n_hits += 1
                    outputs = tuple(trace.output for trace in traces)
                    cache.put(_NS_OUTPUTS, key, outputs)
                    results[idx] = outputs
                    continue
            positions = pending.get(pkey)
            if positions is None:
                pending[pkey] = [idx]
                pending_programs.append(program)
            else:
                positions.append(idx)
        cache.stats.record_many(_NS_OUTPUTS, n_hits, len(programs) - n_hits)
        if not pending_programs:
            # full-hit batch: nothing to dedup, pack or dispatch
            self.batch_full_hits += 1
            return results
        evaluated = self._batch_outputs(pending_programs, io_set, resolved)
        for (pkey, positions), out in zip(pending.items(), evaluated):
            outputs = tuple(out)
            self.cache.put(_NS_OUTPUTS, (pkey, resolved), outputs)
            for idx in positions:
                results[idx] = outputs
        return results

    def traces_batch(
        self, programs: Sequence[Program], io_set: IOSet, io_key: Optional[Tuple] = None
    ) -> List[List[ExecutionTrace]]:
        """:meth:`~ExecutionEngine.traces` for a whole population."""
        resolved = self.io_key(io_set) if io_key is None else io_key
        results: List[Optional[List[ExecutionTrace]]] = [None] * len(programs)
        pending: "OrderedDict[Tuple, List[int]]" = OrderedDict()
        pending_programs: List[Program] = []
        for idx, program in enumerate(programs):
            pkey = program_key(program)
            cached = self.cache.get(_NS_TRACES, (pkey, resolved))
            if cached is not None:
                results[idx] = cached
                continue
            positions = pending.get(pkey)
            if positions is None:
                pending[pkey] = [idx]
                pending_programs.append(program)
            else:
                positions.append(idx)
        if not pending_programs:
            self.batch_full_hits += 1
            return results
        evaluated = self._batch_traces(pending_programs, io_set, resolved)
        for (pkey, positions), traces in zip(pending.items(), evaluated):
            self.cache.put(_NS_TRACES, (pkey, resolved), traces)
            for idx in positions:
                results[idx] = traces
        return results

    def satisfies_batch(
        self, programs: Sequence[Program], io_set: IOSet, io_key: Optional[Tuple] = None
    ) -> List[bool]:
        """:meth:`~ExecutionEngine.satisfies` for a whole population."""
        resolved = self.io_key(io_set) if io_key is None else io_key
        results: List[Optional[bool]] = [None] * len(programs)
        pending: List[int] = []
        for idx, program in enumerate(programs):
            cached = self.cache.get(_NS_SOLUTIONS, (program_key(program), resolved))
            if cached is not None:
                results[idx] = cached
            else:
                pending.append(idx)
        if not pending:
            self.batch_full_hits += 1
            return results
        outputs = self.outputs_batch([programs[i] for i in pending], io_set, io_key=resolved)
        for idx, out in zip(pending, outputs):
            verdict = all(
                values_equal(value, example.output) for value, example in zip(out, io_set)
            )
            self.cache.put(_NS_SOLUTIONS, (program_key(programs[idx]), resolved), verdict)
            results[idx] = verdict
        return results
