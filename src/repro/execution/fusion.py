"""Cross-job batch fusion: one columnar plane shared by concurrent jobs.

The serving scheduler's micro-batch window co-admits several jobs into
one ``session.run`` call, but each job's populations used to dispatch
their own kernels even when every job evaluated against the *same
example inputs* (the shape of many clients synthesizing over one
dataset).  This module merges those per-job population batches into
shared kernel dispatches:

:class:`FusionPlane`
    The rendezvous point.  It owns one persistent
    :class:`~repro.execution.vectorized.ColumnarEvaluator` over the
    shared inputs; concurrent jobs submit their pending population
    batches and a short rendezvous window combines same-kind requests
    into one evaluator call — one trie walk, one set of kernel
    dispatches — before splitting the results back per job.

:class:`FusedBatchEngine`
    A per-job :class:`~repro.execution.vectorized.BatchExecutionEngine`
    whose multi-program evaluations route through the plane.  Cache
    lookups read through the backend's shared evaluation cache via an
    overlay (:class:`_OverlayCache`): reads see warm pre-existing
    entries, writes stay job-private until the session merges them back
    in admission order.

Per-job accounting stays exact by construction:

* **row ownership** is positional — job ``i`` contributed programs
  ``[offset_i, offset_i + n_i)`` of a combined call and receives exactly
  those result rows, so budget charges and solution checks are per-job;
* **cache accounting** — the session only fuses jobs with identical
  inputs but *distinct* IO sets, so every cache key (always
  ``(program, io_key)``) is disjoint across fused jobs and each job's
  overlay counters equal what an unfused run would have recorded;
* **events and cancellation** — each job runs its own thread with its
  own listener; a cancelled job simply leaves the plane
  (:meth:`FusionPlane.unregister`), and the remaining jobs keep fusing
  among themselves.

Results are bit-identical to unfused runs: a combined evaluation is the
same columnar pass over the union trie, and every per-job value is a
deterministic function of ``(program, io_set)``.  The only observable
delta is the ``fused_dispatches`` counter on progress events.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.dsl.equivalence import IOSet
from repro.dsl.program import Program
from repro.dsl.types import Value
from repro.execution.cache import EvaluationCache, freeze_value
from repro.execution.vectorized import BatchExecutionEngine, ColumnarEvaluator

_MISSING = object()


def inputs_key(example_inputs: Sequence[Sequence[Value]]) -> Tuple:
    """Structural identity of a task's example inputs (outputs excluded).

    Jobs whose IO sets share this key evaluate every program over the
    same packed columns, which is exactly the condition for their kernel
    dispatches to fuse.
    """
    return tuple(
        tuple(freeze_value(value) for value in inputs) for inputs in example_inputs
    )


class FusionPlane:
    """Combines concurrent jobs' population batches into shared dispatches.

    Lifecycle: the session :meth:`register`\\ s one token per fused job,
    each job's engine calls :meth:`evaluate` per population batch, and
    the job's ``finally`` block :meth:`unregister`\\ s — which is also
    what keeps the plane live: a rendezvous only waits for tokens that
    are still registered, so early-finishing (or cancelled) jobs never
    stall the rest.

    The rendezvous window (``max_wait`` seconds) bounds how long a
    request waits for co-batching before dispatching alone; jobs over
    the same task shape settle into lockstep after the first combined
    call, so the window is rarely paid once fusion is established.
    """

    def __init__(
        self,
        example_inputs: Sequence[Sequence[Value]],
        max_wait: float = 0.01,
    ) -> None:
        self.evaluator = ColumnarEvaluator(example_inputs)
        self.key = inputs_key(example_inputs)
        self.max_wait = max_wait
        self._cond = threading.Condition()
        self._next_token = 0
        self._active: set = set()
        #: token -> (kind, programs) awaiting the next combined dispatch
        self._requests: Dict[int, Tuple[str, Sequence[Program]]] = {}
        #: token -> split result rows of an executed dispatch
        self._results: Dict[int, List[list]] = {}
        #: token -> kernel dispatches issued by multi-job combined calls
        #: that included this job's rows
        self._fused: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def register(self) -> int:
        """Join the plane; returns the job's ownership token."""
        with self._cond:
            token = self._next_token
            self._next_token += 1
            self._active.add(token)
            self._fused[token] = 0
            return token

    def unregister(self, token: int) -> None:
        """Leave the plane (idempotent); wakes any rendezvous waiting on us."""
        with self._cond:
            self._active.discard(token)
            # a request this job never collected must not wedge a later
            # rendezvous count
            self._requests.pop(token, None)
            self._cond.notify_all()

    def fused_dispatches(self, token: int) -> int:
        """Dispatches this job shared with at least one other job so far."""
        with self._cond:
            return self._fused.get(token, 0)

    # ------------------------------------------------------------------
    def evaluate(self, token: int, kind: str, programs: Sequence[Program]) -> List[list]:
        """One job's population batch: rendezvous, combine, split.

        ``kind`` is ``"outputs"`` or ``"traces"``.  Blocks until the
        batch was part of a dispatch (combined when other registered
        jobs submitted within the window, alone otherwise) and returns
        this job's result rows in submission order.
        """
        with self._cond:
            self._requests[token] = (kind, programs)
            self._cond.notify_all()
            deadline = time.monotonic() + self.max_wait
            while token not in self._results:
                ready = all(t in self._requests for t in self._active)
                remaining = deadline - time.monotonic()
                if ready or remaining <= 0:
                    if token in self._requests:
                        self._execute_locked()
                    continue
                self._cond.wait(timeout=remaining)
            return self._results.pop(token)

    def _execute_locked(self) -> None:
        """Dispatch every pending request (caller holds the condition).

        Same-kind requests concatenate into one evaluator call; the
        evaluator's dispatch counter around a multi-job call is what
        feeds each participant's ``fused_dispatches``.
        """
        pending, self._requests = self._requests, {}
        by_kind: Dict[str, List[Tuple[int, Sequence[Program]]]] = {}
        for tok, (kind, programs) in pending.items():
            by_kind.setdefault(kind, []).append((tok, programs))
        stats = self.evaluator._stats
        for kind, entries in by_kind.items():
            combined: List[Program] = []
            for _tok, programs in entries:
                combined.extend(programs)
            before = stats.dispatches
            if kind == "traces":
                rows = self.evaluator.traces(combined)
            else:
                rows = self.evaluator.outputs(combined)
            dispatched = stats.dispatches - before
            offset = 0
            for tok, programs in entries:
                self._results[tok] = rows[offset : offset + len(programs)]
                offset += len(programs)
            if len(entries) > 1:
                for tok, _programs in entries:
                    if tok in self._fused:
                        self._fused[tok] += dispatched
        self._cond.notify_all()


class _OverlayCache:
    """A job-private write overlay over a shared base evaluation cache.

    Reads fall through to ``base`` (via ``peek`` — base counters are
    never touched), writes land in the private layer only, and hit/miss
    accounting runs against the private :class:`CacheStats` — so each
    fused job's counters equal what its unfused serial run would have
    recorded (fused jobs have disjoint cache keys; see module docstring).
    :meth:`merge_into` replays the private writes into a base cache once
    the job settled, preserving dirty-window semantics for L3 persists.
    """

    def __init__(self, base: Optional[EvaluationCache] = None) -> None:
        self._local = EvaluationCache()
        self._base = base
        self.stats = self._local.stats
        self.max_entries = self._local.max_entries

    def __len__(self) -> int:
        return len(self._local) + (len(self._base) if self._base is not None else 0)

    @property
    def enabled(self) -> bool:
        return True

    def peek(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        value = self._local.peek(namespace, key, _MISSING)
        if value is _MISSING and self._base is not None:
            value = self._base.peek(namespace, key, _MISSING)
        return default if value is _MISSING else value

    def get(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        value = self.peek(namespace, key, _MISSING)
        self.stats.record(namespace, hit=value is not _MISSING)
        return default if value is _MISSING else value

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        self._local.put(namespace, key, value)

    def merge_into(self, base: EvaluationCache) -> int:
        """Replay this job's private writes into ``base``; returns the count."""
        items = self._local.snapshot()
        for (namespace, key), value in items:
            base.put(namespace, key, value)
        return len(items)


class FusedBatchEngine(BatchExecutionEngine):
    """A per-job batch engine whose population dispatches ride the plane.

    Built by :meth:`NetSynBackend.fused_executor` for each job of a
    fusion group.  Single-program calls and reference-interpreter
    engines keep the exact serial paths of the base class; only the
    multi-program columnar evaluations rendezvous on the plane — and
    only for IO sets over the plane's example inputs (any other IO set
    a fitness function might evaluate falls back to the private
    evaluator, so results never depend on what happens to be fused).
    """

    def __init__(
        self,
        plane: FusionPlane,
        token: int,
        base_cache: Optional[EvaluationCache] = None,
        compiled: bool = True,
    ) -> None:
        super().__init__(cache=_OverlayCache(base_cache), compiled=compiled)
        self._plane = plane
        self._token = token
        #: io_key -> does this IO set run over the plane's inputs?
        self._plane_keys: Dict[Tuple, bool] = {}

    @property
    def fused_dispatches(self) -> int:
        """Kernel dispatches this job shared with concurrent jobs so far
        (stamped onto per-generation progress events by the GA engine)."""
        return self._plane.fused_dispatches(self._token)

    def merge_into(self, base: EvaluationCache) -> int:
        """Merge this job's private cache writes into ``base``."""
        return self.cache.merge_into(base)

    # ------------------------------------------------------------------
    def _on_plane(self, io_set: IOSet, io_key: Tuple) -> bool:
        on_plane = self._plane_keys.get(io_key)
        if on_plane is None:
            on_plane = (
                inputs_key([example.inputs for example in io_set]) == self._plane.key
            )
            self._plane_keys[io_key] = on_plane
        return on_plane

    def _batch_outputs(
        self, programs: List[Program], io_set: IOSet, io_key: Tuple
    ) -> List[List[Value]]:
        if self.compiled and len(programs) > 1 and self._on_plane(io_set, io_key):
            return self._plane.evaluate(self._token, "outputs", programs)
        return super()._batch_outputs(programs, io_set, io_key)

    def _batch_traces(self, programs: List[Program], io_set: IOSet, io_key: Tuple):
        if self.compiled and len(programs) > 1 and self._on_plane(io_set, io_key):
            return self._plane.evaluate(self._token, "traces", programs)
        return super()._batch_traces(programs, io_set, io_key)
