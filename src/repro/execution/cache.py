"""Cross-layer evaluation cache for candidate-program executions.

Phase 2 of NetSyn evaluates the same candidate program on the same IO
specification several times per generation: once for the solution check,
once per fitness scoring, and again whenever the gene survives into the
next generation (elitism, reproduction).  The :class:`EvaluationCache`
memoizes those executions under **structural** keys so that

* the solution check and fitness scoring share one execution, and
* elite/survivor evaluations are reused across generations, and
* keys are stable across worker processes (no reliance on Python's
  process-salted ``hash()``), which makes cache contents shareable and
  keeps parallel runs reproducible.

The cache is namespaced (``"outputs"``, ``"traces"``, ``"solutions"``,
``"score:<fitness>"`` …) so independent layers never collide, and bounded:
when full, the oldest entries are evicted first (insertion order).  A
``max_entries`` of 0 disables storage entirely, which is how the
bit-identical cached-vs-uncached tests construct their baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.dsl.equivalence import IOSet
from repro.dsl.program import Program
from repro.dsl.types import Value

_MISSING = object()


def freeze_value(value: Value) -> Hashable:
    """Hashable, structural form of a DSL value (lists become tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(int(v) for v in value)
    return int(value)


def io_set_key(io_set: IOSet) -> Tuple:
    """Stable structural key of an IO specification.

    Unlike keys built from Python's builtin ``hash()`` (which is salted
    per process for strings and can collide across objects), this key is
    the full frozen structure of the examples: equal specifications map
    to equal keys in every process, and distinct specifications map to
    distinct keys.
    """
    return tuple(
        (tuple(freeze_value(v) for v in example.inputs), freeze_value(example.output))
        for example in io_set
    )


def program_key(program: Program) -> Tuple[int, ...]:
    """Stable structural key of a program (its function-id sequence)."""
    return program.function_ids


def stage_newest(items, bound: int) -> "OrderedDict[Hashable, Any]":
    """Stream ``(key, value)`` pairs through a ``bound``-sized staging dict.

    The shared engine behind the bounded snapshot-load paths
    (:meth:`LRUCache.load`, :meth:`EvaluationCache.load_snapshot`):
    iterating any oldest-first iterable, it keeps only the newest
    ``bound`` distinct keys — each holding its last value — without ever
    materializing more than ``bound`` entries, no matter how large the
    source (e.g. a whole L3 cache log) is.
    """
    staged: "OrderedDict[Hashable, Any]" = OrderedDict()
    for key, value in items:
        if key in staged:
            staged.move_to_end(key)
        elif len(staged) >= bound:
            staged.popitem(last=False)
        staged[key] = value
    return staged


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    #: L2 shared-table hits observed through a TieredScoreCache — split
    #: out from ``hits`` because an L2 hit is *also* an L1 miss (the
    #: local lookup ran and failed before the shared tier answered)
    shared_hits: int = 0
    #: the subset of ``shared_hits`` whose entry another process stored
    shared_cross_hits: int = 0
    #: L4 remote-tier hits observed through a TieredScoreCache with an
    #: attached network score tier (``repro.serving``) — like
    #: ``shared_hits``, every remote hit is also a local miss
    remote_hits: int = 0
    by_namespace: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def record(self, namespace: str, hit: bool) -> None:
        h, m = self.by_namespace.get(namespace, (0, 0))
        if hit:
            self.hits += 1
            self.by_namespace[namespace] = (h + 1, m)
        else:
            self.misses += 1
            self.by_namespace[namespace] = (h, m + 1)

    def record_many(self, namespace: str, hits: int, misses: int) -> None:
        """Bulk counterpart of :meth:`record` for batch lookups."""
        h, m = self.by_namespace.get(namespace, (0, 0))
        self.hits += hits
        self.misses += misses
        self.by_namespace[namespace] = (h + hits, m + misses)

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "shared_hits": self.shared_hits,
            "shared_cross_hits": self.shared_cross_hits,
            "remote_hits": self.remote_hits,
            "hit_rate": self.hit_rate,
            "by_namespace": {k: {"hits": v[0], "misses": v[1]} for k, v in self.by_namespace.items()},
        }


class EvaluationCache:
    """Bounded, namespaced memo store keyed by structural program/IO keys.

    Parameters
    ----------
    max_entries:
        Maximum number of entries held across all namespaces.  When the
        bound is reached, the oldest quarter of the entries is evicted in
        one sweep.  ``0`` disables caching (every ``get`` misses and
        ``put`` is a no-op) — useful as an uncached control.
    """

    def __init__(self, max_entries: int = 200_000) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        self.max_entries = int(max_entries)
        self._store: Dict[Tuple[str, Hashable], Any] = {}
        #: keys written since the last :meth:`clear_dirty` (delta journal)
        self._dirty: set = set()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    def get(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Cached value for ``(namespace, key)`` or ``default`` on a miss."""
        value = self._store.get((namespace, key), _MISSING)
        hit = value is not _MISSING
        self.stats.record(namespace, hit)
        return value if hit else default

    def peek(self, namespace: str, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching the hit/miss counters."""
        value = self._store.get((namespace, key), _MISSING)
        return default if value is _MISSING else value

    def put(self, namespace: str, key: Hashable, value: Any) -> None:
        """Store ``value``; evicts oldest entries when the bound is hit."""
        if not self.enabled:
            return
        if len(self._store) >= self.max_entries and (namespace, key) not in self._store:
            evict = max(1, self.max_entries // 4)
            for stale in list(self._store)[:evict]:
                del self._store[stale]
            self.stats.evictions += evict
        self._store[(namespace, key)] = value
        self._dirty.add((namespace, key))
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop every entry (the stats object is preserved)."""
        self._store.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------
    def snapshot(self, namespaces: Optional[Tuple[str, ...]] = None) -> list:
        """Picklable ``((namespace, key), value)`` pairs, oldest first.

        Keys are structural (process-stable), so a snapshot taken in one
        process can warm-start the cache of another; ``namespaces``
        restricts the export (e.g. to the compact ``outputs`` /
        ``solutions`` entries, leaving heavyweight traces behind).
        """
        if namespaces is None:
            return list(self._store.items())
        wanted = set(namespaces)
        return [(key, value) for key, value in self._store.items() if key[0] in wanted]

    def clear_dirty(self) -> None:
        """Start a fresh delta window (e.g. at the start of a worker job)."""
        self._dirty.clear()

    def dirty_snapshot(self, namespaces: Optional[Tuple[str, ...]] = None) -> list:
        """Entries written since :meth:`clear_dirty`, store order.

        The per-job merge-back payload: bounded by what the job actually
        computed, not by the cache size.  Evicted-after-write keys are
        absent; ``namespaces`` restricts the export like :meth:`snapshot`.
        """
        if not self._dirty:
            return []
        wanted = None if namespaces is None else set(namespaces)
        return [
            (key, value)
            for key, value in self._store.items()
            if key in self._dirty and (wanted is None or key[0] in wanted)
        ]

    def load_snapshot(self, items) -> int:
        """Bulk-insert snapshot pairs; returns how many were retained.

        Values are deterministic per key, so loading a snapshot can never
        change results — existing entries are simply overwritten with the
        identical value.  This is also the cross-process merge primitive:
        worker cache deltas merged back into a parent (or a persisted
        snapshot reloaded in a later process) land here, and merging is
        idempotent.  A disabled cache retains nothing and reports 0.

        The input streams through a staging dict bounded by
        ``max_entries``, so loading a snapshot far larger than the cache
        (e.g. a long-lived L3 log) keeps only the newest entries without
        ever materializing the whole snapshot in memory.
        """
        if not self.enabled:
            for _ in items:
                pass
            return 0
        staged = stage_newest(items, self.max_entries)
        for (namespace, key), value in staged.items():
            self.put(namespace, key, value)
        # count after the fact: staged entries can still be swept out by
        # the oldest-quarter eviction when the cache already held others
        return sum(1 for full_key in staged if full_key in self._store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EvaluationCache(entries={len(self._store)}, max={self.max_entries}, "
            f"hit_rate={self.stats.hit_rate:.3f})"
        )
