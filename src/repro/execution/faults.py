"""Deterministic fault injection for the fault-tolerance harness.

Every recovery path in the service layer — worker restarts, job retries,
quarantine, truncated-segment skips, shared-table recreation — exists to
survive failures that are rare and non-deterministic in production.  To
*test* those paths they must be neither: this module lets a seeded
:class:`FaultPlan` fire precisely-targeted faults at named **sites** the
runtime code instruments with :func:`fire`:

``worker_start``
    In a supervised worker, after a job is claimed but before it runs
    (target ``"<job_id>:<attempt>"``).  A ``crash`` here simulates a
    worker dying mid-job with no work done.
``pre_merge``
    In a supervised worker, after a job computed its outcome but before
    the outcome is reported (same target).  A ``crash`` here simulates a
    worker dying with finished-but-unreported work — the worst crash
    point, because the parent must both detect the death and re-run work
    that actually completed.
``event_put``
    In the worker-side event emitter, before a queue put (target
    ``"<job_id>"``).  A ``raise`` here simulates a broken event pipe;
    the emitter degrades to not streaming instead of failing the job.
``l3_append``
    In the parent, after an L3 cache-log segment is written (target is
    the segment file name).  A ``truncate`` here simulates the process
    being killed mid-write, leaving a torn segment for the CRC framing
    to reject on the next load.
``table_attach``
    When a process attaches the L2 shared score table (target is the
    table path).  A ``raise`` here simulates a missing/short mmap file;
    the attaching worker degrades to L1-only caching.

Plans are plain picklable dataclasses so they travel to worker processes
with the rest of the job payload, and firing is counted per site *per
process* — a plan matched by ``nth`` alone would fire in every worker,
so crash faults are normally targeted by ``match`` against the
deterministic ``job_id:attempt`` string instead.

The module is dependency-free and its fast path (no plan installed) is a
single global ``None`` check, so instrumented sites cost nothing in
production.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: the sites the runtime instruments; ``fire`` rejects unknown names so a
#: typo in a plan fails the test that wrote it instead of silently never
#: firing
SITES = ("worker_start", "pre_merge", "event_put", "l3_append", "table_attach")

#: what a matched fault does when it fires
ACTIONS = ("crash", "raise", "truncate", "hang", "freeze")


class FaultInjected(OSError):
    """Raised by ``action="raise"`` faults.

    Subclasses :class:`OSError` deliberately: the recovery paths under
    test guard real I/O failures with ``except OSError``, and an injected
    fault must travel the exact same handler.
    """


@dataclass(frozen=True)
class Fault:
    """One injectable fault: where, what, and when it fires."""

    site: str
    action: str = "crash"
    #: substring match against the site's target string ("" matches all)
    match: str = ""
    #: fire on the nth *matching* arrival at the site (1-based, per process)
    nth: int = 1
    #: how many consecutive matching arrivals fire (after ``nth`` is reached)
    count: int = 1

    def validate(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; sites: {SITES}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; actions: {ACTIONS}")
        if self.nth < 1 or self.count < 1:
            raise ValueError("fault nth and count must be >= 1")


@dataclass
class FaultPlan:
    """A seeded, deterministic set of faults to inject into one run.

    Install via ``ServiceConfig.fault_plan``: the session installs the
    plan in the parent (role ``"parent"``) and ships it to every
    supervised worker (role ``"worker"``).  ``seed`` participates in the
    supervisor's retry-jitter derivation so a faulted run's timing is
    reproducible.
    """

    faults: List[Fault] = field(default_factory=list)
    seed: int = 0

    def validate(self) -> None:
        for fault in self.faults:
            fault.validate()

    # ------------------------------------------------------------------
    @classmethod
    def single(cls, site: str, action: str = "crash", match: str = "",
               nth: int = 1, count: int = 1, seed: int = 0) -> "FaultPlan":
        """Convenience constructor for one-fault plans."""
        plan = cls(faults=[Fault(site, action, match, nth, count)], seed=seed)
        plan.validate()
        return plan

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from a compact string (the CI chaos-job surface).

        ``spec`` is ``;``-separated fault clauses, each
        ``site:action[:match[:nth[:count]]]`` — e.g.
        ``"worker_start:crash:job-1#0;l3_append:truncate::1"``.
        ``match`` may use ``#`` in place of ``:`` inside the
        ``job_id:attempt`` target (the clause separator is ``:``).
        """
        faults: List[Fault] = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = clause.split(":")
            if len(parts) < 2:
                raise ValueError(f"fault clause {clause!r} needs at least site:action")
            site, action = parts[0], parts[1]
            match = parts[2].replace("#", ":") if len(parts) > 2 else ""
            nth = int(parts[3]) if len(parts) > 3 and parts[3] else 1
            count = int(parts[4]) if len(parts) > 4 and parts[4] else 1
            faults.append(Fault(site, action, match, nth, count))
        plan = cls(faults=faults, seed=seed)
        plan.validate()
        return plan


# ---------------------------------------------------------------------------
# process-local installation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ROLE: str = "parent"
#: per-(site, match) counters of matching arrivals in this process
_COUNTS: Dict[Tuple[str, str], int] = {}
#: targets that fired in this process (observability for tests)
_FIRED: List[Tuple[str, str, str]] = []


def install(plan: Optional[FaultPlan], role: str = "parent") -> None:
    """Activate ``plan`` in this process (``None`` uninstalls).

    Re-installing the *same* plan object keeps the arrival counters — a
    session re-opened in the same process must not re-fire one-shot
    faults — while installing a different plan resets them.
    """
    global _ACTIVE, _ROLE
    if plan is not _ACTIVE:
        _COUNTS.clear()
        _FIRED.clear()
    _ACTIVE = plan
    _ROLE = role


def active() -> Optional[FaultPlan]:
    """The plan currently installed in this process (or None)."""
    return _ACTIVE


def fired() -> List[Tuple[str, str, str]]:
    """(site, action, target) of every fault fired in this process."""
    return list(_FIRED)


def reset() -> None:
    """Uninstall any plan and clear counters (test isolation)."""
    install(None)


def fire(site: str, target: str = "", path=None) -> None:
    """Arrival hook the runtime calls at an instrumented site.

    No-op (one global load) when no plan is installed.  When a fault
    matches, its action executes: ``raise`` raises :class:`FaultInjected`
    (an ``OSError``), ``truncate`` halves the file at ``path``, ``crash``
    calls ``os._exit`` — but **only in worker role**; in the parent the
    process under test must survive, so crash/hang/freeze degrade to
    :class:`FaultInjected`.
    """
    plan = _ACTIVE
    if plan is None:
        return
    if site not in SITES:
        raise ValueError(f"unknown fault site {site!r}; sites: {SITES}")
    for fault in plan.faults:
        if fault.site != site:
            continue
        if fault.match and fault.match not in target:
            continue
        key = (site, fault.match)
        arrival = _COUNTS.get(key, 0) + 1
        _COUNTS[key] = arrival
        if fault.nth <= arrival < fault.nth + fault.count:
            _FIRED.append((site, fault.action, target))
            _execute(fault, target, path)


def _execute(fault: Fault, target: str, path) -> None:
    action = fault.action
    if action == "truncate" and path is not None:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
        return
    if action == "raise" or _ROLE != "worker":
        # crash/hang/freeze must never take down the parent (that is the
        # process whose survival is under test): degrade to an injected
        # OSError which the site's recovery handler observes instead
        raise FaultInjected(
            f"injected fault at {fault.site} (action={action}, target={target!r})"
        )
    if action == "crash":
        # give the mp-queue feeder threads a beat to finish writing any
        # already-buffered frames: a frame torn mid-write would wedge the
        # parent's reader on a partial message, which is a different
        # failure than the abrupt-death one this action injects
        import time

        time.sleep(0.05)
        os._exit(170)  # simulate SIGKILL/OOM: no cleanup, no final flush
    if action == "hang":
        import time

        time.sleep(3600)  # main thread hangs; heartbeats keep flowing
        return
    if action == "freeze":
        import signal

        os.kill(os.getpid(), signal.SIGSTOP)  # whole process stops beating
        return
