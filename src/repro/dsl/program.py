"""Program representation: a flat sequence of DSL function identifiers.

A program *is* a gene in the genetic algorithm: a tuple of function ids
from ``ΣDSL``.  The :class:`Program` class stores the ids and provides
lookup, serialization and pretty printing.  Execution lives in
:mod:`repro.dsl.interpreter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.dsl.functions import DSLFunction, FunctionRegistry, REGISTRY


@dataclass(frozen=True)
class Program:
    """An immutable DSL program.

    Parameters
    ----------
    function_ids:
        Sequence of 1-based DSL function ids, executed in order.
    registry:
        Function registry to resolve ids against (defaults to the paper's
        41-function registry).
    """

    function_ids: Tuple[int, ...]
    registry: FunctionRegistry = REGISTRY

    def __init__(self, function_ids: Iterable[int], registry: FunctionRegistry = REGISTRY) -> None:
        ids = tuple(int(i) for i in function_ids)
        for fid in ids:
            if fid not in registry:
                raise ValueError(f"unknown DSL function id {fid}")
        object.__setattr__(self, "function_ids", ids)
        object.__setattr__(self, "registry", registry)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.function_ids)

    def __iter__(self) -> Iterator[int]:
        return iter(self.function_ids)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Program(self.function_ids[index], self.registry)
        return self.function_ids[index]

    def __hash__(self) -> int:
        return hash(self.function_ids)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self.function_ids == other.function_ids

    # -- views --------------------------------------------------------------
    @property
    def functions(self) -> List[DSLFunction]:
        """The resolved :class:`DSLFunction` objects, in execution order."""
        return [self.registry.by_id(fid) for fid in self.function_ids]

    @property
    def names(self) -> List[str]:
        """Display names of the functions, in execution order."""
        return [f.name for f in self.functions]

    def function_at(self, index: int) -> DSLFunction:
        """The resolved function at position ``index``."""
        return self.registry.by_id(self.function_ids[index])

    def output_type(self):
        """Type of the program's final output (type of its last function).

        Raises
        ------
        ValueError
            If the program is empty.
        """
        if not self.function_ids:
            raise ValueError("empty program has no output type")
        return self.function_at(len(self) - 1).return_type

    def produces_singleton(self) -> bool:
        """True when the program's final output is a single integer."""
        from repro.dsl.types import INT

        return self.output_type() is INT

    # -- edits (return new programs) -----------------------------------------
    def with_replacement(self, index: int, fid: int) -> "Program":
        """Return a copy with the function at ``index`` replaced by ``fid``."""
        if not 0 <= index < len(self):
            raise IndexError(index)
        ids = list(self.function_ids)
        ids[index] = fid
        return Program(ids, self.registry)

    def concatenated(self, other: "Program") -> "Program":
        """Return the concatenation ``self ++ other``."""
        return Program(self.function_ids + tuple(other.function_ids), self.registry)

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"function_ids": list(self.function_ids)}

    @classmethod
    def from_dict(cls, data: dict, registry: FunctionRegistry = REGISTRY) -> "Program":
        """Inverse of :meth:`to_dict`."""
        return cls(data["function_ids"], registry)

    @classmethod
    def from_names(cls, names: Sequence[str], registry: FunctionRegistry = REGISTRY) -> "Program":
        """Build a program from display names, e.g. ``["SORT", "REVERSE"]``."""
        return cls([registry.by_name(n).fid for n in names], registry)

    def pretty(self) -> str:
        """Multi-line, human readable source listing."""
        return "\n".join(self.names)

    def __str__(self) -> str:
        return " ; ".join(self.names)

    def __repr__(self) -> str:
        return f"Program({list(self.function_ids)!r})"
