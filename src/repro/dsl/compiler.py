"""Compile-once execution of DSL programs.

The interpreter resolves every argument of every call by scanning
backwards through the value history for the most recent value of the
required type (:meth:`repro.dsl.interpreter.Interpreter._resolve_arguments`).
Because each DSL function's return type and argument types are static,
the *position* each argument binds to depends only on the program's
function-id sequence and the types of the inputs — never on the runtime
values themselves.  A :class:`CompiledProgram` therefore precomputes, for
every step, the history slot each argument reads from (or the default
value to use when no slot of the required type exists), reducing
execution to a flat loop of indexed loads and calls.

Compilation is memoized per ``(function ids, input type signature,
registry)`` in a bounded module-level cache, so the GA — which executes
each candidate on several IO examples sharing one signature — compiles
each gene exactly once.

The reference interpreter stays the source of truth for the semantics;
``tests/test_execution_engine.py`` checks both paths agree (outputs and
full traces) on hundreds of random programs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from repro.dsl.functions import DSLFunction, FunctionRegistry
from repro.dsl.interpreter import ExecutionTrace, StepRecord
from repro.dsl.program import Program
from repro.dsl.types import DSLType, Value, default_for, type_of

#: A type signature of program inputs, e.g. ``(DSLType.LIST,)``.
InputSignature = Tuple[DSLType, ...]

#: Sentinel default used in bindings: ``-1`` means "no slot, use default".
_NO_SLOT = -1


def input_signature(inputs: Sequence[Value]) -> InputSignature:
    """The type signature of a concrete input tuple."""
    return tuple(type_of(v) for v in inputs)


def normalize_inputs(inputs: Sequence[Value]) -> List[Value]:
    """Normalize inputs exactly like the reference interpreter does."""
    normalized: List[Value] = []
    for value in inputs:
        if type_of(value) is DSLType.LIST:
            normalized.append([int(v) for v in value])
        else:
            normalized.append(int(value))
    return normalized


class CompiledStep:
    """One statement with its argument bindings resolved at compile time.

    ``bindings[k]`` is the history index argument ``k`` reads from, or
    ``-1`` when no value of the required type exists at this point, in
    which case ``defaults[k]`` supplies the value (``0`` for ints; ``None``
    marks "fresh empty list" so executions never share a mutable default).
    """

    __slots__ = ("index", "fid", "name", "impl", "bindings", "defaults")

    def __init__(
        self,
        index: int,
        fn: DSLFunction,
        bindings: Tuple[int, ...],
        defaults: Tuple[Optional[int], ...],
    ) -> None:
        self.index = index
        self.fid = fn.fid
        self.name = fn.name
        self.impl = fn.impl
        self.bindings = bindings
        self.defaults = defaults


class CompiledProgram:
    """A program whose argument bindings have been resolved statically.

    Instances are specific to one input type signature; obtain them via
    :func:`compile_program`, which caches compilations.
    """

    __slots__ = ("program", "signature", "steps", "registry")

    def __init__(self, program: Program, signature: InputSignature) -> None:
        self.program = program
        self.signature = signature
        self.registry: FunctionRegistry = program.registry
        self.steps: Tuple[CompiledStep, ...] = self._bind(program, signature)

    # ------------------------------------------------------------------
    @staticmethod
    def _bind(program: Program, signature: InputSignature) -> Tuple[CompiledStep, ...]:
        """Simulate the backwards type-scan over the static type history."""
        type_history: List[DSLType] = list(signature)
        steps: List[CompiledStep] = []
        for index, fid in enumerate(program.function_ids):
            fn = program.registry.by_id(fid)
            used: set = set()
            bindings: List[int] = []
            defaults: List[Optional[int]] = []
            for arg_type in fn.arg_types:
                position = None
                for slot in range(len(type_history) - 1, -1, -1):
                    if slot in used:
                        continue
                    if type_history[slot] is arg_type:
                        position = slot
                        break
                if position is None:
                    bindings.append(_NO_SLOT)
                    defaults.append(0 if arg_type is DSLType.INT else None)
                else:
                    used.add(position)
                    bindings.append(position)
                    defaults.append(0)
            steps.append(CompiledStep(index, fn, tuple(bindings), tuple(defaults)))
            type_history.append(fn.return_type)
        return tuple(steps)

    # ------------------------------------------------------------------
    def output(self, inputs: Sequence[Value]) -> Value:
        """Final output only — the hot path for solution checks.

        Arities 1 and 2 (every function of the paper's 41-function
        registry) take unrolled fast paths; any other arity — 0-ary
        constants or ≥3-ary functions from an extended registry — falls
        back to the generic argument loop :meth:`run` uses, so custom
        DSL domains never crash the hot path.
        """
        history = normalize_inputs(inputs)
        append = history.append
        out: Value = default_for(DSLType.INT)
        for step in self.steps:
            bindings = step.bindings
            arity = len(bindings)
            if arity == 1:
                b0 = bindings[0]
                a0 = history[b0] if b0 >= 0 else (step.defaults[0] if step.defaults[0] is not None else [])
                out = step.impl(a0)
            elif arity == 2:
                b0, b1 = bindings
                a0 = history[b0] if b0 >= 0 else (step.defaults[0] if step.defaults[0] is not None else [])
                a1 = history[b1] if b1 >= 0 else (step.defaults[1] if step.defaults[1] is not None else [])
                out = step.impl(a0, a1)
            else:
                args = tuple(
                    history[b] if b >= 0 else (d if d is not None else [])
                    for b, d in zip(bindings, step.defaults)
                )
                out = step.impl(*args)
            append(out)
        return out

    def run(self, inputs: Sequence[Value], trace: bool = True) -> ExecutionTrace:
        """Execute and return an :class:`ExecutionTrace`.

        With ``trace=True`` the trace carries one :class:`StepRecord` per
        statement, matching the reference interpreter field for field;
        with ``trace=False`` only ``inputs`` and ``output`` are filled in.
        """
        normalized = normalize_inputs(inputs)
        result = ExecutionTrace(inputs=tuple(normalized))
        if not trace:
            result.output = self.output(inputs)
            return result

        history: List[Value] = list(normalized)
        out: Value = default_for(DSLType.INT)
        records = result.steps
        for step in self.steps:
            args = tuple(
                history[b] if b >= 0 else (d if d is not None else [])
                for b, d in zip(step.bindings, step.defaults)
            )
            out = step.impl(*args)
            history.append(out)
            records.append(
                StepRecord(index=step.index, fid=step.fid, name=step.name, args=args, output=out)
            )
        result.output = out
        return result

    def intermediate_outputs(self, inputs: Sequence[Value]) -> List[Value]:
        """The per-statement outputs ``t_1 .. t_n`` without StepRecords."""
        history = normalize_inputs(inputs)
        n_inputs = len(history)
        for step in self.steps:
            args = tuple(
                history[b] if b >= 0 else (d if d is not None else [])
                for b, d in zip(step.bindings, step.defaults)
            )
            history.append(step.impl(*args))
        return history[n_inputs:]

    def __len__(self) -> int:
        return len(self.steps)


# ---------------------------------------------------------------------------
# Module-level compilation cache
# ---------------------------------------------------------------------------

#: Bound on the number of cached compilations; least-recently-used entries
#: are evicted first.
COMPILE_CACHE_MAX = 65_536

_compile_cache: "OrderedDict[Tuple, CompiledProgram]" = OrderedDict()


def compile_program(program: Program, signature: InputSignature) -> CompiledProgram:
    """Compile ``program`` for ``signature``, memoizing the result.

    The cache is a true LRU: a hit refreshes the entry's recency, so the
    GA's hottest genes (elites and survivors compiled thousands of times
    per run) survive the eviction sweep while stale one-off compilations
    are dropped first.  The cache key includes the registry's identity:
    the compiled steps hold references to the registry's function
    implementations, which also keeps the registry alive for the lifetime
    of the entry.
    """
    key = (program.function_ids, signature, id(program.registry))
    cached = _compile_cache.get(key)
    if cached is not None:
        _compile_cache.move_to_end(key)
        return cached
    compiled = CompiledProgram(program, signature)
    if len(_compile_cache) >= COMPILE_CACHE_MAX:
        # evict the least-recently-used ~25% in one sweep to amortize cost
        for _ in range(max(1, COMPILE_CACHE_MAX // 4)):
            _compile_cache.popitem(last=False)
    _compile_cache[key] = compiled
    return compiled


def compile_cache_size() -> int:
    """Number of compilations currently cached."""
    return len(_compile_cache)


def clear_compile_cache() -> None:
    """Drop all cached compilations (used by benchmarks and tests)."""
    _compile_cache.clear()
