"""List-manipulation DSL used by NetSyn (Appendix A of the paper).

The DSL has two data types — integers and lists of integers — and 41
functions.  Programs are flat sequences of function calls; arguments are
resolved implicitly by searching backwards for the most recent value of
the required type (falling back to the program inputs and then to default
values).  Every program composed of DSL functions is valid by
construction, which is what makes the DSL amenable to genetic search.
"""

from repro.dsl.types import (
    INT,
    LIST,
    DEFAULT_INT,
    DEFAULT_LIST,
    INT_MIN,
    INT_MAX,
    DSLType,
    Value,
    clamp_int,
    clamp_list,
    default_for,
    type_of,
    values_equal,
)
from repro.dsl.functions import (
    DSLFunction,
    FunctionRegistry,
    REGISTRY,
    Signature,
    SIGNATURES,
)
from repro.dsl.program import Program
from repro.dsl.interpreter import ExecutionTrace, Interpreter, StepRecord
from repro.dsl.compiler import (
    CompiledProgram,
    clear_compile_cache,
    compile_cache_size,
    compile_program,
    input_signature,
)
from repro.dsl.dce import eliminate_dead_code, effective_length, has_dead_code
from repro.dsl.generator import ProgramGenerator, InputGenerator
from repro.dsl.equivalence import (
    IOExample,
    IOSet,
    make_io_set,
    outputs_match,
    programs_equivalent,
    satisfies_io_set,
)

__all__ = [
    "INT",
    "LIST",
    "DEFAULT_INT",
    "DEFAULT_LIST",
    "INT_MIN",
    "INT_MAX",
    "DSLType",
    "Value",
    "clamp_int",
    "clamp_list",
    "default_for",
    "type_of",
    "values_equal",
    "DSLFunction",
    "FunctionRegistry",
    "REGISTRY",
    "Signature",
    "SIGNATURES",
    "Program",
    "ExecutionTrace",
    "Interpreter",
    "StepRecord",
    "CompiledProgram",
    "clear_compile_cache",
    "compile_cache_size",
    "compile_program",
    "input_signature",
    "eliminate_dead_code",
    "effective_length",
    "has_dead_code",
    "ProgramGenerator",
    "InputGenerator",
    "IOExample",
    "IOSet",
    "make_io_set",
    "outputs_match",
    "programs_equivalent",
    "satisfies_io_set",
]
