"""Vectorized (columnar) implementations of the DSL functions.

The columnar evaluator (:mod:`repro.execution.vectorized`) executes one
DSL function over a whole *batch* of rows at once — every (candidate
prefix, IO example) pair that applies the function at the same program
step.  This module provides the numpy kernels those dispatches run.

Column representation
---------------------
An ``int`` column is a 1-D ``int64`` array of shape ``[rows]``.  A list
column is a pair ``(values, lengths)``: ``values`` is a 2-D ``int64``
array of shape ``[rows, width]`` and ``lengths`` the per-row element
count.  Two invariants hold everywhere:

* cells at or beyond a row's length are **zero** (so whole-row reductions
  and decodes never need a mask rebuild), and
* list values produced by a DSL step are already saturated to
  ``[INT_MIN, INT_MAX]`` (program *inputs* are raw and may exceed the
  domain, which is why kernels clamp exactly where the scalar
  implementations do).

Every kernel is bit-exact against the scalar implementation in
:mod:`repro.dsl.functions` — including truncating division, per-step
saturation in ``SCANL1`` and the clamp placement of every family — which
is what keeps vectorized runs byte-identical to serial ones
(``tests/test_vectorized.py``).  Kernels never mutate their argument
columns (the evaluator hands out views into shared buffers); saturation
happens in place only on arrays a kernel freshly allocated.

Kernels are looked up per :class:`~repro.dsl.functions.DSLFunction` via
:func:`batch_impl_for`, which matches by function id *and* implementation
identity against the default registry: a custom registry reusing the
catalog's functions vectorizes, while a synthetic function (a second DSL
domain, a test double) safely falls back to its scalar ``impl`` row by
row inside the evaluator.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.dsl.functions import DSLFunction
from repro.dsl.types import INT_MAX, INT_MIN

#: An int column: ``int64[rows]``.
IntColumn = np.ndarray
#: A list column: ``(int64[rows, width], int64[rows])``.
ListColumn = Tuple[np.ndarray, np.ndarray]

#: Input values whose magnitude exceeds this bound are routed to the
#: scalar path: beyond it, int64 intermediates (sums over a row, pairwise
#: products) could overflow before the saturating clamp is applied.
SAFE_INT_BOUND = 2 ** 31

_I64_MAX = np.iinfo(np.int64).max
_I64_MIN = np.iinfo(np.int64).min

_ARANGES: Dict[int, np.ndarray] = {}


def _arange(width: int) -> np.ndarray:
    """Memoized ``np.arange(width)`` (row-position index, reused everywhere)."""
    cached = _ARANGES.get(width)
    if cached is None:
        cached = np.arange(width, dtype=np.int64)
        _ARANGES[width] = cached
    return cached


def length_mask(lengths: np.ndarray, width: int) -> np.ndarray:
    """Boolean validity mask ``[rows, width]``: True inside each row's length."""
    return _arange(width)[None, :] < lengths[:, None]


def _sat(values: np.ndarray) -> np.ndarray:
    """Saturate a *freshly allocated* array into the DSL domain, in place.

    (``np.clip`` is avoided on this hot path: it re-derives dtype limits
    per call, costing an order of magnitude more than two ufunc calls.)
    """
    np.maximum(values, INT_MIN, out=values)
    np.minimum(values, INT_MAX, out=values)
    return values


def _sat_copy(values: np.ndarray) -> np.ndarray:
    """Saturate without mutating (for views into shared buffers)."""
    return np.minimum(np.maximum(values, INT_MIN), INT_MAX)


def _compact(values: np.ndarray, keep: np.ndarray) -> ListColumn:
    """Keep the flagged cells of each row, left-packed (FILTER/DELETE core)."""
    width = values.shape[1]
    lengths = keep.sum(axis=1)
    out = np.zeros_like(values)
    if width:
        rows, cols = np.nonzero(keep)
        if rows.size:
            positions = keep.cumsum(axis=1) - 1
            out[rows, positions[rows, cols]] = values[rows, cols]
    return out, lengths


def _empty_like(rows: int) -> ListColumn:
    """An all-empty list column."""
    return np.zeros((rows, 0), dtype=np.int64), np.zeros(rows, dtype=np.int64)


# ---------------------------------------------------------------------------
# Kernels, one per function family
# ---------------------------------------------------------------------------


def _k_head(xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.zeros(len(lengths), dtype=np.int64)
    return _sat(np.where(lengths > 0, values[:, 0], 0))


def _k_last(xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.zeros(len(lengths), dtype=np.int64)
    last = values[_arange(len(lengths)), np.maximum(lengths - 1, 0)]
    return _sat(np.where(lengths > 0, last, 0))


def _k_minimum(xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.zeros(len(lengths), dtype=np.int64)
    masked = np.where(length_mask(lengths, values.shape[1]), values, _I64_MAX)
    return _sat(np.where(lengths > 0, masked.min(axis=1), 0))


def _k_maximum(xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.zeros(len(lengths), dtype=np.int64)
    masked = np.where(length_mask(lengths, values.shape[1]), values, _I64_MIN)
    return _sat(np.where(lengths > 0, masked.max(axis=1), 0))


def _k_sum(xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.zeros(len(lengths), dtype=np.int64)
    # padding cells are zero, so the whole-row sum needs no mask
    return _sat(values.sum(axis=1))


def _count_kernel(pred: Callable[[np.ndarray], np.ndarray], needs_mask: bool):
    def kernel(xs: ListColumn) -> IntColumn:
        values, lengths = xs
        if not values.shape[1]:
            return np.zeros(len(lengths), dtype=np.int64)
        flags = pred(values)
        if needs_mask:
            flags &= length_mask(lengths, values.shape[1])
        # counts are bounded by the row width, far inside the int domain
        return flags.sum(axis=1)

    return kernel


def _k_access(n: IntColumn, xs: ListColumn) -> IntColumn:
    values, lengths = xs
    width = values.shape[1]
    if not width:
        return np.zeros(len(lengths), dtype=np.int64)
    index = np.minimum(np.maximum(n, 0), width - 1)
    picked = values[_arange(len(lengths)), index]
    return _sat(np.where((n >= 0) & (n < lengths), picked, 0))


def _k_search(n: IntColumn, xs: ListColumn) -> IntColumn:
    values, lengths = xs
    if not values.shape[1]:
        return np.full(len(lengths), -1, dtype=np.int64)
    hits = (values == n[:, None]) & length_mask(lengths, values.shape[1])
    found = hits.any(axis=1)
    return np.where(found, hits.argmax(axis=1), -1)


def _k_reverse(xs: ListColumn) -> ListColumn:
    values, lengths = xs
    width = values.shape[1]
    if not width:
        return values, lengths
    index = lengths[:, None] - 1 - _arange(width)[None, :]
    np.maximum(index, 0, out=index)
    out = np.take_along_axis(values, index, axis=1)
    out *= length_mask(lengths, width)
    return out, lengths


def _k_sort(xs: ListColumn) -> ListColumn:
    values, lengths = xs
    width = values.shape[1]
    if not width:
        return values, lengths
    mask = length_mask(lengths, width)
    out = np.sort(np.where(mask, values, _I64_MAX), axis=1)
    out *= mask
    return out, lengths


def _map_kernel(vec: Callable[[np.ndarray], np.ndarray], preserves_zero: bool):
    # When ``vec(0) == 0`` the padding cells (exactly zero by invariant)
    # stay zero through the map, so the re-masking multiply can be skipped.
    if preserves_zero:
        def kernel(xs: ListColumn) -> ListColumn:
            values, lengths = xs
            if not values.shape[1]:
                return values, lengths
            return _sat(vec(values)), lengths

        return kernel

    def kernel(xs: ListColumn) -> ListColumn:
        values, lengths = xs
        width = values.shape[1]
        if not width:
            return values, lengths
        out = _sat(vec(values))
        out *= length_mask(lengths, width)
        return out, lengths

    return kernel


def _filter_kernel(pred: Callable[[np.ndarray], np.ndarray], needs_mask: bool):
    def kernel(xs: ListColumn) -> ListColumn:
        values, lengths = xs
        if not values.shape[1]:
            return values, lengths
        keep = pred(values)
        if needs_mask:
            keep &= length_mask(lengths, values.shape[1])
        return _compact(values, keep)

    return kernel


def _k_delete(n: IntColumn, xs: ListColumn) -> ListColumn:
    values, lengths = xs
    if not values.shape[1]:
        return values, lengths
    keep = (values != n[:, None]) & length_mask(lengths, values.shape[1])
    return _compact(values, keep)


def _k_insert(n: IntColumn, xs: ListColumn) -> ListColumn:
    values, lengths = xs
    rows, width = values.shape
    out = np.zeros((rows, width + 1), dtype=np.int64)
    out[:, :width] = values
    out[_arange(rows), lengths] = _sat_copy(n)
    return out, lengths + 1


def _k_take(n: IntColumn, xs: ListColumn) -> ListColumn:
    values, lengths = xs
    new_lengths = np.minimum(np.maximum(n, 0), lengths)
    if not values.shape[1]:
        return values, new_lengths
    out = values * length_mask(new_lengths, values.shape[1])
    return out, new_lengths


def _k_drop(n: IntColumn, xs: ListColumn) -> ListColumn:
    values, lengths = xs
    shift = np.maximum(n, 0)
    new_lengths = np.maximum(lengths - shift, 0)
    width = values.shape[1]
    if not width:
        return values, new_lengths
    index = _arange(width)[None, :] + shift[:, None]
    np.minimum(index, width - 1, out=index)
    out = np.take_along_axis(values, index, axis=1)
    out *= length_mask(new_lengths, width)
    return out, new_lengths


def _scanl1_saturating_kernel(op: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    """SCANL1 for +, -, *: saturation applies at *every* step, so the scan
    runs column by column (the short axis) with a clamp per column."""

    def kernel(xs: ListColumn) -> ListColumn:
        values, lengths = xs
        width = values.shape[1]
        if not width:
            return values, lengths
        out = np.zeros_like(values)
        out[:, 0] = _sat_copy(values[:, 0])
        limit = int(lengths.max()) if len(lengths) else 0
        for column in range(1, min(width, limit)):
            out[:, column] = _sat(op(values[:, column], out[:, column - 1]))
        out *= length_mask(lengths, width)
        return out, lengths

    return kernel


def _scanl1_monotone_kernel(accumulate: Callable[..., np.ndarray]):
    """SCANL1 for min/max: ``clamp(op(x, clamp(prev)))`` equals
    ``clamp(op-accumulated raw prefix)`` because clamping is monotone and
    commutes with min/max, so a single accumulate + clip is exact."""

    def kernel(xs: ListColumn) -> ListColumn:
        values, lengths = xs
        if not values.shape[1]:
            return values, lengths
        out = _sat(accumulate(values, axis=1))
        out *= length_mask(lengths, values.shape[1])
        return out, lengths

    return kernel


def _zipwith_kernel(op: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    def kernel(xs: ListColumn, ys: ListColumn) -> ListColumn:
        a_values, a_lengths = xs
        b_values, b_lengths = ys
        width = min(a_values.shape[1], b_values.shape[1])
        lengths = np.minimum(a_lengths, b_lengths)
        if not width:
            return _empty_like(len(lengths))
        out = _sat(op(a_values[:, :width], b_values[:, :width]))
        out *= length_mask(lengths, width)
        return out, lengths

    return kernel


def _trunc_div(divisor: int) -> Callable[[np.ndarray], np.ndarray]:
    """Vector form of ``int(x / d)``: truncation toward zero, not floor."""

    def vec(values: np.ndarray) -> np.ndarray:
        quotient = np.abs(values)
        quotient //= divisor
        np.negative(quotient, out=quotient, where=values < 0)
        return quotient

    return vec


# ---------------------------------------------------------------------------
# The per-family kernel tables
# ---------------------------------------------------------------------------

_PRED_VECS: Dict[str, Tuple[Callable[[np.ndarray], np.ndarray], bool]] = {
    # (vectorized predicate, needs explicit mask): zero padding already
    # fails >0, <0 and odd, so only the "even" predicate must be masked
    ">0": (lambda v: v > 0, False),
    "<0": (lambda v: v < 0, False),
    "odd": (lambda v: v % 2 != 0, False),
    "even": (lambda v: v % 2 == 0, True),
}

# (vectorized lambda, preserves zero): the shift lambdas +1/-1 disturb the
# zero padding and need re-masking; the multiplicative ones map 0 to 0
_UNARY_VECS: Dict[str, Tuple[Callable[[np.ndarray], np.ndarray], bool]] = {
    "+1": (lambda v: v + 1, False),
    "-1": (lambda v: v - 1, False),
    "*2": (lambda v: v * 2, True),
    "*3": (lambda v: v * 3, True),
    "*4": (lambda v: v * 4, True),
    "/2": (_trunc_div(2), True),
    "/3": (_trunc_div(3), True),
    "/4": (_trunc_div(4), True),
    "*(-1)": (lambda v: -v, True),
    "^2": (lambda v: v * v, True),
}

_BINARY_VECS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "min": np.minimum,
    "max": np.maximum,
}


def _build_kernels() -> Dict[Tuple[str, str], Callable]:
    kernels: Dict[Tuple[str, str], Callable] = {
        ("ACCESS", ""): _k_access,
        ("HEAD", ""): _k_head,
        ("LAST", ""): _k_last,
        ("MINIMUM", ""): _k_minimum,
        ("MAXIMUM", ""): _k_maximum,
        ("SEARCH", ""): _k_search,
        ("SUM", ""): _k_sum,
        ("DELETE", ""): _k_delete,
        ("INSERT", ""): _k_insert,
        ("REVERSE", ""): _k_reverse,
        ("SORT", ""): _k_sort,
        ("TAKE", ""): _k_take,
        ("DROP", ""): _k_drop,
    }
    for lam, (pred, needs_mask) in _PRED_VECS.items():
        kernels[("COUNT", lam)] = _count_kernel(pred, needs_mask)
        kernels[("FILTER", lam)] = _filter_kernel(pred, needs_mask)
    for lam, (vec, preserves_zero) in _UNARY_VECS.items():
        kernels[("MAP", lam)] = _map_kernel(vec, preserves_zero)
    for lam, op in _BINARY_VECS.items():
        kernels[("ZIPWITH", lam)] = _zipwith_kernel(op)
    kernels[("SCANL1", "+")] = _scanl1_saturating_kernel(lambda x, prev: x + prev)
    kernels[("SCANL1", "-")] = _scanl1_saturating_kernel(lambda x, prev: x - prev)
    kernels[("SCANL1", "*")] = _scanl1_saturating_kernel(lambda x, prev: x * prev)
    kernels[("SCANL1", "min")] = _scanl1_monotone_kernel(np.minimum.accumulate)
    kernels[("SCANL1", "max")] = _scanl1_monotone_kernel(np.maximum.accumulate)
    return kernels


_KERNELS = _build_kernels()

# identity map: fid -> scalar impl of the default catalog, so a custom
# DSLFunction that merely *names* itself like a catalog entry (but swaps
# the implementation) never silently vectorizes with catalog semantics
_DEFAULT_IMPLS: Dict[int, Callable] = {}


def _default_impls() -> Dict[int, Callable]:
    if not _DEFAULT_IMPLS:
        from repro.dsl.functions import REGISTRY

        for fn in REGISTRY:
            _DEFAULT_IMPLS[fn.fid] = fn.impl
    return _DEFAULT_IMPLS


def batch_impl_for(fn: DSLFunction) -> Optional[Callable]:
    """The vectorized kernel for ``fn``, or ``None`` for the scalar fallback.

    A kernel is returned only when ``fn`` is (or shares its implementation
    with) the default catalog's function of the same id — synthetic
    functions from extended registries evaluate row-by-row through their
    own scalar ``impl`` instead.
    """
    if _default_impls().get(fn.fid) is not fn.impl:
        return None
    return _KERNELS.get((fn.base, fn.lam))
