"""Random generation of DSL programs and program inputs.

The training corpus (Phase 1) and the test suites (Section 5) are built
from randomly generated programs.  Generation supports:

* rejecting programs with dead code, so the effective program length
  equals the nominal length (Section 4.2);
* constraining the output type, so suites can be split into *singleton
  programs* (final output is one integer) and *list programs*;
* rejecting degenerate programs whose outputs are constant across inputs
  (these carry no signal for synthesis or for training a fitness model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.dce import has_dead_code
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.dsl.types import DSLType, INT, LIST, INT_MAX, INT_MIN, Value, values_equal


@dataclass
class InputGenerator:
    """Generates random program inputs (lists of integers).

    Parameters
    ----------
    min_length, max_length:
        Bounds (inclusive) on the generated list length.
    min_value, max_value:
        Bounds (inclusive) on the generated element values.
    rng:
        Numpy random generator; pass a seeded generator for reproducibility.
    """

    min_length: int = 5
    max_length: int = 10
    min_value: int = -64
    max_value: int = 64
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def __post_init__(self) -> None:
        if self.min_length < 0 or self.max_length < self.min_length:
            raise ValueError("invalid input length bounds")
        if self.min_value > self.max_value:
            raise ValueError("invalid input value bounds")
        if self.min_value < INT_MIN or self.max_value > INT_MAX:
            raise ValueError("input values must lie inside the DSL integer domain")

    def generate_list(self) -> List[int]:
        """One random input list."""
        length = int(self.rng.integers(self.min_length, self.max_length + 1))
        return [int(v) for v in self.rng.integers(self.min_value, self.max_value + 1, size=length)]

    def generate_inputs(self, count: int) -> List[List[Value]]:
        """``count`` independent program-input tuples (each a single list)."""
        return [[self.generate_list()] for _ in range(count)]


@dataclass
class ProgramGenerator:
    """Generates random DSL programs.

    Parameters
    ----------
    registry:
        Function registry to draw operations from.
    rng:
        Numpy random generator.
    forbid_dead_code:
        When True (default), programs containing dead code are rejected
        and regenerated so the effective length equals the nominal length.
    max_attempts:
        Safety bound on rejection sampling per generated program.
    """

    registry: FunctionRegistry = REGISTRY
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    forbid_dead_code: bool = True
    max_attempts: int = 2000
    input_types: Tuple[DSLType, ...] = (LIST,)

    # ------------------------------------------------------------------
    def random_program(
        self,
        length: int,
        output_type: Optional[DSLType] = None,
    ) -> Program:
        """Generate one random program of exactly ``length`` statements.

        Parameters
        ----------
        length:
            Number of statements.
        output_type:
            When given, the program's final output type is constrained to
            this type (``INT`` for singleton programs, ``LIST`` otherwise).
        """
        if length <= 0:
            raise ValueError("program length must be positive")
        all_ids = np.array(self.registry.ids)
        last_ids = (
            np.array(self.registry.ids_with_return(output_type))
            if output_type is not None
            else all_ids
        )
        for _ in range(self.max_attempts):
            ids = [int(fid) for fid in self.rng.choice(all_ids, size=length)]
            ids[-1] = int(self.rng.choice(last_ids))
            program = Program(ids, self.registry)
            if self.forbid_dead_code and has_dead_code(program, self.input_types):
                continue
            return program
        raise RuntimeError(
            f"failed to generate a program of length {length} without dead code "
            f"after {self.max_attempts} attempts"
        )

    # ------------------------------------------------------------------
    def random_programs(
        self,
        count: int,
        length: int,
        output_type: Optional[DSLType] = None,
        unique: bool = True,
    ) -> List[Program]:
        """Generate ``count`` random programs, optionally pairwise distinct."""
        programs: List[Program] = []
        seen: set = set()
        attempts = 0
        limit = max(self.max_attempts, count * 50)
        while len(programs) < count:
            attempts += 1
            if attempts > limit:
                raise RuntimeError(
                    f"could not generate {count} unique programs of length {length}"
                )
            program = self.random_program(length, output_type=output_type)
            if unique:
                if program.function_ids in seen:
                    continue
                seen.add(program.function_ids)
            programs.append(program)
        return programs

    # ------------------------------------------------------------------
    def interesting_program(
        self,
        length: int,
        input_generator: InputGenerator,
        n_probe_inputs: int = 5,
        output_type: Optional[DSLType] = None,
    ) -> Tuple[Program, List[List[Value]], List[Value]]:
        """Generate a program whose outputs are not constant across inputs.

        Returns the program, the probe inputs used and the corresponding
        outputs.  Programs that collapse every input to the same output
        (for instance, a ``FILTER(>0)`` chain that always yields ``[]``)
        are rejected because they admit trivially many spurious solutions.
        """
        interpreter = Interpreter()
        for _ in range(self.max_attempts):
            program = self.random_program(length, output_type=output_type)
            inputs = input_generator.generate_inputs(n_probe_inputs)
            outputs = [interpreter.output_of(program, inp) for inp in inputs]
            if all(values_equal(outputs[0], out) for out in outputs[1:]):
                continue
            return program, inputs, outputs
        raise RuntimeError("failed to generate an interesting program")
