"""Interpreter for the NetSyn list DSL with execution-trace collection.

Argument resolution (Appendix A): there are no named variables.  Each
argument of a function call binds to the most recently produced value of
the required type, searching backwards through previous step outputs and
then the program inputs.  If two arguments of a call need the same type,
the second binds to the next most recent *distinct* value.  When no value
of the required type exists, a default is used (0 for ``int``, the empty
list for ``[int]``).

The interpreter is total: any sequence of DSL functions executes without
raising, which mirrors the paper's "valid by construction" property.

Execution normally delegates to :mod:`repro.dsl.compiler`, which resolves
the argument bindings once per (program, input signature) instead of
re-scanning the value history on every step; construct
``Interpreter(compiled=False)`` to force the reference implementation
(:meth:`Interpreter.run_reference`), which remains the specification the
compiler is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.dsl.functions import DSLFunction
from repro.dsl.program import Program
from repro.dsl.types import DSLType, Value, default_for, type_of


def _compiler_module():
    """Deferred import: the compiler imports trace types from this module."""
    from repro.dsl import compiler

    return compiler


@dataclass(frozen=True)
class StepRecord:
    """One executed statement: the function, its resolved arguments and output."""

    index: int
    fid: int
    name: str
    args: Tuple[Value, ...]
    output: Value


@dataclass
class ExecutionTrace:
    """Full record of a single program execution.

    Attributes
    ----------
    inputs:
        The program inputs, in the order supplied.
    steps:
        One :class:`StepRecord` per statement, in execution order.
    output:
        The program's final output (output of the last statement), or the
        default value when the program is empty.
    """

    inputs: Tuple[Value, ...]
    steps: List[StepRecord] = field(default_factory=list)
    output: Value = 0

    @property
    def intermediate_outputs(self) -> List[Value]:
        """The per-statement outputs ``t_1 .. t_n`` used by the NN-FF."""
        return [s.output for s in self.steps]

    @property
    def function_ids(self) -> List[int]:
        """Function ids in execution order."""
        return [s.fid for s in self.steps]

    def __len__(self) -> int:
        return len(self.steps)


class Interpreter:
    """Executes DSL programs and records execution traces.

    Parameters
    ----------
    trace:
        When False, :meth:`run` skips building per-step records entirely
        and only reports the final output.
    compiled:
        When True (the default), execution goes through the statically
        bound :class:`~repro.dsl.compiler.CompiledProgram` path; when
        False, the reference backwards-type-scan implementation is used.
    """

    def __init__(self, trace: bool = True, compiled: bool = True) -> None:
        self._trace = trace
        self._compiled = compiled

    @property
    def compiled(self) -> bool:
        """Whether this interpreter uses the compiled execution path."""
        return self._compiled

    # ------------------------------------------------------------------
    def run(self, program: Program, inputs: Sequence[Value]) -> ExecutionTrace:
        """Execute ``program`` on ``inputs`` and return the full trace.

        Parameters
        ----------
        program:
            The program to run.
        inputs:
            Program inputs; each element is an ``int`` or a list of ints.
        """
        if self._compiled:
            compiler = _compiler_module()
            compiled = compiler.compile_program(program, compiler.input_signature(inputs))
            return compiled.run(inputs, trace=self._trace)
        return self.run_reference(program, inputs)

    def run_reference(self, program: Program, inputs: Sequence[Value]) -> ExecutionTrace:
        """Reference implementation: resolve arguments by backwards scan.

        This is the executable specification of the DSL semantics; the
        compiled path must match it output-for-output and (when tracing)
        step-for-step.
        """
        normalized: List[Value] = [self._normalize(v) for v in inputs]
        trace = ExecutionTrace(inputs=tuple(normalized))
        # history of values available for argument resolution, oldest first:
        # program inputs, then step outputs as they are produced.
        history: List[Value] = list(normalized)
        n_inputs = len(history)

        last_output: Optional[Value] = None
        for index, fid in enumerate(program.function_ids):
            fn = program.registry.by_id(fid)
            args = self._resolve_arguments(fn, history)
            output = self._normalize(fn(*args))
            history.append(output)
            last_output = output
            if self._trace:
                trace.steps.append(
                    StepRecord(index=index, fid=fid, name=fn.name, args=tuple(args), output=output)
                )

        if last_output is None:
            # Empty program: output is the default integer (matches the DSL's
            # "missing value" convention).
            trace.output = default_for(DSLType.INT)
        else:
            trace.output = last_output
        # keep the number of inputs around for introspection/debugging
        trace.inputs = tuple(history[:n_inputs])
        return trace

    def output_of(self, program: Program, inputs: Sequence[Value]) -> Value:
        """Execute ``program`` and return only its final output."""
        if self._compiled:
            compiler = _compiler_module()
            compiled = compiler.compile_program(program, compiler.input_signature(inputs))
            return compiled.output(inputs)
        return self.run_reference(program, inputs).output

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize(value: Value) -> Value:
        """Convert tuples to lists and validate the value is a DSL value."""
        kind = type_of(value)
        if kind is DSLType.LIST:
            return [int(v) for v in value]
        return int(value)

    @staticmethod
    def _resolve_arguments(fn: DSLFunction, history: Sequence[Value]) -> Tuple[Value, ...]:
        """Bind each argument of ``fn`` per the backwards-search rule."""
        used_positions: set[int] = set()
        args: List[Value] = []
        for arg_type in fn.arg_types:
            position = Interpreter._find_latest(history, arg_type, used_positions)
            if position is None:
                args.append(default_for(arg_type))
            else:
                used_positions.add(position)
                args.append(history[position])
        return tuple(args)

    @staticmethod
    def _find_latest(
        history: Sequence[Value], arg_type: DSLType, excluded: set[int]
    ) -> Optional[int]:
        """Index of the most recent value of ``arg_type`` not already bound."""
        for position in range(len(history) - 1, -1, -1):
            if position in excluded:
                continue
            if type_of(history[position]) is arg_type:
                return position
        return None
