"""Dead code elimination (DCE) for DSL programs.

A statement is *dead* when its output is never consumed — neither by a
later statement's argument binding nor as the final program output.
Because argument resolution in the DSL depends only on the *types* of
previously produced values (and every function's return type is static),
liveness can be computed purely statically, without executing the program.

The genetic algorithm uses :func:`has_dead_code` to reject candidate genes
whose effective length would be shorter than the target program length
(Section 4.2 of the paper), and :func:`eliminate_dead_code` when a cleaned
program is needed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.program import Program
from repro.dsl.types import DSLType


def _binding_graph(
    program: Program, input_types: Sequence[DSLType]
) -> List[Tuple[Optional[int], ...]]:
    """For each statement, the history positions its arguments bind to.

    History positions ``0 .. len(input_types)-1`` are the program inputs;
    position ``len(input_types) + k`` is the output of statement ``k``.
    ``None`` means the argument fell back to a default value.
    """
    registry: FunctionRegistry = program.registry
    history_types: List[DSLType] = list(input_types)
    bindings: List[Tuple[Optional[int], ...]] = []
    for fid in program.function_ids:
        fn = registry.by_id(fid)
        used: Set[int] = set()
        stmt_bindings: List[Optional[int]] = []
        for arg_type in fn.arg_types:
            found: Optional[int] = None
            for position in range(len(history_types) - 1, -1, -1):
                if position in used:
                    continue
                if history_types[position] is arg_type:
                    found = position
                    break
            if found is not None:
                used.add(found)
            stmt_bindings.append(found)
        bindings.append(tuple(stmt_bindings))
        history_types.append(fn.return_type)
    return bindings


def live_statements(
    program: Program, input_types: Sequence[DSLType] = (DSLType.LIST,)
) -> List[bool]:
    """Liveness flag for every statement of ``program``.

    The last statement is always live (it produces the program output);
    liveness propagates backwards through argument bindings.
    """
    n = len(program)
    if n == 0:
        return []
    bindings = _binding_graph(program, input_types)
    n_inputs = len(input_types)
    live = [False] * n
    live[n - 1] = True
    # statements are in topological order, so one backwards sweep suffices
    for index in range(n - 1, -1, -1):
        if not live[index]:
            continue
        for position in bindings[index]:
            if position is not None and position >= n_inputs:
                live[position - n_inputs] = True
    return live


def has_dead_code(
    program: Program, input_types: Sequence[DSLType] = (DSLType.LIST,)
) -> bool:
    """True when at least one statement's output is never used."""
    return not all(live_statements(program, input_types))


def effective_length(
    program: Program, input_types: Sequence[DSLType] = (DSLType.LIST,)
) -> int:
    """Number of live statements in ``program``."""
    return sum(live_statements(program, input_types))


def eliminate_dead_code(
    program: Program, input_types: Sequence[DSLType] = (DSLType.LIST,)
) -> Program:
    """Return ``program`` with all dead statements removed.

    Removal is iterated to a fixpoint: deleting a dead statement can only
    expose further statements that were kept alive solely by dead code.
    """
    current = program
    while True:
        flags = live_statements(current, input_types)
        if all(flags):
            return current
        kept = [fid for fid, alive in zip(current.function_ids, flags) if alive]
        current = Program(kept, current.registry)
        if len(current) == 0:
            return current
