"""Type system for the NetSyn list DSL.

The DSL has exactly two data types: ``int`` and ``list of int``.  Runtime
integer values are saturated to the closed interval ``[INT_MIN, INT_MAX]``
(the DeepCoder convention) so that execution traces can be embedded with a
finite vocabulary by the neural fitness models.
"""

from __future__ import annotations

import enum
from typing import List, Union

# Saturation bounds for every integer produced at runtime.  The paper's DSL
# follows DeepCoder, whose integer domain is [-256, 255]; we use a symmetric
# [-255, 255] so negation never leaves the domain.
INT_MIN: int = -255
INT_MAX: int = 255

#: Default values used when an argument of the required type cannot be
#: resolved from prior outputs or from the program inputs (Appendix A).
DEFAULT_INT: int = 0
DEFAULT_LIST: tuple = ()

Value = Union[int, List[int], tuple]


class DSLType(enum.Enum):
    """The two data types of the DSL."""

    INT = "int"
    LIST = "[int]"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"DSLType.{self.name}"


INT = DSLType.INT
LIST = DSLType.LIST


def clamp_int(value: int) -> int:
    """Saturate ``value`` into the DSL integer domain."""
    if value > INT_MAX:
        return INT_MAX
    if value < INT_MIN:
        return INT_MIN
    return int(value)


def clamp_list(values) -> List[int]:
    """Saturate every element of ``values`` into the DSL integer domain."""
    return [clamp_int(v) for v in values]


def type_of(value: Value) -> DSLType:
    """Return the DSL type of a runtime value.

    Raises
    ------
    TypeError
        If ``value`` is neither an int nor a list/tuple of ints.
    """
    if isinstance(value, bool):
        raise TypeError("booleans are not DSL values")
    if isinstance(value, int):
        return INT
    if isinstance(value, (list, tuple)):
        return LIST
    raise TypeError(f"not a DSL value: {value!r}")


def default_for(dsl_type: DSLType) -> Value:
    """Return the default value for a DSL type (0 or the empty list)."""
    if dsl_type is INT:
        return DEFAULT_INT
    return []


def values_equal(a: Value, b: Value) -> bool:
    """Structural equality between two DSL values.

    Lists and tuples compare equal element-wise; an int never equals a list.
    """
    ta, tb = type_of(a), type_of(b)
    if ta is not tb:
        return False
    if ta is INT:
        return int(a) == int(b)
    return list(a) == list(b)
