"""Program equivalence under a set of input-output examples (Definition 3.1).

Two programs are equivalent under an IO set ``S`` when they produce the
same output on every input of ``S``.  NetSyn's success criterion is that
the synthesized program is equivalent to the (unknown) target program
under the provided examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.dsl.types import Value, values_equal


@dataclass(frozen=True)
class IOExample:
    """A single input-output example ``(I_j, O_j)``.

    ``inputs`` is the tuple of program inputs (usually one list of ints);
    ``output`` is the expected program output.
    """

    inputs: Tuple[Value, ...]
    output: Value

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "inputs",
            tuple(list(v) if isinstance(v, (list, tuple)) else int(v) for v in self.inputs),
        )
        out = self.output
        object.__setattr__(
            self, "output", list(out) if isinstance(out, (list, tuple)) else int(out)
        )

    def __hash__(self) -> int:
        def freeze(v):
            return tuple(v) if isinstance(v, list) else v

        return hash((tuple(freeze(v) for v in self.inputs), freeze(self.output)))


#: An IO specification: the list of examples the synthesized program must satisfy.
IOSet = List[IOExample]


def make_io_set(
    program: Program, inputs: Sequence[Sequence[Value]], interpreter: Interpreter | None = None
) -> IOSet:
    """Build the IO set ``S_t`` by running ``program`` on each input tuple."""
    interpreter = interpreter or Interpreter()
    examples: IOSet = []
    for inp in inputs:
        output = interpreter.output_of(program, inp)
        examples.append(IOExample(inputs=tuple(inp), output=output))
    return examples


def outputs_match(program: Program, example: IOExample, interpreter: Interpreter | None = None) -> bool:
    """True when ``program`` reproduces the single ``example``."""
    interpreter = interpreter or Interpreter()
    return values_equal(interpreter.output_of(program, example.inputs), example.output)


def satisfies_io_set(
    program: Program, io_set: IOSet, interpreter: Interpreter | None = None
) -> bool:
    """True when ``program`` reproduces every example in ``io_set``."""
    interpreter = interpreter or Interpreter()
    return all(outputs_match(program, example, interpreter) for example in io_set)


def programs_equivalent(
    a: Program, b: Program, io_inputs: Sequence[Sequence[Value]], interpreter: Interpreter | None = None
) -> bool:
    """Definition 3.1: ``a ≡_S b`` where ``S`` is induced by ``io_inputs``."""
    interpreter = interpreter or Interpreter()
    for inp in io_inputs:
        if not values_equal(interpreter.output_of(a, inp), interpreter.output_of(b, inp)):
            return False
    return True
