"""The 41 DSL functions (Appendix A of the paper) and their registry.

Function identifiers follow the numbering given in the appendix:

====== ==================== =============================
ids    function             signature
====== ==================== =============================
1      ACCESS               ``int, [] -> int``
2-5    COUNT   (>0,<0,odd,even)  ``[] -> int``
6      HEAD                 ``[] -> int``
7      LAST                 ``[] -> int``
8      MINIMUM              ``[] -> int``
9      MAXIMUM              ``[] -> int``
10     SEARCH               ``int, [] -> int``
11     SUM                  ``[] -> int``
12     DELETE               ``int, [] -> []``
13     DROP                 ``int, [] -> []``
14-17  FILTER  (>0,<0,odd,even)  ``[] -> []``
18     INSERT               ``int, [] -> []``
19-28  MAP     (+1,-1,*2,*3,*4,/2,/3,/4,*(-1),^2)  ``[] -> []``
29     REVERSE              ``[] -> []``
30-34  SCANL1  (+,-,*,min,max)   ``[] -> []``
35     SORT                 ``[] -> []``
36     TAKE                 ``int, [] -> []``
37-41  ZIPWITH (+,-,*,min,max)   ``[], [] -> []``
====== ==================== =============================

All implementations saturate integer results into the DSL integer domain
(:data:`repro.dsl.types.INT_MIN` .. :data:`repro.dsl.types.INT_MAX`) and are
total: they never raise on any well-typed input, which is what makes every
program in the DSL valid by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.dsl.types import DSLType, INT, LIST, Value, clamp_int, clamp_list


Signature = Tuple[Tuple[DSLType, ...], DSLType]

#: The five signatures that occur among the 41 DSL functions.
SIGNATURES: Tuple[Signature, ...] = (
    ((LIST,), INT),
    ((LIST,), LIST),
    ((INT, LIST), LIST),
    ((LIST, LIST), LIST),
    ((INT, LIST), INT),
)


@dataclass(frozen=True)
class DSLFunction:
    """A single DSL function.

    Attributes
    ----------
    fid:
        The 1-based function identifier used throughout the paper's
        appendix (1..41).
    name:
        Human readable name, e.g. ``"MAP(*2)"``.
    arg_types:
        Tuple of argument types, in argument order.
    return_type:
        The produced type.
    impl:
        The total Python implementation.  Receives the arguments in the
        same order as ``arg_types`` and returns a saturated value.
    base:
        The family name without the lambda, e.g. ``"MAP"``.
    lam:
        The lambda label (e.g. ``"*2"``) or ``""`` when the function takes
        no lambda.
    """

    fid: int
    name: str
    arg_types: Tuple[DSLType, ...]
    return_type: DSLType
    impl: Callable[..., Value] = field(repr=False, compare=False)
    base: str = ""
    lam: str = ""

    @property
    def arity(self) -> int:
        """Number of arguments the function consumes."""
        return len(self.arg_types)

    @property
    def signature(self) -> Signature:
        """The (argument types, return type) pair."""
        return (self.arg_types, self.return_type)

    @property
    def produces_int(self) -> bool:
        """True when the function returns a singleton integer."""
        return self.return_type is INT

    def __call__(self, *args: Value) -> Value:
        return self.impl(*args)

    def __reduce__(self):
        """Pickle as a reference into the default registry.

        The implementations are closures over lambdas and cannot be
        pickled directly; since every function instance originates from
        the master catalog, serializing the ``fid`` is lossless.  This is
        what lets programs, tasks and trained synthesizers cross process
        boundaries in the parallel evaluation runner.
        """
        return (_function_from_default_registry, (self.fid,))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ---------------------------------------------------------------------------
# Lambda helpers
# ---------------------------------------------------------------------------

_PREDICATES: Dict[str, Callable[[int], bool]] = {
    ">0": lambda x: x > 0,
    "<0": lambda x: x < 0,
    "odd": lambda x: x % 2 != 0,
    "even": lambda x: x % 2 == 0,
}

_UNARY: Dict[str, Callable[[int], int]] = {
    "+1": lambda x: x + 1,
    "-1": lambda x: x - 1,
    "*2": lambda x: x * 2,
    "*3": lambda x: x * 3,
    "*4": lambda x: x * 4,
    "/2": lambda x: int(x / 2),
    "/3": lambda x: int(x / 3),
    "/4": lambda x: int(x / 4),
    "*(-1)": lambda x: -x,
    "^2": lambda x: x * x,
}

_BINARY: Dict[str, Callable[[int, int], int]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "min": min,
    "max": max,
}


# ---------------------------------------------------------------------------
# Implementations of the function families
# ---------------------------------------------------------------------------

def _head(xs: Sequence[int]) -> int:
    return clamp_int(xs[0]) if xs else 0


def _last(xs: Sequence[int]) -> int:
    return clamp_int(xs[-1]) if xs else 0


def _minimum(xs: Sequence[int]) -> int:
    return clamp_int(min(xs)) if xs else 0


def _maximum(xs: Sequence[int]) -> int:
    return clamp_int(max(xs)) if xs else 0


def _sum(xs: Sequence[int]) -> int:
    return clamp_int(sum(xs)) if xs else 0


def _count(pred: Callable[[int], bool]) -> Callable[[Sequence[int]], int]:
    def impl(xs: Sequence[int]) -> int:
        return clamp_int(sum(1 for x in xs if pred(x)))

    return impl


def _reverse(xs: Sequence[int]) -> List[int]:
    return list(reversed(xs))


def _sort(xs: Sequence[int]) -> List[int]:
    return sorted(xs)


def _map(fn: Callable[[int], int]) -> Callable[[Sequence[int]], List[int]]:
    def impl(xs: Sequence[int]) -> List[int]:
        return clamp_list(fn(x) for x in xs)

    return impl


def _filter(pred: Callable[[int], bool]) -> Callable[[Sequence[int]], List[int]]:
    def impl(xs: Sequence[int]) -> List[int]:
        return [x for x in xs if pred(x)]

    return impl


def _scanl1(fn: Callable[[int, int], int]) -> Callable[[Sequence[int]], List[int]]:
    def impl(xs: Sequence[int]) -> List[int]:
        out: List[int] = []
        for i, x in enumerate(xs):
            if i == 0:
                out.append(clamp_int(x))
            else:
                out.append(clamp_int(fn(x, out[-1])))
        return out

    return impl


def _take(n: int, xs: Sequence[int]) -> List[int]:
    if n <= 0:
        return []
    return list(xs[: min(n, len(xs))])


def _drop(n: int, xs: Sequence[int]) -> List[int]:
    if n <= 0:
        return list(xs)
    return list(xs[n:])


def _delete(x: int, xs: Sequence[int]) -> List[int]:
    return [v for v in xs if v != x]


def _insert(x: int, xs: Sequence[int]) -> List[int]:
    return list(xs) + [clamp_int(x)]


def _zipwith(fn: Callable[[int, int], int]) -> Callable[[Sequence[int], Sequence[int]], List[int]]:
    def impl(xs: Sequence[int], ys: Sequence[int]) -> List[int]:
        return clamp_list(fn(a, b) for a, b in zip(xs, ys))

    return impl


def _access(n: int, xs: Sequence[int]) -> int:
    if n < 0 or n >= len(xs):
        return 0
    return clamp_int(xs[n])


def _search(x: int, xs: Sequence[int]) -> int:
    for i, v in enumerate(xs):
        if v == x:
            return clamp_int(i)
    return -1


# ---------------------------------------------------------------------------
# Registry construction
# ---------------------------------------------------------------------------


def _build_functions() -> Tuple[DSLFunction, ...]:
    funcs: List[DSLFunction] = []

    def add(fid, name, args, ret, impl, base, lam=""):
        funcs.append(
            DSLFunction(
                fid=fid,
                name=name,
                arg_types=tuple(args),
                return_type=ret,
                impl=impl,
                base=base,
                lam=lam,
            )
        )

    add(1, "ACCESS", (INT, LIST), INT, _access, "ACCESS")
    for i, lam in enumerate((">0", "<0", "odd", "even")):
        add(2 + i, f"COUNT({lam})", (LIST,), INT, _count(_PREDICATES[lam]), "COUNT", lam)
    add(6, "HEAD", (LIST,), INT, _head, "HEAD")
    add(7, "LAST", (LIST,), INT, _last, "LAST")
    add(8, "MINIMUM", (LIST,), INT, _minimum, "MINIMUM")
    add(9, "MAXIMUM", (LIST,), INT, _maximum, "MAXIMUM")
    add(10, "SEARCH", (INT, LIST), INT, _search, "SEARCH")
    add(11, "SUM", (LIST,), INT, _sum, "SUM")
    add(12, "DELETE", (INT, LIST), LIST, _delete, "DELETE")
    add(13, "DROP", (INT, LIST), LIST, _drop, "DROP")
    for i, lam in enumerate((">0", "<0", "odd", "even")):
        add(14 + i, f"FILTER({lam})", (LIST,), LIST, _filter(_PREDICATES[lam]), "FILTER", lam)
    add(18, "INSERT", (INT, LIST), LIST, _insert, "INSERT")
    map_lams = ("+1", "-1", "*2", "*3", "*4", "/2", "/3", "/4", "*(-1)", "^2")
    for i, lam in enumerate(map_lams):
        add(19 + i, f"MAP({lam})", (LIST,), LIST, _map(_UNARY[lam]), "MAP", lam)
    add(29, "REVERSE", (LIST,), LIST, _reverse, "REVERSE")
    for i, lam in enumerate(("+", "-", "*", "min", "max")):
        add(30 + i, f"SCANL1({lam})", (LIST,), LIST, _scanl1(_BINARY[lam]), "SCANL1", lam)
    add(35, "SORT", (LIST,), LIST, _sort, "SORT")
    add(36, "TAKE", (INT, LIST), LIST, _take, "TAKE")
    for i, lam in enumerate(("+", "-", "*", "min", "max")):
        add(37 + i, f"ZIPWITH({lam})", (LIST, LIST), LIST, _zipwith(_BINARY[lam]), "ZIPWITH", lam)

    funcs.sort(key=lambda f: f.fid)
    return tuple(funcs)


class FunctionRegistry:
    """Indexable collection of the 41 DSL functions (``ΣDSL``)."""

    def __init__(self, functions: Sequence[DSLFunction] | None = None) -> None:
        self._functions: Tuple[DSLFunction, ...] = tuple(functions) if functions else _build_functions()
        self._by_fid: Dict[int, DSLFunction] = {f.fid: f for f in self._functions}
        self._by_name: Dict[str, DSLFunction] = {f.name: f for f in self._functions}
        if len(self._by_fid) != len(self._functions):
            raise ValueError("duplicate function ids in registry")

    # -- basic container protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self):
        return iter(self._functions)

    def __contains__(self, item) -> bool:
        if isinstance(item, DSLFunction):
            return item.fid in self._by_fid
        if isinstance(item, int):
            return item in self._by_fid
        if isinstance(item, str):
            return item in self._by_name
        return False

    # -- lookups -----------------------------------------------------------------
    def by_id(self, fid: int) -> DSLFunction:
        """Look a function up by its 1-based identifier."""
        try:
            return self._by_fid[fid]
        except KeyError as exc:
            raise KeyError(f"no DSL function with id {fid}") from exc

    def by_name(self, name: str) -> DSLFunction:
        """Look a function up by its display name (e.g. ``"MAP(*2)"``)."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise KeyError(f"no DSL function named {name!r}") from exc

    @property
    def functions(self) -> Tuple[DSLFunction, ...]:
        """All functions ordered by id."""
        return self._functions

    @property
    def ids(self) -> Tuple[int, ...]:
        """All function ids in ascending order."""
        return tuple(f.fid for f in self._functions)

    def ids_with_return(self, dsl_type: DSLType) -> Tuple[int, ...]:
        """Ids of all functions returning ``dsl_type``."""
        return tuple(f.fid for f in self._functions if f.return_type is dsl_type)

    def ids_with_signature(self, signature: Signature) -> Tuple[int, ...]:
        """Ids of all functions with the exact ``signature``."""
        return tuple(f.fid for f in self._functions if f.signature == signature)

    def singleton_producing_ids(self) -> Tuple[int, ...]:
        """Ids of functions whose output is a single integer (1..12 minus list ones).

        In the appendix numbering these are ids 1-11 (ACCESS, COUNT×4, HEAD,
        LAST, MINIMUM, MAXIMUM, SEARCH, SUM); the paper's Figure 6 groups
        them as "functions 1 to 12".
        """
        return self.ids_with_return(INT)

    def index_of(self, fid: int) -> int:
        """0-based dense index of a function id (used for one-hot encodings)."""
        return fid - 1

    def __reduce__(self):
        """Pickle as the id subset, rebuilt against the default catalog.

        The default :data:`REGISTRY` unpickles to the shared singleton,
        so identity checks (``registry is REGISTRY``) keep working after
        a round-trip within one process.
        """
        return (_registry_from_ids, (self.ids,))


def _function_from_default_registry(fid: int) -> DSLFunction:
    """Unpickle helper: resolve a function id against the default registry."""
    return REGISTRY.by_id(fid)


def _registry_from_ids(ids: Tuple[int, ...]) -> "FunctionRegistry":
    """Unpickle helper: rebuild a registry from a function-id subset."""
    if ids == REGISTRY.ids:
        return REGISTRY
    return FunctionRegistry([REGISTRY.by_id(fid) for fid in ids])


#: The default, shared registry of the paper's 41 functions.
REGISTRY = FunctionRegistry()
