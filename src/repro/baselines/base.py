"""The common synthesizer interface and the shared training context."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import NetSynConfig
from repro.core.phase1 import Phase1Artifacts
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.dsl.interpreter import Interpreter
from repro.dsl.equivalence import satisfies_io_set
from repro.ga.budget import SearchBudget
from repro.utils.timing import Stopwatch


@dataclass
class SynthesizerContext:
    """Everything a synthesizer may need that is shared across methods.

    The evaluation harness trains each model once and hands the same
    context to every method so comparisons are not confounded by training
    randomness.
    """

    config: NetSynConfig = field(default_factory=NetSynConfig)
    #: Phase-1 artifacts keyed by model name ("cf", "lcs", "fp", "step", "decoder")
    artifacts: Dict[str, object] = field(default_factory=dict)

    def get(self, name: str):
        """Fetch a trained artifact or raise a helpful error."""
        if name not in self.artifacts:
            raise KeyError(
                f"context has no trained artifact {name!r}; available: {sorted(self.artifacts)}"
            )
        return self.artifacts[name]

    def has(self, name: str) -> bool:
        return name in self.artifacts


class Synthesizer(abc.ABC):
    """A program synthesizer evaluated under the candidate-budget metric."""

    #: registry name of the method (e.g. ``"deepcoder"``)
    name: str = "synthesizer"

    @abc.abstractmethod
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        """Attempt to synthesize ``task`` within ``budget`` candidates."""

    # ------------------------------------------------------------------
    def _check(self, program, task: SynthesisTask, budget: SearchBudget, interpreter: Interpreter) -> bool:
        """Charge one candidate and test it against the task's IO examples."""
        if budget.exhausted:
            return False
        budget.charge(1)
        return satisfies_io_set(program, task.io_set, interpreter)

    def _result(
        self,
        task: SynthesisTask,
        budget: SearchBudget,
        stopwatch: Stopwatch,
        program=None,
        found_by: str = "search",
        generations: int = 0,
    ) -> SynthesisResult:
        """Assemble a :class:`SynthesisResult` with the shared bookkeeping."""
        return SynthesisResult(
            found=program is not None,
            program=program,
            candidates_used=budget.used,
            budget_limit=budget.limit,
            generations=generations,
            wall_time_seconds=stopwatch.elapsed,
            found_by=found_by if program is not None else "none",
            method=self.name,
            task_id=task.task_id,
        )
