"""The common synthesizer interface and the shared training context.

:class:`Synthesizer` is the pre-service ABC every baseline implements
(``synthesize(task, budget, seed)``).  It now subclasses the unified
:class:`~repro.core.backend.SynthesisBackend` protocol and provides a
default :meth:`Synthesizer.solve` that wraps ``synthesize`` with the
progress-event stream (``started`` / periodic ``candidates`` / ``finished``),
so every baseline participates in the session/service layer without
per-method glue.  Candidate-level events ride on the shared
:class:`~repro.ga.budget.SearchBudget` ``on_charge`` hook — the one
choke point all methods already charge through.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import NetSynConfig
from repro.core.artifacts import ArtifactStore
from repro.core.backend import SynthesisBackend
from repro.core.phase1 import Phase1Artifacts
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.dsl.interpreter import Interpreter
from repro.dsl.equivalence import satisfies_io_set
from repro.events import ProgressListener
from repro.ga.budget import SearchBudget
from repro.utils.timing import Stopwatch


class _ArtifactView(dict):
    """The old ``context.artifacts`` dict shape, write-through to the store.

    Reads see a snapshot taken at property access; writes and deletes are
    forwarded to the typed store so the pre-store contract
    (``context.artifacts["fp"] = trained``) keeps working.
    """

    def __init__(self, store: ArtifactStore) -> None:
        self._store = store
        super().__init__(store.as_dict())

    def __setitem__(self, name: str, value: Phase1Artifacts) -> None:
        self._store.set(name, value)
        super().__setitem__(name, value)

    def __delitem__(self, name: str) -> None:
        self._store.delete(name)
        super().__delitem__(name)


@dataclass
class SynthesizerContext:
    """Deprecated shim over :class:`~repro.core.artifacts.ArtifactStore`.

    The evaluation harness trains each model once and hands the same
    context to every method so comparisons are not confounded by training
    randomness.  New code should use the typed ``store`` directly; the
    stringly-typed ``artifacts`` mapping is kept only for the old surface.
    """

    config: NetSynConfig = field(default_factory=NetSynConfig)
    store: ArtifactStore = field(default_factory=ArtifactStore)

    @property
    def artifacts(self) -> Dict[str, Phase1Artifacts]:
        """The store under the old name-keyed dict shape (writes go to
        the store; each access reads the store's current contents)."""
        return _ArtifactView(self.store)

    def get(self, name: str) -> Phase1Artifacts:
        """Fetch a trained artifact or raise a helpful error.

        Routed through the typed store, so a missing artifact raises
        :class:`~repro.core.artifacts.MissingArtifactError` (a
        ``KeyError`` whose message renders cleanly) and an invalid name
        raises ``ValueError`` listing the valid names.
        """
        return self.store.get(name)

    def has(self, name: str) -> bool:
        return self.store.has(name)


class Synthesizer(SynthesisBackend):
    """A program synthesizer evaluated under the candidate-budget metric."""

    #: registry name of the method (e.g. ``"deepcoder"``)
    name: str = "synthesizer"

    @abc.abstractmethod
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        """Attempt to synthesize ``task`` within ``budget`` candidates."""

    # ------------------------------------------------------------------
    def solve(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
    ) -> SynthesisResult:
        """Unified-protocol entry point: ``synthesize`` plus progress events.

        With no listener this is exactly ``synthesize`` (zero overhead);
        with one, the budget's charge hook emits a ``"candidates"`` event
        every ``progress_every`` candidates examined, bracketed by
        ``"started"``/``"finished"`` events.
        """
        budget = budget or SearchBudget(limit=self.default_budget_limit)
        self._start_events(task, budget, listener)
        result = self.synthesize(task, budget=budget, seed=seed)
        self._finish_events(task, result, listener)
        return result

    # ------------------------------------------------------------------
    def _check(self, program, task: SynthesisTask, budget: SearchBudget, interpreter: Interpreter) -> bool:
        """Charge one candidate and test it against the task's IO examples."""
        if budget.exhausted:
            return False
        budget.charge(1)
        return satisfies_io_set(program, task.io_set, interpreter)

    def _result(
        self,
        task: SynthesisTask,
        budget: SearchBudget,
        stopwatch: Stopwatch,
        program=None,
        found_by: str = "search",
        generations: int = 0,
    ) -> SynthesisResult:
        """Assemble a :class:`SynthesisResult` with the shared bookkeeping."""
        return SynthesisResult(
            found=program is not None,
            program=program,
            candidates_used=budget.used,
            budget_limit=budget.limit,
            generations=generations,
            wall_time_seconds=stopwatch.elapsed,
            found_by=found_by if program is not None else "none",
            method=self.name,
            task_id=task.task_id,
        )
