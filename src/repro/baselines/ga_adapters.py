"""Adapters exposing NetSyn's GA variants through the Synthesizer interface.

These adapters let the evaluation harness treat the NetSyn variants
(learned CF/LCS/FP fitness), the hand-crafted edit-distance GA and the
oracle GA exactly like the external baselines.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import Synthesizer
from repro.config import NetSynConfig
from repro.core.netsyn import NetSyn
from repro.core.phase1 import Phase1Artifacts
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.ga.budget import SearchBudget


class NetSynSynthesizer(Synthesizer):
    """Wraps a fitted :class:`~repro.core.netsyn.NetSyn` instance."""

    def __init__(self, netsyn: NetSyn, name: Optional[str] = None) -> None:
        self.netsyn = netsyn
        self.name = name or f"netsyn_{netsyn.config.fitness_kind}"

    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=self.netsyn.config.max_search_space)
        result = self.netsyn.synthesize(
            task.io_set, target=task.target, budget=budget, seed=seed, task_id=task.task_id
        )
        result.method = self.name
        return result


class EditGASynthesizer(NetSynSynthesizer):
    """NetSyn's GA with the hand-crafted output edit-distance fitness."""

    def __init__(self, config: Optional[NetSynConfig] = None) -> None:
        config = (config or NetSynConfig()).replace(
            fitness_kind="edit", fp_guided_mutation=False
        )
        netsyn = NetSyn(config)
        netsyn.set_models()  # no learned models required
        super().__init__(netsyn, name="edit")


class OracleGASynthesizer(NetSynSynthesizer):
    """NetSyn's GA with the ideal (oracle) fitness — the paper's upper bound."""

    def __init__(self, config: Optional[NetSynConfig] = None, kind: str = "lcs") -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        config = (config or NetSynConfig()).replace(
            fitness_kind=f"oracle_{kind}", fp_guided_mutation=False
        )
        netsyn = NetSyn(config)
        netsyn.set_models()
        super().__init__(netsyn, name="oracle")


def make_netsyn_synthesizer(
    kind: str,
    config: NetSynConfig,
    trace_artifacts: Optional[Phase1Artifacts] = None,
    fp_artifacts: Optional[Phase1Artifacts] = None,
) -> NetSynSynthesizer:
    """Build a NetSyn variant that reuses pre-trained Phase-1 artifacts."""
    variant = config.replace(fitness_kind=kind)
    netsyn = NetSyn(variant)
    netsyn.set_models(trace_artifacts=trace_artifacts, fp_artifacts=fp_artifacts)
    return NetSynSynthesizer(netsyn)
