"""Adapters exposing NetSyn's GA variants through the Synthesizer interface.

These adapters let the evaluation harness treat the NetSyn variants
(learned CF/LCS/FP fitness), the hand-crafted edit-distance GA and the
oracle GA exactly like the external baselines.  They are thin shells
around :class:`~repro.core.netsyn.NetSynBackend`, which implements the
unified :class:`~repro.core.backend.SynthesisBackend` protocol —
``solve`` streams per-generation progress events straight from the GA
engine.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.base import Synthesizer
from repro.config import NetSynConfig
from repro.core.netsyn import NetSyn, NetSynBackend
from repro.core.phase1 import Phase1Artifacts
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.events import ProgressListener
from repro.ga.budget import SearchBudget


class NetSynSynthesizer(Synthesizer):
    """Wraps a fitted :class:`NetSynBackend` (or legacy :class:`NetSyn`)."""

    def __init__(self, netsyn, name: Optional[str] = None) -> None:
        backend = netsyn.backend if isinstance(netsyn, NetSyn) else netsyn
        self.backend: NetSynBackend = backend
        if name is not None:
            self.backend.name = name
        self.name = self.backend.name

    # ------------------------------------------------------------------
    @property
    def requires(self) -> Tuple[str, ...]:  # type: ignore[override]
        return self.backend.requires

    @property
    def default_budget_limit(self) -> int:  # type: ignore[override]
        return self.backend.config.max_search_space

    @property
    def progress_every(self) -> int:  # type: ignore[override]
        return self.backend.progress_every

    @progress_every.setter
    def progress_every(self, value: int) -> None:
        # solve() delegates to the inner backend, so the event cadence
        # must live there, not on this wrapper
        self.backend.progress_every = value

    def bind(self, store) -> "NetSynSynthesizer":
        self.backend.bind(store)
        return self

    # -- warm-cache surface (delegated so the service layer's snapshot /
    # merge-back / persistence paths see the inner backend's caches) ----
    def cache_snapshot(self, dirty_only: bool = False):
        return self.backend.cache_snapshot(dirty_only=dirty_only)

    def load_cache_snapshot(self, data) -> None:
        self.backend.load_cache_snapshot(data)

    def cache_version(self) -> int:
        return self.backend.cache_version()

    def begin_cache_delta(self) -> None:
        self.backend.begin_cache_delta()

    @property
    def score_table(self):
        return self.backend.score_table

    def attach_score_table(self, table) -> None:
        self.backend.attach_score_table(table)

    @property
    def remote_tier(self):
        return self.backend.remote_tier

    def attach_remote_tier(self, remote) -> None:
        self.backend.attach_remote_tier(remote)

    # -- cross-job fusion surface (delegated so the session's fused-run
    # path sees the inner backend's plane/engine builders) --------------
    def supports_fusion(self) -> bool:
        return self.backend.supports_fusion()

    def fused_executor(self, plane, token):
        return self.backend.fused_executor(plane, token)

    def merge_fused_cache(self, engine) -> int:
        return self.backend.merge_fused_cache(engine)

    # ------------------------------------------------------------------
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=self.backend.config.max_search_space)
        return self.backend.solve_io(
            task.io_set, target=task.target, budget=budget, seed=seed, task_id=task.task_id
        )

    def solve(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
        executor=None,
    ) -> SynthesisResult:
        """Delegate to the backend so GA generation events are streamed."""
        return self.backend.solve(
            task, budget=budget, seed=seed, listener=listener, executor=executor
        )


class EditGASynthesizer(NetSynSynthesizer):
    """NetSyn's GA with the hand-crafted output edit-distance fitness."""

    def __init__(self, config: Optional[NetSynConfig] = None) -> None:
        config = (config or NetSynConfig()).replace(
            fitness_kind="edit", fp_guided_mutation=False
        )
        backend = NetSynBackend(config, name="edit")
        backend.set_models()  # no learned models required
        super().__init__(backend)


class OracleGASynthesizer(NetSynSynthesizer):
    """NetSyn's GA with the ideal (oracle) fitness — the paper's upper bound."""

    def __init__(self, config: Optional[NetSynConfig] = None, kind: str = "lcs") -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        config = (config or NetSynConfig()).replace(
            fitness_kind=f"oracle_{kind}", fp_guided_mutation=False
        )
        backend = NetSynBackend(config, name="oracle")
        backend.set_models()
        super().__init__(backend)


def make_netsyn_synthesizer(
    kind: str,
    config: NetSynConfig,
    trace_artifacts: Optional[Phase1Artifacts] = None,
    fp_artifacts: Optional[Phase1Artifacts] = None,
) -> NetSynSynthesizer:
    """Build a NetSyn variant that reuses pre-trained Phase-1 artifacts."""
    variant = config.replace(fitness_kind=kind)
    backend = NetSynBackend(variant)
    backend.set_models(trace_artifacts=trace_artifacts, fp_artifacts=fp_artifacts)
    return NetSynSynthesizer(backend)
