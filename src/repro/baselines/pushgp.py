"""PushGP-like baseline: classic genetic programming with edit-distance fitness.

The paper compares against PushGP (Perkis, 1994), a stack-based GP
system.  The published NetSyn evaluation gives no implementation details
beyond the citation, so this reimplementation keeps the aspects that make
PushGP behave differently from NetSyn's GA (documented in DESIGN.md):

* variable-length linear genomes (between 1 and twice the target length),
* tournament selection instead of Roulette Wheel,
* splice crossover and insert/delete/replace mutation,
* a hand-crafted output edit-distance fitness (no learned models),
* no dead-code rejection and no neighborhood search.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import Synthesizer
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.functions import EditDistanceFitness
from repro.ga.budget import SearchBudget
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch


class PushGPSynthesizer(Synthesizer):
    """Variable-length GP over the DSL with output edit-distance fitness."""

    name = "pushgp"
    requires = ()

    def __init__(
        self,
        program_length: int,
        registry: FunctionRegistry = REGISTRY,
        population_size: int = 100,
        tournament_size: int = 3,
        crossover_rate: float = 0.6,
        mutation_rate: float = 0.3,
        elite_count: int = 2,
        max_generations: int = 100_000,
    ) -> None:
        if program_length <= 0:
            raise ValueError("program_length must be positive")
        self.program_length = program_length
        self.max_length = max(2, 2 * program_length)
        self.registry = registry
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.elite_count = elite_count
        self.max_generations = max_generations
        self.fitness = EditDistanceFitness()

    # ------------------------------------------------------------------
    def _random_genome(self, rng: np.random.Generator) -> Program:
        length = int(rng.integers(1, self.max_length + 1))
        ids = [int(fid) for fid in rng.choice(self.registry.ids, size=length)]
        return Program(ids, self.registry)

    def _tournament(self, population: List[Program], scores: np.ndarray, rng: np.random.Generator) -> Program:
        contenders = rng.integers(0, len(population), size=self.tournament_size)
        best = max(contenders, key=lambda index: scores[index])
        return population[int(best)]

    def _crossover(self, a: Program, b: Program, rng: np.random.Generator) -> Program:
        cut_a = int(rng.integers(0, len(a) + 1))
        cut_b = int(rng.integers(0, len(b) + 1))
        ids = list(a.function_ids[:cut_a]) + list(b.function_ids[cut_b:])
        ids = ids[: self.max_length] or [int(rng.choice(self.registry.ids))]
        return Program(ids, self.registry)

    def _mutate(self, genome: Program, rng: np.random.Generator) -> Program:
        ids = list(genome.function_ids)
        action = rng.integers(0, 3)
        if action == 0 and len(ids) < self.max_length:  # insert
            position = int(rng.integers(0, len(ids) + 1))
            ids.insert(position, int(rng.choice(self.registry.ids)))
        elif action == 1 and len(ids) > 1:  # delete
            position = int(rng.integers(0, len(ids)))
            del ids[position]
        else:  # replace
            position = int(rng.integers(0, len(ids)))
            ids[position] = int(rng.choice(self.registry.ids))
        return Program(ids, self.registry)

    # ------------------------------------------------------------------
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=10_000)
        rng = RngFactory(seed).get("pushgp")
        interpreter = Interpreter(trace=False)
        stopwatch = Stopwatch()
        stopwatch.start()

        population: List[Program] = []
        found: Optional[Program] = None
        generations = 0
        for _ in range(self.population_size):
            genome = self._random_genome(rng)
            population.append(genome)
            if self._check(genome, task, budget, interpreter):
                found = genome
                break
            if budget.exhausted:
                break

        while found is None and not budget.exhausted and generations < self.max_generations:
            generations += 1
            scores = self.fitness.score(population, task.io_set)
            order = np.argsort(scores)[::-1]
            next_population: List[Program] = [population[int(i)] for i in order[: self.elite_count]]
            while len(next_population) < self.population_size and not budget.exhausted:
                draw = rng.random()
                if draw < self.crossover_rate:
                    child = self._crossover(
                        self._tournament(population, scores, rng),
                        self._tournament(population, scores, rng),
                        rng,
                    )
                elif draw < self.crossover_rate + self.mutation_rate:
                    child = self._mutate(self._tournament(population, scores, rng), rng)
                else:
                    child = self._tournament(population, scores, rng)
                    next_population.append(child)
                    continue
                if self._check(child, task, budget, interpreter):
                    found = child
                    break
                next_population.append(child)
            if found is not None:
                break
            population = next_population
            if len(population) < 2:
                break

        stopwatch.stop()
        return self._result(
            task, budget, stopwatch, program=found, found_by="ga", generations=generations
        )
