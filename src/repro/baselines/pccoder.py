"""PCCoder-like baseline: step-wise prediction with widening beam search.

PCCoder (Zohar & Wolf, 2018) predicts the next statement of a partially
constructed program from the current *program state* (the values computed
so far) and the target output, and searches with a complete anytime beam
(CAB): repeated beam searches with an exponentially growing width until a
solution is found or the budget runs out.

This reimplementation keeps the same structure over NetSyn's DSL:

* :class:`StepPredictorModel` — predicts the next function from the most
  recent intermediate value and the example's target output.
* :func:`train_step_model` — builds (state, output, next-function)
  training triples from random programs and trains the model.
* :class:`PCCoderSynthesizer` — CAB beam search; every *complete*
  candidate program examined is charged against the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import Synthesizer
from repro.config import DSLConfig, NNConfig, TrainingConfig
from repro.core.phase1 import Phase1Artifacts, register_model_builder
from repro.core.result import SynthesisResult
from repro.data.corpus import CorpusBuilder
from repro.data.tasks import SynthesisTask
from repro.dsl.dce import has_dead_code
from repro.dsl.equivalence import IOExample, IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.features import FeatureEncoder
from repro.ga.budget import SearchBudget
from repro.nn.autograd import concat, no_grad
from repro.nn.layers import Dense
from repro.nn.losses import softmax_cross_entropy, softmax_probabilities
from repro.nn.module import Module
from repro.nn.optimizers import Adam
from repro.nn.encoders import make_sequence_encoder
from repro.nn.training import Trainer, TrainingHistory
from repro.fitness.features import value_vocabulary_size
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch


class StepPredictorModel(Module):
    """Predicts the next DSL function from (current state, target output)."""

    def __init__(
        self,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config or NNConfig()
        self.config.validate()
        self.registry = registry
        rng = rng or np.random.default_rng(0)
        emb, hidden, fc = self.config.embedding_dim, self.config.hidden_dim, self.config.fc_dim
        vocab = value_vocabulary_size()
        self.value_encoder = make_sequence_encoder(self.config.encoder, vocab, emb, hidden, rng=rng)
        self.example_dense = Dense(2 * hidden, fc, activation="tanh", rng=rng)
        self.hidden_head = Dense(fc, fc, activation="relu", rng=rng)
        self.output_head = Dense(fc, len(registry), rng=rng)

    def forward(self, batch: Dict[str, np.ndarray]):
        b, m = (int(x) for x in batch["shape"][:2])
        enc_state = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        example_vec = self.example_dense(concat([enc_state, enc_output], axis=-1))
        combined = example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)
        return self.output_head(self.hidden_head(combined))

    def compute_loss(self, batch: Dict[str, np.ndarray]):
        logits = self.forward(batch)
        labels = batch["labels"]
        loss = softmax_cross_entropy(logits, labels)
        accuracy = float((logits.data.argmax(axis=1) == labels).mean())
        return loss, {"accuracy": accuracy}

    def predict_log_probabilities(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Log-probabilities of the next function, ``(B, |ΣDSL|)``."""
        with no_grad():
            logits = self.forward(batch)
        probabilities = softmax_probabilities(logits)
        return np.log(np.clip(probabilities, 1e-12, 1.0))


@dataclass
class _StepSample:
    """One training triple for the step model."""

    state_io: IOSet  # per-example (current state value, target output)
    label: int  # 0-based index of the next function


class StepDataset:
    """Dataset of :class:`_StepSample` for the step predictor."""

    def __init__(self, samples: Sequence[_StepSample], encoder: Optional[FeatureEncoder] = None) -> None:
        self.samples = list(samples)
        self.encoder = encoder or FeatureEncoder()

    def __len__(self) -> int:
        return len(self.samples)

    def get_batch(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        chosen = [self.samples[int(i)] for i in indices]
        batch = self.encoder.encode_io_batch([s.state_io for s in chosen])
        batch["labels"] = np.array([s.label for s in chosen], dtype=np.int64)
        return batch


def _step_samples_from_program(
    program: Program, io_set: IOSet, interpreter: Interpreter, registry: FunctionRegistry
) -> List[_StepSample]:
    """Decompose one (program, IO set) pair into per-step training samples."""
    traces = [interpreter.run(program, example.inputs) for example in io_set]
    samples: List[_StepSample] = []
    for position in range(len(program)):
        state_io: IOSet = []
        for example, trace in zip(io_set, traces):
            if position == 0:
                state_value = example.inputs[0] if example.inputs else []
            else:
                state_value = trace.intermediate_outputs[position - 1]
            state_io.append(IOExample(inputs=(state_value,), output=example.output))
        samples.append(
            _StepSample(state_io=state_io, label=registry.index_of(program.function_ids[position]))
        )
    return samples


def train_step_model(
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the PCCoder-style next-function model from random programs."""
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed + 2)
    registry = REGISTRY
    interpreter = Interpreter()

    builder = CorpusBuilder(training=training, dsl=dsl, registry=registry)
    # one program yields `program_length` step samples, so fewer programs are needed
    n_programs = max(1, training.corpus_size // max(1, training.program_length))
    samples: List[_StepSample] = []
    for _ in range(n_programs):
        target, io_set = builder._target_with_io()
        samples.extend(_step_samples_from_program(target, io_set, interpreter, registry))

    encoder = FeatureEncoder()
    dataset = StepDataset(samples, encoder)
    model = StepPredictorModel(config=nn, rng=factory.get("step-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("step-batches"))
    history = trainer.fit(dataset, epochs=training.epochs, batch_size=training.batch_size, verbose=verbose)
    return Phase1Artifacts(model=model, history=history, encoder=encoder,
                           validation_metrics=history.train_metrics[-1] if history.train_metrics else {})


class PCCoderSynthesizer(Synthesizer):
    """CAB beam search driven by the step-wise next-function model."""

    name = "pccoder"
    requires = ("step",)

    def __init__(
        self,
        step_artifacts: Phase1Artifacts,
        program_length: int,
        registry: FunctionRegistry = REGISTRY,
        initial_beam_width: int = 8,
        beam_growth: float = 2.0,
        skip_dead_code: bool = True,
    ) -> None:
        if program_length <= 0:
            raise ValueError("program_length must be positive")
        self.model: StepPredictorModel = step_artifacts.model
        self.encoder: FeatureEncoder = step_artifacts.encoder
        self.program_length = program_length
        self.registry = registry
        self.initial_beam_width = initial_beam_width
        self.beam_growth = beam_growth
        self.skip_dead_code = skip_dead_code

    # ------------------------------------------------------------------
    def _state_io_for(self, prefix: Tuple[int, ...], task: SynthesisTask, interpreter: Interpreter) -> IOSet:
        """Per-example (current intermediate value, target output) pairs."""
        state_io: IOSet = []
        if prefix:
            program = Program(prefix, self.registry)
        for example in task.io_set:
            if prefix:
                trace = interpreter.run(program, example.inputs)
                state = trace.intermediate_outputs[-1]
            else:
                state = example.inputs[0] if example.inputs else []
            state_io.append(IOExample(inputs=(state,), output=example.output))
        return state_io

    def _beam_search(
        self, task: SynthesisTask, budget: SearchBudget, width: int, interpreter: Interpreter
    ) -> Optional[Program]:
        beam: List[Tuple[float, Tuple[int, ...]]] = [(0.0, ())]
        ids = self.registry.ids
        for _ in range(self.program_length):
            if budget.exhausted:
                return None
            state_ios = [self._state_io_for(prefix, task, interpreter) for _, prefix in beam]
            batch = self.encoder.encode_io_batch(state_ios)
            log_probs = self.model.predict_log_probabilities(batch)
            extensions: List[Tuple[float, Tuple[int, ...]]] = []
            for (score, prefix), row in zip(beam, log_probs):
                for index, fid in enumerate(ids):
                    extensions.append((score + float(row[index]), prefix + (fid,)))
            extensions.sort(key=lambda item: item[0], reverse=True)
            beam = extensions[:width]
        # check completed programs in score order
        for score, prefix in beam:
            candidate = Program(prefix, self.registry)
            if self.skip_dead_code and has_dead_code(candidate):
                continue
            if self._check(candidate, task, budget, interpreter):
                return candidate
            if budget.exhausted:
                return None
        return None

    # ------------------------------------------------------------------
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=10_000)
        interpreter = Interpreter()
        stopwatch = Stopwatch()
        stopwatch.start()
        width = self.initial_beam_width
        found: Optional[Program] = None
        while not budget.exhausted and found is None:
            found = self._beam_search(task, budget, width, interpreter)
            width = int(max(width + 1, round(width * self.beam_growth)))
            if width > len(self.registry.ids) ** self.program_length:
                break
        stopwatch.stop()
        return self._result(task, budget, stopwatch, program=found, found_by="search")


# allow Phase1Artifacts.load to rebuild persisted steppredictor models
register_model_builder("StepPredictorModel", lambda meta, nn: StepPredictorModel(config=nn))
