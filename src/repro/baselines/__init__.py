"""Baseline synthesizers the paper compares against.

All baselines implement the same :class:`Synthesizer` interface and share
the same DSL, IO-example format and candidate-budget accounting as
NetSyn, so the evaluation harness can compare them on the paper's
"search space used" metric.

* :class:`DeepCoderSynthesizer` — probability-guided best-first
  enumeration (DeepCoder-like): a learned function-probability model
  orders an enumerative search over complete programs.
* :class:`PCCoderSynthesizer` — step-wise beam search (PCCoder-like): a
  learned next-function model extends partial programs, with iteratively
  widened beams (CAB-style restarts).
* :class:`RobustFillSynthesizer` — autoregressive sampling
  (RobustFill-like): a learned decoder generates whole candidate programs
  conditioned on the IO examples.
* :class:`PushGPSynthesizer` — stack-style genetic programming with
  variable-length genes and output edit-distance fitness.
* :class:`NetSynSynthesizer`, :class:`EditGASynthesizer`,
  :class:`OracleGASynthesizer` — adapters exposing NetSyn and its
  hand-crafted/oracle fitness variants through the same interface.
* :func:`build_synthesizer` / :class:`SynthesizerContext` — the method
  registry used by the evaluation harness.
"""

from repro.baselines.base import Synthesizer, SynthesizerContext
from repro.baselines.deepcoder import DeepCoderSynthesizer
from repro.baselines.pccoder import PCCoderSynthesizer, StepPredictorModel, train_step_model
from repro.baselines.robustfill import RobustFillSynthesizer, ProgramDecoderModel, train_decoder_model
from repro.baselines.pushgp import PushGPSynthesizer
from repro.baselines.ga_adapters import (
    EditGASynthesizer,
    NetSynSynthesizer,
    OracleGASynthesizer,
)
from repro.baselines.registry import (
    METHOD_NAMES,
    build_backend,
    build_context,
    build_synthesizer,
    ensure_artifacts,
    required_artifacts,
)

__all__ = [
    "Synthesizer",
    "SynthesizerContext",
    "DeepCoderSynthesizer",
    "PCCoderSynthesizer",
    "StepPredictorModel",
    "train_step_model",
    "RobustFillSynthesizer",
    "ProgramDecoderModel",
    "train_decoder_model",
    "PushGPSynthesizer",
    "EditGASynthesizer",
    "NetSynSynthesizer",
    "OracleGASynthesizer",
    "METHOD_NAMES",
    "build_backend",
    "build_synthesizer",
    "build_context",
    "ensure_artifacts",
    "required_artifacts",
]
