"""DeepCoder-like baseline: probability-guided enumerative search.

DeepCoder (Balog et al., 2017) trains a model that predicts, from the IO
examples, the probability of each DSL function appearing in the target
program, and uses those probabilities to order an enumerative search.
This reimplementation reuses the same
:class:`~repro.fitness.models.FunctionProbabilityModel` NetSyn trains for
its FP fitness and performs a best-first enumeration over complete
programs of the target length: programs are dequeued in order of
decreasing sum of log-probabilities of their functions, charged against
the candidate budget, and checked against the IO examples.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import Synthesizer, SynthesizerContext
from repro.core.phase1 import Phase1Artifacts
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.dsl.dce import has_dead_code
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.functions import ProbabilityMapFitness
from repro.ga.budget import SearchBudget
from repro.utils.timing import Stopwatch


class DeepCoderSynthesizer(Synthesizer):
    """Best-first enumeration ordered by a learned function-probability map."""

    name = "deepcoder"
    requires = ("fp",)

    def __init__(
        self,
        fp_artifacts: Phase1Artifacts,
        program_length: int,
        registry: FunctionRegistry = REGISTRY,
        max_frontier: int = 200_000,
        skip_dead_code: bool = True,
    ) -> None:
        if program_length <= 0:
            raise ValueError("program_length must be positive")
        self.fp_fitness = ProbabilityMapFitness(fp_artifacts.model, encoder=fp_artifacts.encoder)
        self.program_length = program_length
        self.registry = registry
        self.max_frontier = max_frontier
        self.skip_dead_code = skip_dead_code

    # ------------------------------------------------------------------
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=10_000)
        interpreter = Interpreter(trace=False)
        stopwatch = Stopwatch()
        stopwatch.start()

        probability_map = self.fp_fitness.probability_map(task.io_set)
        log_probs = np.log(np.clip(probability_map, 1e-6, 1.0))
        ids = list(self.registry.ids)

        # Best-first search over prefixes: priority = negated sum of log-probs
        # plus an optimistic bound (best possible extension), which makes the
        # order equivalent to enumerating complete programs by score.
        best_log = float(log_probs.max())
        counter = itertools.count()
        frontier: List[Tuple[float, int, Tuple[int, ...]]] = []
        heapq.heappush(frontier, (-best_log * self.program_length, next(counter), ()))

        found: Optional[Program] = None
        while frontier and not budget.exhausted:
            priority, _, prefix = heapq.heappop(frontier)
            if len(prefix) == self.program_length:
                candidate = Program(prefix, self.registry)
                if self.skip_dead_code and has_dead_code(candidate):
                    continue
                if self._check(candidate, task, budget, interpreter):
                    found = candidate
                    break
                continue
            # expand one position
            prefix_score = sum(log_probs[self.registry.index_of(f)] for f in prefix)
            remaining = self.program_length - len(prefix) - 1
            for fid in ids:
                score = prefix_score + log_probs[self.registry.index_of(fid)] + remaining * best_log
                heapq.heappush(frontier, (-score, next(counter), prefix + (fid,)))
            if len(frontier) > self.max_frontier:
                # keep only the most promising prefixes to bound memory
                frontier = heapq.nsmallest(self.max_frontier // 2, frontier)
                heapq.heapify(frontier)

        stopwatch.stop()
        return self._result(task, budget, stopwatch, program=found, found_by="search")
