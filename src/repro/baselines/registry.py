"""Method registry used by the service layer and the evaluation harness.

``ensure_artifacts`` trains every Phase-1 model a set of methods needs —
exactly once, into a typed :class:`~repro.core.artifacts.ArtifactStore` —
and ``build_backend`` instantiates a named method against that store, so
all methods in one experiment see the same trained models and the same
configuration.  ``build_context``/``build_synthesizer`` remain as shims
over the old ``SynthesizerContext`` surface.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.baselines.base import Synthesizer, SynthesizerContext
from repro.baselines.deepcoder import DeepCoderSynthesizer
from repro.baselines.ga_adapters import (
    EditGASynthesizer,
    OracleGASynthesizer,
    make_netsyn_synthesizer,
)
from repro.baselines.pccoder import PCCoderSynthesizer, train_step_model
from repro.baselines.pushgp import PushGPSynthesizer
from repro.baselines.robustfill import RobustFillSynthesizer, train_decoder_model
from repro.config import NetSynConfig
from repro.core.artifacts import ArtifactStore
from repro.core.backend import SynthesisBackend
from repro.core.phase1 import train_fp_model, train_trace_model
from repro.utils.logging import get_logger

logger = get_logger("baselines.registry")

#: every method name the evaluation harness understands
METHOD_NAMES = (
    "netsyn_cf",
    "netsyn_lcs",
    "netsyn_fp",
    "edit",
    "oracle",
    "pushgp",
    "deepcoder",
    "pccoder",
    "robustfill",
)

#: Phase-1 artifacts required by each method
_REQUIREMENTS: Dict[str, Sequence[str]] = {
    "netsyn_cf": ("cf", "fp"),
    "netsyn_lcs": ("lcs", "fp"),
    "netsyn_fp": ("fp",),
    "edit": (),
    "oracle": (),
    "pushgp": (),
    "deepcoder": ("fp",),
    "pccoder": ("step",),
    "robustfill": ("decoder",),
}


def required_artifacts(methods: Iterable[str]) -> set:
    """Names of every Phase-1 artifact the given methods need."""
    needed: set = set()
    for method in methods:
        if method not in _REQUIREMENTS:
            raise KeyError(f"unknown method {method!r}; known: {METHOD_NAMES}")
        needed.update(_REQUIREMENTS[method])
    return needed


#: trainer per canonical artifact name (all share TrainingConfig/NNConfig/DSLConfig)
_TRAINERS = {
    "cf": lambda **kw: train_trace_model(kind="cf", **kw),
    "lcs": lambda **kw: train_trace_model(kind="lcs", **kw),
    "fp": train_fp_model,
    "step": train_step_model,
    "decoder": train_decoder_model,
}


def ensure_artifacts(
    store: ArtifactStore,
    config: NetSynConfig,
    methods: Iterable[str] = METHOD_NAMES,
    verbose: bool = False,
) -> ArtifactStore:
    """Train (in place) every artifact the given methods need and the store
    does not already hold — the fit-once half of fit-once-serve-many.

    Artifacts already present (warm-started from disk via
    :meth:`ArtifactStore.load`, or trained for an earlier session) are
    left untouched.
    """
    config.validate()
    needed = sorted(required_artifacts(methods))
    for name in store.missing(needed):
        logger.info("training %s model", name)
        store.set(
            name,
            _TRAINERS[name](
                training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
            ),
        )
    return store


def build_context(
    config: Optional[NetSynConfig] = None,
    methods: Iterable[str] = METHOD_NAMES,
    verbose: bool = False,
) -> SynthesizerContext:
    """Train every artifact the given methods need and return the context.

    Deprecated shim: the context now wraps a typed
    :class:`~repro.core.artifacts.ArtifactStore` (``context.store``).
    """
    config = config or NetSynConfig()
    context = SynthesizerContext(config=config)
    ensure_artifacts(context.store, config, methods=methods, verbose=verbose)
    return context


def build_backend(
    name: str,
    store: ArtifactStore,
    config: NetSynConfig,
    program_length: Optional[int] = None,
) -> SynthesisBackend:
    """Instantiate the named method against a prepared artifact store.

    Every returned object implements the unified
    :class:`~repro.core.backend.SynthesisBackend` protocol (``solve`` with
    progress events); artifact lookups go through the typed store, so a
    missing model fails with a precise
    :class:`~repro.core.artifacts.MissingArtifactError`.
    """
    if name not in _REQUIREMENTS:
        raise KeyError(f"unknown method {name!r}; known: {METHOD_NAMES}")
    length = program_length or config.program_length
    config = config.replace(program_length=length)

    if name in ("netsyn_cf", "netsyn_lcs", "netsyn_fp"):
        kind = name.split("_", 1)[1]
        trace = store.get_optional(kind) if kind in ("cf", "lcs") else None
        fp = store.get_optional("fp")
        return make_netsyn_synthesizer(kind, config, trace_artifacts=trace, fp_artifacts=fp)
    if name == "edit":
        return EditGASynthesizer(config)
    if name == "oracle":
        return OracleGASynthesizer(config, kind="lcs")
    if name == "pushgp":
        return PushGPSynthesizer(program_length=length)
    if name == "deepcoder":
        return DeepCoderSynthesizer(store.get("fp"), program_length=length)
    if name == "pccoder":
        return PCCoderSynthesizer(store.get("step"), program_length=length)
    if name == "robustfill":
        return RobustFillSynthesizer(store.get("decoder"), program_length=length)
    raise KeyError(name)  # pragma: no cover - guarded above


def build_synthesizer(
    name: str, context: SynthesizerContext, program_length: Optional[int] = None
) -> Synthesizer:
    """Instantiate the named method against a prepared context (old surface)."""
    return build_backend(name, context.store, context.config, program_length=program_length)
