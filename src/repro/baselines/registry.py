"""Method registry used by the evaluation harness.

``build_context`` trains every Phase-1 model a set of methods needs —
exactly once — and ``build_synthesizer`` instantiates a named method
against that shared context, so all methods in one experiment see the
same trained models and the same configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.baselines.base import Synthesizer, SynthesizerContext
from repro.baselines.deepcoder import DeepCoderSynthesizer
from repro.baselines.ga_adapters import (
    EditGASynthesizer,
    OracleGASynthesizer,
    make_netsyn_synthesizer,
)
from repro.baselines.pccoder import PCCoderSynthesizer, train_step_model
from repro.baselines.pushgp import PushGPSynthesizer
from repro.baselines.robustfill import RobustFillSynthesizer, train_decoder_model
from repro.config import NetSynConfig
from repro.core.phase1 import train_fp_model, train_trace_model
from repro.utils.logging import get_logger

logger = get_logger("baselines.registry")

#: every method name the evaluation harness understands
METHOD_NAMES = (
    "netsyn_cf",
    "netsyn_lcs",
    "netsyn_fp",
    "edit",
    "oracle",
    "pushgp",
    "deepcoder",
    "pccoder",
    "robustfill",
)

#: Phase-1 artifacts required by each method
_REQUIREMENTS: Dict[str, Sequence[str]] = {
    "netsyn_cf": ("cf", "fp"),
    "netsyn_lcs": ("lcs", "fp"),
    "netsyn_fp": ("fp",),
    "edit": (),
    "oracle": (),
    "pushgp": (),
    "deepcoder": ("fp",),
    "pccoder": ("step",),
    "robustfill": ("decoder",),
}


def required_artifacts(methods: Iterable[str]) -> set:
    """Names of every Phase-1 artifact the given methods need."""
    needed: set = set()
    for method in methods:
        if method not in _REQUIREMENTS:
            raise KeyError(f"unknown method {method!r}; known: {METHOD_NAMES}")
        needed.update(_REQUIREMENTS[method])
    return needed


def build_context(
    config: Optional[NetSynConfig] = None,
    methods: Iterable[str] = METHOD_NAMES,
    verbose: bool = False,
) -> SynthesizerContext:
    """Train every artifact the given methods need and return the context."""
    config = config or NetSynConfig()
    config.validate()
    context = SynthesizerContext(config=config)
    needed = required_artifacts(methods)

    if "cf" in needed:
        logger.info("training CF trace model")
        context.artifacts["cf"] = train_trace_model(
            kind="cf", training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
        )
    if "lcs" in needed:
        logger.info("training LCS trace model")
        context.artifacts["lcs"] = train_trace_model(
            kind="lcs", training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
        )
    if "fp" in needed:
        logger.info("training FP model")
        context.artifacts["fp"] = train_fp_model(
            training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
        )
    if "step" in needed:
        logger.info("training PCCoder step model")
        context.artifacts["step"] = train_step_model(
            training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
        )
    if "decoder" in needed:
        logger.info("training RobustFill decoder model")
        context.artifacts["decoder"] = train_decoder_model(
            training=config.training, nn=config.nn, dsl=config.dsl, verbose=verbose
        )
    return context


def build_synthesizer(name: str, context: SynthesizerContext, program_length: Optional[int] = None) -> Synthesizer:
    """Instantiate the named method against a prepared context."""
    if name not in _REQUIREMENTS:
        raise KeyError(f"unknown method {name!r}; known: {METHOD_NAMES}")
    config = context.config
    length = program_length or config.program_length
    config = config.replace(program_length=length)

    if name in ("netsyn_cf", "netsyn_lcs", "netsyn_fp"):
        kind = name.split("_", 1)[1]
        trace = context.artifacts.get(kind) if kind in ("cf", "lcs") else None
        fp = context.artifacts.get("fp")
        return make_netsyn_synthesizer(kind, config, trace_artifacts=trace, fp_artifacts=fp)
    if name == "edit":
        return EditGASynthesizer(config)
    if name == "oracle":
        return OracleGASynthesizer(config, kind="lcs")
    if name == "pushgp":
        return PushGPSynthesizer(program_length=length)
    if name == "deepcoder":
        return DeepCoderSynthesizer(context.get("fp"), program_length=length)
    if name == "pccoder":
        return PCCoderSynthesizer(context.get("step"), program_length=length)
    if name == "robustfill":
        return RobustFillSynthesizer(context.get("decoder"), program_length=length)
    raise KeyError(name)  # pragma: no cover - guarded above
