"""RobustFill-like baseline: autoregressive program generation.

RobustFill (Devlin et al., 2017) encodes the IO examples with recurrent
networks and decodes the program one token at a time.  This
reimplementation keeps the conditional-decoder structure over NetSyn's
DSL: a :class:`ProgramDecoderModel` predicts ``P(f_k | IO, f_{<k})`` and
the synthesizer repeatedly samples whole candidate programs from the
decoder (highest-probability first, then temperature sampling), charging
every generated candidate against the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import Synthesizer
from repro.config import DSLConfig, NNConfig, TrainingConfig
from repro.core.phase1 import Phase1Artifacts, register_model_builder
from repro.core.result import SynthesisResult
from repro.data.corpus import CorpusBuilder
from repro.data.tasks import SynthesisTask
from repro.dsl.dce import has_dead_code
from repro.dsl.equivalence import IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.features import FeatureEncoder, value_vocabulary_size
from repro.ga.budget import SearchBudget
from repro.nn.autograd import concat, no_grad
from repro.nn.layers import Dense, Embedding
from repro.nn.losses import softmax_cross_entropy, softmax_probabilities
from repro.nn.module import Module
from repro.nn.optimizers import Adam
from repro.nn.encoders import make_sequence_encoder
from repro.nn.training import Trainer
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch


class ProgramDecoderModel(Module):
    """Predicts the next program token from the IO context and the prefix."""

    def __init__(
        self,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config or NNConfig()
        self.config.validate()
        self.registry = registry
        rng = rng or np.random.default_rng(0)
        emb, hidden, fc = self.config.embedding_dim, self.config.hidden_dim, self.config.fc_dim
        vocab = value_vocabulary_size()
        self.value_encoder = make_sequence_encoder(self.config.encoder, vocab, emb, hidden, rng=rng)
        self.example_dense = Dense(2 * hidden, fc, activation="tanh", rng=rng)
        # +1 slot for the "start of program" token
        self.token_embedding = Embedding(len(registry) + 1, emb, rng=rng)
        self.decoder_dense = Dense(fc + emb, fc, activation="tanh", rng=rng)
        self.output_head = Dense(fc, len(registry), rng=rng)

    # -- context -----------------------------------------------------------
    def encode_context(self, batch: Dict[str, np.ndarray]):
        """IO-conditioned context vector ``(B, fc_dim)``."""
        b, m = (int(x) for x in batch["shape"][:2])
        enc_input = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        example_vec = self.example_dense(concat([enc_input, enc_output], axis=-1))
        return example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)

    def decode_step(self, context, prefix_tokens: np.ndarray):
        """Logits for the next token given padded prefix tokens ``(B, k)``.

        The prefix is summarized by the mean of its token embeddings (the
        start token alone for an empty prefix).
        """
        prefix_embedded = self.token_embedding(prefix_tokens)  # (B, k, emb)
        prefix_summary = prefix_embedded.mean(axis=1)
        hidden = self.decoder_dense(concat([context, prefix_summary], axis=-1))
        return self.output_head(hidden)

    # -- training ------------------------------------------------------------
    def compute_loss(self, batch: Dict[str, np.ndarray]):
        context = self.encode_context(batch)
        logits = self.decode_step(context, batch["prefix_tokens"])
        labels = batch["labels"]
        loss = softmax_cross_entropy(logits, labels)
        accuracy = float((logits.data.argmax(axis=1) == labels).mean())
        return loss, {"accuracy": accuracy}

    def predict_probabilities(self, context, prefix_tokens: np.ndarray) -> np.ndarray:
        with no_grad():
            logits = self.decode_step(context, prefix_tokens)
        return softmax_probabilities(logits)


@dataclass
class _DecoderSample:
    io_set: IOSet
    prefix: Tuple[int, ...]  # decoder token space: 0 = start, fid otherwise
    label: int  # 0-based function index to predict


class DecoderDataset:
    """Dataset of next-token prediction samples for the decoder."""

    def __init__(self, samples: Sequence[_DecoderSample], max_length: int, encoder: Optional[FeatureEncoder] = None) -> None:
        self.samples = list(samples)
        self.max_length = max_length
        self.encoder = encoder or FeatureEncoder()

    def __len__(self) -> int:
        return len(self.samples)

    def get_batch(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        chosen = [self.samples[int(i)] for i in indices]
        batch = self.encoder.encode_io_batch([s.io_set for s in chosen])
        prefix_tokens = np.zeros((len(chosen), self.max_length + 1), dtype=np.int64)
        for row, sample in enumerate(chosen):
            for column, token in enumerate(sample.prefix):
                prefix_tokens[row, column] = token
        batch["prefix_tokens"] = prefix_tokens
        batch["labels"] = np.array([s.label for s in chosen], dtype=np.int64)
        return batch


def train_decoder_model(
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the RobustFill-style decoder from random programs."""
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed + 3)
    registry = REGISTRY

    builder = CorpusBuilder(training=training, dsl=dsl, registry=registry)
    n_programs = max(1, training.corpus_size // max(1, training.program_length))
    samples: List[_DecoderSample] = []
    for _ in range(n_programs):
        target, io_set = builder._target_with_io()
        # decoder tokens: 0 is the start token, function fid maps to token fid
        tokens = [0] + list(target.function_ids)
        for position in range(len(target)):
            samples.append(
                _DecoderSample(
                    io_set=io_set,
                    prefix=tuple(tokens[: position + 1]),
                    label=registry.index_of(target.function_ids[position]),
                )
            )

    encoder = FeatureEncoder()
    dataset = DecoderDataset(samples, max_length=training.program_length, encoder=encoder)
    model = ProgramDecoderModel(config=nn, rng=factory.get("decoder-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("decoder-batches"))
    history = trainer.fit(dataset, epochs=training.epochs, batch_size=training.batch_size, verbose=verbose)
    return Phase1Artifacts(model=model, history=history, encoder=encoder,
                           validation_metrics=history.train_metrics[-1] if history.train_metrics else {})


class RobustFillSynthesizer(Synthesizer):
    """Samples whole candidate programs from the learned decoder."""

    name = "robustfill"
    requires = ("decoder",)

    def __init__(
        self,
        decoder_artifacts: Phase1Artifacts,
        program_length: int,
        registry: FunctionRegistry = REGISTRY,
        temperature: float = 1.0,
        greedy_first: bool = True,
        skip_dead_code: bool = True,
    ) -> None:
        if program_length <= 0:
            raise ValueError("program_length must be positive")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.model: ProgramDecoderModel = decoder_artifacts.model
        self.encoder: FeatureEncoder = decoder_artifacts.encoder
        self.program_length = program_length
        self.registry = registry
        self.temperature = temperature
        self.greedy_first = greedy_first
        self.skip_dead_code = skip_dead_code

    # ------------------------------------------------------------------
    def _generate(self, context, rng: Optional[np.random.Generator]) -> Program:
        """Decode one program; greedy when ``rng`` is None, sampled otherwise."""
        ids = self.registry.ids
        prefix_tokens = np.zeros((1, self.program_length + 1), dtype=np.int64)
        chosen: List[int] = []
        for position in range(self.program_length):
            probabilities = self.model.predict_probabilities(context, prefix_tokens)[0]
            if rng is None:
                index = int(np.argmax(probabilities))
            else:
                logits = np.log(np.clip(probabilities, 1e-12, 1.0)) / self.temperature
                weights = np.exp(logits - logits.max())
                weights /= weights.sum()
                index = int(rng.choice(len(ids), p=weights))
            fid = ids[index]
            chosen.append(fid)
            prefix_tokens[0, position + 1] = fid
        return Program(chosen, self.registry)

    # ------------------------------------------------------------------
    def synthesize(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
    ) -> SynthesisResult:
        budget = budget or SearchBudget(limit=10_000)
        interpreter = Interpreter(trace=False)
        rng = RngFactory(seed).get("robustfill")
        stopwatch = Stopwatch()
        stopwatch.start()

        batch = self.encoder.encode_io_batch([task.io_set])
        with no_grad():
            context = self.model.encode_context(batch)

        found: Optional[Program] = None
        seen: set = set()
        first = True
        consecutive_duplicates = 0
        while not budget.exhausted and found is None:
            candidate = self._generate(context, None if (first and self.greedy_first) else rng)
            first = False
            if candidate.function_ids in seen:
                # resample without charging twice for the exact same program,
                # but give up once the decoder keeps repeating itself
                consecutive_duplicates += 1
                if consecutive_duplicates > 500:
                    break
                continue
            consecutive_duplicates = 0
            seen.add(candidate.function_ids)
            if self.skip_dead_code and has_dead_code(candidate):
                continue
            if self._check(candidate, task, budget, interpreter):
                found = candidate
        stopwatch.stop()
        return self._result(task, budget, stopwatch, program=found, found_by="search")


# allow Phase1Artifacts.load to rebuild persisted programdecoder models
register_model_builder("ProgramDecoderModel", lambda meta, nn: ProgramDecoderModel(config=nn))
