"""Genetic algorithm core: evolution engine and neighborhood search.

The GA follows Section 4.2 of the paper: a population of fixed-length
genes (candidate programs), a learned fitness function, elitism, Roulette
Wheel selection, single-point crossover, (optionally FP-guided) mutation,
dead-code rejection, and a restricted local neighborhood search triggered
when the average fitness saturates.
"""

from repro.ga.budget import SearchBudget, BudgetExhausted
from repro.ga.population import Population
from repro.ga.selection import roulette_wheel_indices, roulette_wheel_probabilities
from repro.ga.operators import GeneOperators
from repro.ga.neighborhood import NeighborhoodSearch
from repro.ga.engine import EvolutionResult, GeneticAlgorithm

__all__ = [
    "SearchBudget",
    "BudgetExhausted",
    "Population",
    "roulette_wheel_indices",
    "roulette_wheel_probabilities",
    "GeneOperators",
    "NeighborhoodSearch",
    "EvolutionResult",
    "GeneticAlgorithm",
]
