"""Population container: genes plus their fitness scores."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.dsl.program import Program


@dataclass
class Population:
    """A scored population of candidate programs (genes).

    ``scores[i]`` is the fitness of ``members[i]``; scores may be ``None``
    before the first evaluation.
    """

    members: List[Program]
    scores: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("population cannot be empty")
        if self.scores is not None:
            self.scores = np.asarray(self.scores, dtype=np.float64)
            if len(self.scores) != len(self.members):
                raise ValueError("scores length must match members length")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[Program]:
        return iter(self.members)

    def __getitem__(self, index: int) -> Program:
        return self.members[index]

    @property
    def is_scored(self) -> bool:
        return self.scores is not None

    def _require_scores(self) -> np.ndarray:
        if self.scores is None:
            raise RuntimeError("population has not been scored yet")
        return self.scores

    # ------------------------------------------------------------------
    def set_scores(self, scores: Sequence[float]) -> None:
        """Attach fitness scores (one per member)."""
        scores = np.asarray(scores, dtype=np.float64)
        if len(scores) != len(self.members):
            raise ValueError("scores length must match members length")
        self.scores = scores

    def best_index(self) -> int:
        """Index of the highest-scoring member."""
        return int(np.argmax(self._require_scores()))

    def best(self) -> Program:
        """The highest-scoring member."""
        return self.members[self.best_index()]

    def top_indices(self, count: int) -> np.ndarray:
        """Indices of the ``count`` highest-scoring members, best first."""
        scores = self._require_scores()
        count = min(count, len(scores))
        order = np.argsort(scores)[::-1]
        return order[:count]

    def top(self, count: int) -> List[Program]:
        """The ``count`` highest-scoring members, best first."""
        return [self.members[i] for i in self.top_indices(count)]

    def mean_score(self) -> float:
        """Average fitness of the population."""
        return float(self._require_scores().mean())

    def max_score(self) -> float:
        """Best fitness of the population."""
        return float(self._require_scores().max())

    def unique_fraction(self) -> float:
        """Fraction of genetically distinct members (a diversity measure)."""
        distinct = len({member.function_ids for member in self.members})
        return distinct / len(self.members)
