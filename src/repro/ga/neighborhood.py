"""Restricted local neighborhood search (Section 4.2.2, Algorithm 1).

When the GA's average fitness saturates, NetSyn takes the top-``N``
scoring genes and examines their 1-edit neighborhoods — every gene that
differs in exactly one position — looking for a program equivalent to the
target under the IO examples.  Two constructions are provided:

* **BFS** — the neighborhood of a gene is scanned breadth-first: every
  position, every alternative operation.
* **DFS** — positions are processed depth-first; after scanning one
  position the best-scoring neighbor replaces the gene before descending
  to the next position, so later positions are explored relative to the
  improved gene.

The complexity per gene is ``O(len(ζ) · |ΣDSL|)`` candidate programs,
each charged against the shared :class:`~repro.ga.budget.SearchBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.config import NeighborhoodConfig
from repro.dsl.equivalence import IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.execution import ExecutionEngine
from repro.fitness.base import FitnessFunction
from repro.ga.budget import SearchBudget


@dataclass
class NeighborhoodStats:
    """Counters describing the neighborhood searches performed so far."""

    invocations: int = 0
    candidates_examined: int = 0
    successes: int = 0


class NeighborhoodSearch:
    """BFS/DFS restricted local search around top-scoring genes."""

    def __init__(
        self,
        config: Optional[NeighborhoodConfig] = None,
        fitness: Optional[FitnessFunction] = None,
        registry: FunctionRegistry = REGISTRY,
        interpreter: Optional[Interpreter] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        self.config = config or NeighborhoodConfig()
        self.config.validate()
        self.fitness = fitness
        self.registry = registry
        self.interpreter = interpreter or Interpreter(trace=False)
        # Shared with the GA engine: neighbors the GA already executed
        # (or will execute) hit the same cache.  A default engine honors
        # the interpreter's execution mode.
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)
        self.stats = NeighborhoodStats()
        if self.config.strategy == "dfs" and fitness is None:
            raise ValueError("DFS neighborhood search requires a fitness function")

    # ------------------------------------------------------------------
    def should_trigger(self, average_fitness_history: Sequence[float]) -> bool:
        """Saturation test: mean fitness of the last ``w`` generations has
        not improved over the mean of all earlier generations."""
        window = self.config.window
        history = list(average_fitness_history)
        if len(history) < 2 * window:
            return False
        recent = float(np.mean(history[-window:]))
        earlier = float(np.mean(history[:-window]))
        return recent <= earlier

    # ------------------------------------------------------------------
    def search(
        self, top_genes: Sequence[Program], io_set: IOSet, budget: SearchBudget
    ) -> Optional[Program]:
        """Search the neighborhoods of ``top_genes`` for an exact solution."""
        self.stats.invocations += 1
        genes = list(top_genes)[: self.config.top_n]
        if self.config.strategy == "bfs":
            found = self._search_bfs(genes, io_set, budget)
        else:
            found = self._search_dfs(genes, io_set, budget)
        if found is not None:
            self.stats.successes += 1
        return found

    # ------------------------------------------------------------------
    def _neighbors_at(self, gene: Program, position: int) -> List[Program]:
        """All genes obtained by replacing ``position`` with a different op."""
        current = gene.function_ids[position]
        return [
            gene.with_replacement(position, fid)
            for fid in self.registry.ids
            if fid != current
        ]

    def _check(self, candidate: Program, io_set: IOSet, budget: SearchBudget) -> bool:
        if budget.exhausted:
            return False
        budget.charge(1)
        self.stats.candidates_examined += 1
        return self.executor.satisfies(candidate, io_set)

    def _prefetch_verdicts(
        self, candidates: Sequence[Program], io_set: IOSet, budget: SearchBudget
    ) -> Optional[List[bool]]:
        """Batch-verify the chargeable prefix of ``candidates`` up front.

        A neighborhood is the ideal columnar batch — every candidate
        shares its prefix with the gene it came from — so batch-capable
        executors check the whole sweep in one vectorized pass.  Only as
        many candidates as the budget still allows are verified: those
        are exactly the ones the serial loop would have executed, so
        cache contents and counters match the per-candidate path.
        """
        if not getattr(self.executor, "is_batch", False):
            return None
        chargeable = list(candidates)[: budget.remaining]
        if not chargeable:
            return []
        return self.executor.satisfies_batch(chargeable, io_set)

    def _verdict_at(
        self,
        verdicts: Optional[List[bool]],
        index: int,
        candidate: Program,
        io_set: IOSet,
        budget: SearchBudget,
    ) -> bool:
        """Charge one candidate, answering from the prefetched verdicts."""
        if budget.exhausted:
            return False
        budget.charge(1)
        self.stats.candidates_examined += 1
        if verdicts is not None and index < len(verdicts):
            return verdicts[index]
        return self.executor.satisfies(candidate, io_set)

    # ------------------------------------------------------------------
    def _search_bfs(
        self, genes: Sequence[Program], io_set: IOSet, budget: SearchBudget
    ) -> Optional[Program]:
        for gene in genes:
            candidates = [
                candidate
                for position in range(len(gene))
                for candidate in self._neighbors_at(gene, position)
            ]
            verdicts = self._prefetch_verdicts(candidates, io_set, budget)
            for index, candidate in enumerate(candidates):
                if budget.exhausted:
                    return None
                if self._verdict_at(verdicts, index, candidate, io_set, budget):
                    return candidate
        return None

    def _search_dfs(
        self, genes: Sequence[Program], io_set: IOSet, budget: SearchBudget
    ) -> Optional[Program]:
        for gene in genes:
            current = gene
            for position in range(len(current)):
                neighborhood = self._neighbors_at(current, position)
                verdicts = self._prefetch_verdicts(neighborhood, io_set, budget)
                for index, candidate in enumerate(neighborhood):
                    if budget.exhausted:
                        return None
                    if self._verdict_at(verdicts, index, candidate, io_set, budget):
                        return candidate
                # descend: adopt the best-scoring neighbor at this depth
                scores = self.fitness.score(neighborhood, io_set)
                best = int(np.argmax(scores))
                if scores[best] > self.fitness.score_one(current, io_set):
                    current = neighborhood[best]
        return None
