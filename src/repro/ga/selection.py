"""Roulette Wheel (fitness proportionate) selection (Goldberg, 1989)."""

from __future__ import annotations

from typing import Optional

import numpy as np


def roulette_wheel_probabilities(scores: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Selection probabilities proportional to (shifted) fitness scores.

    Scores may be negative or all equal; they are shifted so the minimum
    maps to a small positive baseline, which keeps every gene selectable
    while still favouring higher fitness.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    shifted = scores - scores.min()
    spread = shifted.max()
    if spread <= 0:
        return np.full(scores.size, 1.0 / scores.size)
    # baseline keeps the worst gene at a small but non-zero probability
    weights = (shifted / spread) ** (1.0 / temperature) + 1e-3
    return weights / weights.sum()


def roulette_wheel_indices(
    scores: np.ndarray,
    count: int,
    rng: np.random.Generator,
    temperature: float = 1.0,
    replace: bool = True,
) -> np.ndarray:
    """Select ``count`` indices with probability proportional to fitness."""
    if count < 0:
        raise ValueError("count must be non-negative")
    probabilities = roulette_wheel_probabilities(scores, temperature=temperature)
    return rng.choice(len(probabilities), size=count, replace=replace, p=probabilities)
