"""The genetic-algorithm evolution engine (Section 4.2).

One :class:`GeneticAlgorithm` instance runs one synthesis attempt: it
evolves a population of candidate programs under a fitness function until
a program equivalent to the target (under the IO examples) is found, the
candidate budget is exhausted, or the generation limit is reached.

Candidate accounting: every *newly created* gene — the initial random
population, crossover offspring and mutants — is charged against the
shared :class:`~repro.ga.budget.SearchBudget` and immediately checked
against the IO examples, so the reported "search space used" counts
candidate programs exactly as the paper's metric does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import GAConfig
from repro.dsl.equivalence import IOSet
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.events import ProgressEvent, ProgressListener
from repro.execution import ExecutionEngine
from repro.fitness.base import FitnessFunction
from repro.ga.budget import SearchBudget
from repro.ga.neighborhood import NeighborhoodSearch
from repro.ga.operators import GeneOperators
from repro.ga.population import Population
from repro.ga.selection import roulette_wheel_indices
from repro.utils.logging import get_logger

logger = get_logger("ga.engine")


@dataclass
class EvolutionResult:
    """Outcome of one GA synthesis attempt."""

    found: bool
    program: Optional[Program]
    generations: int
    candidates_used: int
    found_by: str = "none"  # "init", "ga", "ns" or "none"
    neighborhood_invocations: int = 0
    average_fitness_history: List[float] = field(default_factory=list)
    best_fitness_history: List[float] = field(default_factory=list)


class GeneticAlgorithm:
    """Evolves candidate programs under a (possibly learned) fitness function."""

    def __init__(
        self,
        fitness: FitnessFunction,
        operators: GeneOperators,
        config: Optional[GAConfig] = None,
        neighborhood: Optional[NeighborhoodSearch] = None,
        fp_guided_mutation: bool = False,
        rng: Optional[np.random.Generator] = None,
        interpreter: Optional[Interpreter] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        self.fitness = fitness
        self.operators = operators
        self.config = config or GAConfig()
        self.config.validate()
        self.neighborhood = neighborhood
        self.fp_guided_mutation = fp_guided_mutation
        self.rng = rng or np.random.default_rng(0)
        self.interpreter = interpreter or Interpreter(trace=False)
        # Shared execution engine: the solution check below and the fitness
        # scoring reuse one cached execution per (candidate, io_set).  A
        # default engine honors the interpreter's execution mode, so passing
        # a reference interpreter still yields reference semantics.
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)
        self._stats_base = (0, 0, 0, 0, 0)

    # ------------------------------------------------------------------
    def _cache_counters(self) -> tuple:
        """Combined (hits, misses, shared_hits, shared_cross_hits,
        remote_hits) of the executor and fitness caches — shared_* are
        the L2 tier's counters (always zero when no shared score table is
        attached) and remote_hits the L4 network tier's (zero offline)."""
        hits = self.executor.stats.hits
        misses = self.executor.stats.misses
        shared_hits = getattr(self.executor.stats, "shared_hits", 0)
        shared_cross = getattr(self.executor.stats, "shared_cross_hits", 0)
        remote_hits = getattr(self.executor.stats, "remote_hits", 0)
        for stats in self.fitness.cache_stats():
            hits += stats.hits
            misses += stats.misses
            shared_hits += getattr(stats, "shared_hits", 0)
            shared_cross += getattr(stats, "shared_cross_hits", 0)
            remote_hits += getattr(stats, "remote_hits", 0)
        return hits, misses, shared_hits, shared_cross, remote_hits

    # ------------------------------------------------------------------
    def _is_solution(self, candidate: Program, io_set: IOSet) -> bool:
        return self.executor.satisfies(candidate, io_set)

    def _charge_and_check(
        self, candidate: Program, io_set: IOSet, budget: SearchBudget
    ) -> Optional[bool]:
        """Charge one candidate; returns True if it solves the task, None if
        the budget was already exhausted."""
        if budget.exhausted:
            return None
        budget.charge(1)
        return self._is_solution(candidate, io_set)

    # ------------------------------------------------------------------
    def _emit_generation(
        self,
        listener: Optional[ProgressListener],
        kind: str,
        generation: int,
        budget: SearchBudget,
        avg_history: List[float],
        best_history: List[float],
    ) -> None:
        """Stream one per-generation observation to ``listener``.

        Emitted strictly between random draws (after scoring, before
        selection), so attaching a listener never perturbs a seeded run.
        Listener exceptions (notably ``JobCancelled``) propagate and
        abandon the search — these emission points are the engine's
        cooperative cancellation points, and they are what bounds how
        long a cancelled job keeps running: at most one generation (plus
        at most ``progress_every`` candidates to the next budget-hook
        event), locally and in worker processes alike.
        """
        if listener is None:
            return
        # Fold the fitness layer's own memo counters (score cache, sample
        # cache, probability maps) into the executor's, so the event's
        # cache_hit_rate reflects every memoization layer — reported as
        # deltas since run() started: the engine/score caches persist
        # across a backend's runs, and cumulative totals would drown the
        # current run's behaviour in previous runs' traffic.
        hits, misses, shared_hits, shared_cross, remote_hits = self._cache_counters()
        base_hits, base_misses, base_shared, base_cross, base_remote = self._stats_base
        hits -= base_hits
        misses -= base_misses
        shared_hits -= base_shared
        shared_cross -= base_cross
        remote_hits -= base_remote
        listener(
            ProgressEvent(
                kind=kind,
                generation=generation,
                mean_fitness=avg_history[-1] if avg_history else None,
                best_fitness=best_history[-1] if best_history else None,
                candidates_used=budget.used,
                budget_limit=budget.limit,
                cache_hits=hits,
                cache_misses=misses,
                cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
                shared_hits=shared_hits,
                shared_cross_hits=shared_cross,
                remote_hits=remote_hits,
                fused_dispatches=getattr(self.executor, "fused_dispatches", 0),
            )
        )

    # ------------------------------------------------------------------
    def run(
        self,
        io_set: IOSet,
        budget: SearchBudget,
        listener: Optional[ProgressListener] = None,
    ) -> EvolutionResult:
        """Run the evolutionary search for a program satisfying ``io_set``."""
        cfg = self.config
        avg_history: List[float] = []
        best_history: List[float] = []
        ns_cooldown = 0
        # baseline for per-run cache-counter deltas in progress events
        self._stats_base = self._cache_counters()

        # Batch-capable executors check candidates population-at-a-time:
        # candidates are created first (same rng draw order as the serial
        # path), then verified in one columnar pass, and the verdicts are
        # consumed in creation order with identical budget semantics —
        # found/generations/candidates_used match the serial path exactly.
        batch = getattr(self.executor, "is_batch", False)

        # -- initial population ------------------------------------------------
        members: List[Program] = []
        staged_genes: Optional[List[Program]] = None
        staged_verdicts: List[bool] = []
        if batch:
            staged_genes = [self.operators.random_gene() for _ in range(cfg.population_size)]
            chargeable = staged_genes[: budget.remaining]
            if chargeable:
                staged_verdicts = self.executor.satisfies_batch(chargeable, io_set)
        for k in range(cfg.population_size):
            if staged_genes is not None:
                gene = staged_genes[k]
                members.append(gene)
                if budget.exhausted:
                    verdict = None
                else:
                    budget.charge(1)
                    verdict = staged_verdicts[k]
            else:
                gene = self.operators.random_gene()
                members.append(gene)
                verdict = self._charge_and_check(gene, io_set, budget)
            if verdict:
                return EvolutionResult(
                    found=True,
                    program=gene,
                    generations=0,
                    candidates_used=budget.used,
                    found_by="init",
                    average_fitness_history=avg_history,
                    best_fitness_history=best_history,
                )
            if verdict is None:
                return EvolutionResult(
                    found=False,
                    program=None,
                    generations=0,
                    candidates_used=budget.used,
                    average_fitness_history=avg_history,
                    best_fitness_history=best_history,
                )
        population = Population(members)

        probability_map = (
            self.fitness.probability_map(io_set) if self.fp_guided_mutation else None
        )
        # Skip the per-mutation mutation_scores round-trip when the fitness
        # declares it always returns None (e.g. LearnedTraceFitness).
        use_mutation_scores = getattr(self.fitness, "provides_mutation_scores", False)

        # -- generations ---------------------------------------------------------
        for generation in range(1, cfg.max_generations + 1):
            population.set_scores(self.fitness.score(population.members, io_set))
            avg_history.append(population.mean_score())
            best_history.append(population.max_score())
            self._emit_generation(
                listener, "generation", generation, budget, avg_history, best_history
            )

            # neighborhood search on fitness saturation
            if (
                self.neighborhood is not None
                and ns_cooldown <= 0
                and self.neighborhood.should_trigger(avg_history)
            ):
                ns_cooldown = self.neighborhood.config.cooldown
                top = population.top(self.neighborhood.config.top_n)
                found = self.neighborhood.search(top, io_set, budget)
                self._emit_generation(
                    listener, "neighborhood", generation, budget, avg_history, best_history
                )
                if found is not None:
                    return EvolutionResult(
                        found=True,
                        program=found,
                        generations=generation,
                        candidates_used=budget.used,
                        found_by="ns",
                        neighborhood_invocations=self.neighborhood.stats.invocations,
                        average_fitness_history=avg_history,
                        best_fitness_history=best_history,
                    )
                if budget.exhausted:
                    break
            ns_cooldown -= 1

            # -- build the next generation ------------------------------------
            next_members: List[Program] = population.top(cfg.elite_count)
            scores = population.scores

            def spawn_child() -> Tuple[Program, bool]:
                """One selection draw: a (child, is_newly_created) pair."""
                draw = self.rng.random()
                if draw < cfg.crossover_rate:
                    parents = roulette_wheel_indices(scores, 2, self.rng)
                    child = self.operators.crossover(
                        population[int(parents[0])], population[int(parents[1])]
                    )
                    return child, True
                if draw < cfg.crossover_rate + cfg.mutation_rate:
                    parent = int(roulette_wheel_indices(scores, 1, self.rng)[0])
                    gene = population[parent]
                    position_scores = (
                        self.fitness.mutation_scores(gene, io_set) if use_mutation_scores else None
                    )
                    child = self.operators.mutate(
                        gene,
                        probability_map=probability_map,
                        position_scores=position_scores,
                    )
                    return child, True
                parent = int(roulette_wheel_indices(scores, 1, self.rng)[0])
                return population[parent], False

            # batch path: stage the whole brood (same draws, same order),
            # solution-check the chargeable newcomers in one columnar pass
            staged = None
            verdicts: List[bool] = []
            consumed = 0
            if batch:
                brood = [spawn_child() for _ in range(cfg.population_size - len(next_members))]
                fresh = [child for child, is_new in brood if is_new]
                chargeable = fresh[: budget.remaining]
                if chargeable:
                    verdicts = self.executor.satisfies_batch(chargeable, io_set)
                staged = iter(brood)
            while len(next_members) < cfg.population_size:
                child, is_new = next(staged) if staged is not None else spawn_child()
                if is_new:
                    if staged is not None:
                        if budget.exhausted:
                            verdict = None
                        else:
                            budget.charge(1)
                            verdict = verdicts[consumed]
                            consumed += 1
                    else:
                        verdict = self._charge_and_check(child, io_set, budget)
                    if verdict:
                        return EvolutionResult(
                            found=True,
                            program=child,
                            generations=generation,
                            candidates_used=budget.used,
                            found_by="ga",
                            neighborhood_invocations=(
                                self.neighborhood.stats.invocations if self.neighborhood else 0
                            ),
                            average_fitness_history=avg_history,
                            best_fitness_history=best_history,
                        )
                    if verdict is None:
                        return EvolutionResult(
                            found=False,
                            program=None,
                            generations=generation,
                            candidates_used=budget.used,
                            neighborhood_invocations=(
                                self.neighborhood.stats.invocations if self.neighborhood else 0
                            ),
                            average_fitness_history=avg_history,
                            best_fitness_history=best_history,
                        )
                next_members.append(child)

            population = Population(next_members)
            if budget.exhausted:
                break

        return EvolutionResult(
            found=False,
            program=None,
            generations=generation if cfg.max_generations else 0,
            candidates_used=budget.used,
            neighborhood_invocations=(
                self.neighborhood.stats.invocations if self.neighborhood else 0
            ),
            average_fitness_history=avg_history,
            best_fitness_history=best_history,
        )
