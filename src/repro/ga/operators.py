"""Genetic operators: random genes, crossover and mutation with DCE rejection.

All operators keep gene length fixed at the configured program length
``L`` and reject offspring containing dead code (Section 4.2: "If dead
code is present, we repeat crossover and mutation until a gene without
dead code is produced").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.dsl.dce import has_dead_code
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.program import Program
from repro.dsl.types import DSLType, LIST
from repro.utils.rng import ensure_rng


@dataclass
class GeneOperators:
    """Factory of random genes and genetic operators over them.

    Parameters
    ----------
    program_length:
        Fixed gene length ``L``.
    registry:
        DSL function registry (``ΣDSL``).
    rng:
        Random generator driving every stochastic choice.
    forbid_dead_code:
        Reject genes containing dead code (paper default).
    max_attempts:
        Bound on DCE rejection sampling; when exceeded the last candidate
        is returned even if it still contains dead code, so the GA cannot
        dead-lock on pathological inputs.
    """

    program_length: int
    registry: FunctionRegistry = field(default_factory=lambda: REGISTRY)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    forbid_dead_code: bool = True
    max_attempts: int = 50
    input_types: Tuple[DSLType, ...] = (LIST,)

    def __post_init__(self) -> None:
        if self.program_length <= 0:
            raise ValueError("program_length must be positive")
        self.rng = ensure_rng(self.rng)
        self._all_ids = np.array(self.registry.ids)

    # ------------------------------------------------------------------
    def _accept(self, program: Program) -> bool:
        return not (self.forbid_dead_code and has_dead_code(program, self.input_types))

    def random_gene(self) -> Program:
        """A uniformly random gene of length ``L`` without dead code."""
        for _ in range(self.max_attempts):
            ids = [int(fid) for fid in self.rng.choice(self._all_ids, size=self.program_length)]
            program = Program(ids, self.registry)
            if self._accept(program):
                return program
        return program

    def random_population(self, size: int) -> list:
        """``size`` independent random genes."""
        if size <= 0:
            raise ValueError("population size must be positive")
        return [self.random_gene() for _ in range(size)]

    # ------------------------------------------------------------------
    def crossover(self, parent_a: Program, parent_b: Program) -> Program:
        """Single-point crossover preserving gene length.

        A cut point is chosen uniformly; the child takes the prefix of
        ``parent_a`` and the suffix of ``parent_b``.  Offspring with dead
        code are rejected and the operation retried with fresh cut points.
        """
        if len(parent_a) != len(parent_b):
            raise ValueError("parents must have the same length")
        length = len(parent_a)
        child = parent_a
        for _ in range(self.max_attempts):
            cut = int(self.rng.integers(1, length)) if length > 1 else 0
            ids = parent_a.function_ids[:cut] + parent_b.function_ids[cut:]
            child = Program(ids, self.registry)
            if self._accept(child):
                return child
        return child

    # ------------------------------------------------------------------
    def mutate(
        self,
        gene: Program,
        probability_map: Optional[np.ndarray] = None,
        position_scores: Optional[np.ndarray] = None,
    ) -> Program:
        """Point mutation: replace one function with a different one.

        Parameters
        ----------
        gene:
            The gene to mutate.
        probability_map:
            Optional per-function probabilities (the learned FP map).  When
            given, the replacement function is drawn with Roulette Wheel
            probabilities proportional to the map (MutationFP); otherwise
            the replacement is uniform over ``ΣDSL \\ {current}``.
        position_scores:
            Optional per-position weights; higher means the position is
            more likely to be chosen as the mutation point.  Defaults to a
            uniform choice.
        """
        length = len(gene)
        if length == 0:
            raise ValueError("cannot mutate an empty gene")
        mutated = gene
        for _ in range(self.max_attempts):
            position = self._choose_position(length, position_scores)
            current = gene.function_ids[position]
            replacement = self._choose_replacement(current, probability_map)
            mutated = gene.with_replacement(position, replacement)
            if self._accept(mutated):
                return mutated
        return mutated

    # ------------------------------------------------------------------
    def _choose_position(self, length: int, position_scores: Optional[np.ndarray]) -> int:
        if position_scores is None:
            return int(self.rng.integers(0, length))
        weights = np.asarray(position_scores, dtype=np.float64)
        if weights.shape != (length,):
            raise ValueError("position_scores must have one entry per gene position")
        weights = weights - weights.min() + 1e-3
        weights = weights / weights.sum()
        return int(self.rng.choice(length, p=weights))

    def _choose_replacement(self, current: int, probability_map: Optional[np.ndarray]) -> int:
        ids = self._all_ids
        if probability_map is None:
            choice = current
            while choice == current:
                choice = int(self.rng.choice(ids))
            return choice
        weights = np.asarray(probability_map, dtype=np.float64).copy()
        if weights.shape != (len(ids),):
            raise ValueError("probability_map must have one entry per DSL function")
        weights = np.clip(weights, 0.0, None) + 1e-6
        weights[self.registry.index_of(current)] = 0.0
        total = weights.sum()
        if total <= 0:
            return self._choose_replacement(current, None)
        weights = weights / total
        index = int(self.rng.choice(len(ids), p=weights))
        return int(ids[index])
