"""Search-space accounting: the paper's implementation-independent metric.

Every synthesizer in this repository (NetSyn and all baselines) charges a
:class:`SearchBudget` once per *candidate program examined*.  When the
budget is exhausted the synthesizer stops and the run is reported as
"solution not found", exactly as in Section 5 ("maximum search space size
of 3,000,000 candidate programs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


class BudgetExhausted(Exception):
    """Raised internally when the candidate-program budget runs out."""


@dataclass
class SearchBudget:
    """Counts candidate programs examined against a hard limit.

    Attributes
    ----------
    limit:
        Maximum number of candidates that may be examined.
    used:
        Number of candidates charged so far.
    on_charge:
        Optional observer invoked (with this budget) after every
        successful :meth:`charge`.  Because *every* synthesizer in the
        repository charges candidates through here, this single hook
        gives the service layer a uniform "candidates consumed" progress
        stream — and a cancellation point — for all methods.  Observers
        must not mutate the budget; they may raise (e.g.
        :class:`repro.events.JobCancelled`) to abort the run.
    """

    limit: int
    used: int = 0
    on_charge: Optional[Callable[["SearchBudget"], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError("budget limit must be positive")
        if self.used < 0:
            raise ValueError("used must be non-negative")

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Candidates still allowed."""
        return max(0, self.limit - self.used)

    @property
    def exhausted(self) -> bool:
        """True when no further candidates may be examined."""
        return self.used >= self.limit

    @property
    def fraction_used(self) -> float:
        """Fraction of the budget consumed, in [0, 1]."""
        return min(1.0, self.used / self.limit)

    # ------------------------------------------------------------------
    def charge(self, count: int = 1, strict: bool = False) -> int:
        """Consume ``count`` candidates from the budget.

        Returns the number of candidates actually charged.  With
        ``strict=True`` a :class:`BudgetExhausted` is raised if fewer than
        ``count`` candidates remain (nothing is charged in that case).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if strict and count > self.remaining:
            raise BudgetExhausted(f"requested {count}, remaining {self.remaining}")
        charged = min(count, self.remaining) if not strict else count
        self.used += charged
        if charged and self.on_charge is not None:
            self.on_charge(self)
        return charged

    def reset(self) -> None:
        """Forget everything charged so far."""
        self.used = 0

    def copy(self) -> "SearchBudget":
        """An independent copy with the same limit and usage.

        The ``on_charge`` observer is deliberately not copied: it belongs
        to the run the original budget was issued for.
        """
        return SearchBudget(limit=self.limit, used=self.used)
