"""Search-space accounting: the paper's implementation-independent metric.

Every synthesizer in this repository (NetSyn and all baselines) charges a
:class:`SearchBudget` once per *candidate program examined*.  When the
budget is exhausted the synthesizer stops and the run is reported as
"solution not found", exactly as in Section 5 ("maximum search space size
of 3,000,000 candidate programs").
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BudgetExhausted(Exception):
    """Raised internally when the candidate-program budget runs out."""


@dataclass
class SearchBudget:
    """Counts candidate programs examined against a hard limit.

    Attributes
    ----------
    limit:
        Maximum number of candidates that may be examined.
    used:
        Number of candidates charged so far.
    """

    limit: int
    used: int = 0

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError("budget limit must be positive")
        if self.used < 0:
            raise ValueError("used must be non-negative")

    # ------------------------------------------------------------------
    @property
    def remaining(self) -> int:
        """Candidates still allowed."""
        return max(0, self.limit - self.used)

    @property
    def exhausted(self) -> bool:
        """True when no further candidates may be examined."""
        return self.used >= self.limit

    @property
    def fraction_used(self) -> float:
        """Fraction of the budget consumed, in [0, 1]."""
        return min(1.0, self.used / self.limit)

    # ------------------------------------------------------------------
    def charge(self, count: int = 1, strict: bool = False) -> int:
        """Consume ``count`` candidates from the budget.

        Returns the number of candidates actually charged.  With
        ``strict=True`` a :class:`BudgetExhausted` is raised if fewer than
        ``count`` candidates remain (nothing is charged in that case).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if strict and count > self.remaining:
            raise BudgetExhausted(f"requested {count}, remaining {self.remaining}")
        charged = min(count, self.remaining) if not strict else count
        self.used += charged
        return charged

    def reset(self) -> None:
        """Forget everything charged so far."""
        self.used = 0

    def copy(self) -> "SearchBudget":
        """An independent copy with the same limit and usage."""
        return SearchBudget(limit=self.limit, used=self.used)
