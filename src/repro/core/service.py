"""The synthesis service layer: sessions, jobs, progress streams.

The paper's pipeline is fit-once-serve-many: Phase 1 trains the neural
fitness models once, Phase 2 answers many synthesis requests against
them.  This module turns that shape into an explicit API:

``SynthesisService``
    Owns a :class:`~repro.config.NetSynConfig` and (optionally) a
    persistent artifact directory.  :meth:`SynthesisService.open_session`
    loads Phase-1 artifacts from disk when present, trains whatever is
    missing, persists the result, and returns a session.

``SynthesisSession``
    Holds the trained :class:`~repro.core.artifacts.ArtifactStore` and a
    cache of :class:`~repro.core.backend.SynthesisBackend` instances (one
    per method × program length).  :meth:`SynthesisSession.submit`
    enqueues a job; :meth:`SynthesisSession.run` executes pending jobs
    serially in submission order or fans them out over the existing
    :class:`~repro.evaluation.runner.ParallelTaskRunner` workers
    (records identical to a serial run — every job is explicitly seeded).

``SynthesisJob``
    One synthesis request with an observable lifecycle::

        PENDING -> RUNNING -> SOLVED | EXHAUSTED | FAILED | CANCELLED

    Jobs collect their :class:`~repro.events.ProgressEvent` stream and
    support cancellation: pending jobs cancel immediately; running jobs
    cancel cooperatively at the next progress event (the session's
    listener raises :class:`~repro.events.JobCancelled` inside the
    backend, which abandons the search).

Seeded runs through this layer are bit-identical to the deprecated
``NetSyn.synthesize()`` path (tested in ``tests/test_service.py``).
"""

from __future__ import annotations

import atexit
import enum
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import NetSynConfig, ServiceConfig
from repro.core.artifacts import ArtifactStore
from repro.core.backend import SynthesisBackend
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.events import JobCancelled, ProgressEvent, ProgressListener
from repro.ga.budget import SearchBudget
from repro.utils.logging import get_logger

logger = get_logger("core.service")


class JobState(str, enum.Enum):
    """Lifecycle of a :class:`SynthesisJob`."""

    PENDING = "pending"
    RUNNING = "running"
    SOLVED = "solved"
    EXHAUSTED = "exhausted"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.SOLVED,
            JobState.EXHAUSTED,
            JobState.FAILED,
            JobState.CANCELLED,
        )


@dataclass
class SynthesisJob:
    """One submitted synthesis request and its observable state."""

    job_id: str
    method: str
    task: SynthesisTask
    seed: int
    budget_limit: int
    program_length: Optional[int] = None
    state: JobState = JobState.PENDING
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    events: List[ProgressEvent] = field(default_factory=list)
    _cancel_requested: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        """Request cancellation.

        Pending jobs flip to ``CANCELLED`` immediately; running jobs are
        cancelled cooperatively at their next progress event.  Returns
        False when the job already reached a terminal state.
        """
        if self.state is JobState.PENDING:
            self.state = JobState.CANCELLED
            return True
        if self.state is JobState.RUNNING:
            self._cancel_requested = True
            return True
        return False

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "method": self.method,
            "task_id": self.task.task_id,
            "seed": self.seed,
            "budget_limit": self.budget_limit,
            "state": self.state.value,
            "error": self.error,
            "result": self.result.to_dict() if self.result is not None else None,
            "n_events": len(self.events),
        }


#: picklable description of one job for the parallel workers
_ServiceJobSpec = Tuple[str, Optional[int], SynthesisTask, int, int]

_WORKER_BACKENDS: Dict[Any, Any] = {}

#: per-process memo of attached shared stores, keyed by (directory, token)
#: — the token changes whenever the segment is re-packed, so a process
#: that re-resolves the same directory after a retrain re-attaches
#: instead of serving memmap views laid out for the old file
_ATTACHED_STORES: Dict[Tuple[str, str], ArtifactStore] = {}


def _segment_token(directory: str) -> str:
    """Identity of the packed segment currently on disk (mtime + size)."""
    from repro.core.artifacts import SHARED_WEIGHTS_BIN

    try:
        stat = (Path(directory) / SHARED_WEIGHTS_BIN).stat()
        return f"{stat.st_mtime_ns}:{stat.st_size}"
    except OSError:
        return "missing"

#: name of the pickled cache snapshot inside a shared segment directory
_CACHE_SNAPSHOT = "cache_snapshot.pkl"


@dataclass
class SharedWorkerPayload:
    """What crosses the process boundary under shared-memory serving.

    Instead of pickling every trained model into every worker, the parent
    ships this tiny descriptor; :meth:`resolve_in_worker` (called once
    per worker by the pool initializer) attaches the packed weight
    segment via ``np.memmap`` — so all workers alias one set of physical
    pages — and loads the optional warm-cache snapshot.
    """

    directory: str
    config: NetSynConfig
    names: Tuple[str, ...] = ()
    snapshot_file: Optional[str] = None
    #: identity of the packed segment (set by the parent at pack time);
    #: part of the attach-memo key so a re-packed segment re-attaches
    token: str = ""
    #: per-process memo of the loaded snapshot file (not part of the
    #: pickled payload; populated lazily by :meth:`cache_snapshots`)
    _loaded_snapshots: Optional[Dict[str, dict]] = field(
        default=None, repr=False, compare=False
    )

    def resolve_in_worker(self) -> "SharedWorkerPayload":
        """Attach the shared store (memoized per process) and return self."""
        key = (self.directory, self.token)
        if key not in _ATTACHED_STORES:
            _ATTACHED_STORES[key] = ArtifactStore.attach_shared(
                self.directory, names=self.names or None
            )
        return self

    @property
    def store(self) -> ArtifactStore:
        key = (self.directory, self.token)
        if key not in _ATTACHED_STORES:
            self.resolve_in_worker()
        return _ATTACHED_STORES[key]

    def cache_snapshots(self) -> Dict[str, dict]:
        """The warm-cache snapshot shipped with the segment (may be empty).

        Loaded lazily and memoized on the payload instance — the instance
        lives for the whole worker process, so the pickle is read once
        per worker, not once per job.
        """
        if not self.snapshot_file:
            return {}
        if self._loaded_snapshots is None:
            try:
                with open(self.snapshot_file, "rb") as handle:
                    self._loaded_snapshots = pickle.load(handle)
            except (OSError, pickle.PickleError):  # pragma: no cover - defensive
                self._loaded_snapshots = {}
        return self._loaded_snapshots


def _unpack_payload(payload: Any) -> Tuple[ArtifactStore, NetSynConfig, Dict[str, dict]]:
    """Store/config/snapshots from either payload shape (tuple or shared)."""
    if hasattr(payload, "raise_"):  # PayloadResolutionError from the initializer
        payload.raise_()
    if isinstance(payload, SharedWorkerPayload):
        return payload.store, payload.config, payload.cache_snapshots()
    store, config = payload
    return store, config, {}


def _run_service_job(spec: _ServiceJobSpec) -> Tuple[Optional[SynthesisResult], Optional[str]]:
    """Execute one job in a worker process (or serially as a fallback).

    Backends are built lazily per worker and cached per (method, length),
    mirroring the session's own backend cache, so parallel results are
    byte-identical to serial ones — seeds travel with the spec, never
    with the worker.  Returns ``(result, None)`` on success and
    ``(None, error)`` on failure, so one broken job cannot take down the
    whole pool map (matching the serial path's per-job isolation).
    """
    from repro.baselines.registry import build_backend
    from repro.evaluation.runner import worker_payload

    method, length, task, seed, budget_limit = spec
    try:
        store, config, snapshots = _unpack_payload(worker_payload())
        if _WORKER_BACKENDS.get("__store__") is not store:
            _WORKER_BACKENDS.clear()
            _WORKER_BACKENDS["__store__"] = store
        key = (method, length)
        backend = _WORKER_BACKENDS.get(key)
        if backend is None:
            backend = build_backend(method, store, config, program_length=length)
            snapshot = snapshots.get(f"{method}:{length}")
            if snapshot and hasattr(backend, "load_cache_snapshot"):
                backend.load_cache_snapshot(snapshot)
            _WORKER_BACKENDS[key] = backend
        result = backend.solve(task, budget=SearchBudget(limit=budget_limit), seed=seed)
    except Exception as error:  # noqa: BLE001 - job isolation boundary
        return None, f"{type(error).__name__}: {error}"
    return result, None


class SynthesisSession:
    """A warm set of Phase-1 artifacts serving many synthesis jobs."""

    def __init__(
        self,
        config: NetSynConfig,
        store: ArtifactStore,
        methods: Sequence[str],
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.methods = tuple(methods)
        self.service_config = service_config or ServiceConfig()
        self.jobs: List[SynthesisJob] = []
        self._backends: Dict[Tuple[str, Optional[int]], SynthesisBackend] = {}
        self._listeners: List[ProgressListener] = []
        self._next_job_number = 0
        self._shared_dir: Optional[Path] = None
        self._shared_packed = False

    # ------------------------------------------------------------------
    def add_listener(self, listener: ProgressListener) -> None:
        """Attach a session-wide progress-event consumer."""
        self._listeners.append(listener)

    def backend(self, method: str, program_length: Optional[int] = None) -> SynthesisBackend:
        """The cached backend for ``method`` (built and bound on first use)."""
        from repro.baselines.registry import build_backend

        key = (method, program_length)
        backend = self._backends.get(key)
        if backend is None:
            backend = build_backend(
                method, self.store, self.config, program_length=program_length
            )
            backend.progress_every = self.service_config.progress_every
            self._backends[key] = backend
        return backend

    # ------------------------------------------------------------------
    def submit(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[SearchBudget, int, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
    ) -> SynthesisJob:
        """Enqueue one synthesis job (state ``PENDING``).

        ``budget`` may be a candidate count or a ``SearchBudget``; it
        defaults to the configuration's ``max_search_space``.  Jobs run
        when :meth:`run` is called (or :meth:`run_job` for one job).
        """
        method = method or self.methods[0]
        if method not in self.methods:
            raise KeyError(
                f"method {method!r} is not part of this session; opened with {self.methods}"
            )
        if isinstance(budget, SearchBudget):
            limit = budget.limit
        elif budget is None:
            limit = self.config.max_search_space
        else:
            limit = int(budget)
        self._next_job_number += 1
        job = SynthesisJob(
            job_id=f"job-{self._next_job_number}",
            method=method,
            task=task,
            seed=seed,
            budget_limit=limit,
            program_length=program_length,
        )
        self.jobs.append(job)
        return job

    # ------------------------------------------------------------------
    def _job_listener(self, job: SynthesisJob) -> ProgressListener:
        """Record events on the job, fan out to session listeners, and
        honor cooperative cancellation."""

        max_events = self.service_config.max_events_per_job

        def listener(event: ProgressEvent) -> None:
            event.job_id = job.job_id
            job.events.append(event)
            if len(job.events) > max_events:  # keep the most recent events
                del job.events[0]
            for session_listener in self._listeners:
                session_listener(event)
            # honor cancellation at every event except "finished": by then
            # the result exists, and discarding it would waste the run
            if job._cancel_requested and event.kind != "finished":
                raise JobCancelled(job.job_id)

        return listener

    def run_job(self, job: SynthesisJob) -> SynthesisJob:
        """Execute one pending job to a terminal state (serial path)."""
        if job.state is not JobState.PENDING:
            return job
        job.state = JobState.RUNNING
        budget = SearchBudget(limit=job.budget_limit)
        try:
            result = self.backend(job.method, job.program_length).solve(
                job.task, budget=budget, seed=job.seed, listener=self._job_listener(job)
            )
        except JobCancelled:
            job.state = JobState.CANCELLED
            logger.info("job %s cancelled after %d candidates", job.job_id, budget.used)
            return job
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job.state = JobState.FAILED
            job.error = f"{type(error).__name__}: {error}"
            logger.warning("job %s failed: %s", job.job_id, job.error)
            return job
        self._finish(job, result)
        return job

    def _finish(self, job: SynthesisJob, result: SynthesisResult) -> None:
        job.result = result
        job.state = JobState.SOLVED if result.found else JobState.EXHAUSTED

    # ------------------------------------------------------------------
    def _shared_directory(self) -> Path:
        """The directory holding the shared weight segment for workers."""
        if self._shared_dir is None:
            configured = self.service_config.shared_dir or self.service_config.artifact_dir
            if configured:
                self._shared_dir = Path(configured)
            else:
                self._shared_dir = Path(tempfile.mkdtemp(prefix="netsyn-shared-"))
                atexit.register(shutil.rmtree, str(self._shared_dir), ignore_errors=True)
        return self._shared_dir

    def _worker_payload(self) -> Any:
        """Build the cross-process payload for a parallel run.

        With ``shared_weights`` the trained models are persisted once
        (``weights.npz``), packed into a flat mmap-able segment, and only
        a path descriptor crosses the process boundary — each worker
        attaches the segment read-only instead of unpickling its own
        model copies.  ``share_worker_caches`` additionally snapshots the
        session backends' score/evaluation caches (structural keys are
        process-stable) so workers start warm.  Falls back to pickling
        ``(store, config)`` when shared serving is disabled.
        """
        if not self.service_config.shared_weights or not self.store.names():
            # nothing trained to share (e.g. an artifact-free edit/oracle
            # session): ship the store directly, it is empty or tiny
            return (self.store, self.config)
        directory = self._shared_directory()
        if not self._shared_packed:
            self.store.save(directory)
            self.store.pack_shared(directory)
            self._shared_packed = True
        snapshot_file = None
        if self.service_config.share_worker_caches:
            snapshots = {
                f"{method}:{length}": snapshot
                for (method, length), backend in self._backends.items()
                for snapshot in [getattr(backend, "cache_snapshot", lambda: None)()]
                if snapshot
            }
            if snapshots:
                path = directory / _CACHE_SNAPSHOT
                with path.open("wb") as handle:
                    pickle.dump(snapshots, handle)
                snapshot_file = str(path)
        return SharedWorkerPayload(
            directory=str(directory),
            config=self.config,
            names=self.store.names(),
            snapshot_file=snapshot_file,
            token=_segment_token(str(directory)),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Optional[Sequence[SynthesisJob]] = None,
        n_workers: Optional[int] = None,
    ) -> List[SynthesisJob]:
        """Execute pending jobs, serially (in submission order) or in parallel.

        With ``n_workers > 1`` the pending jobs fan out over
        ``ParallelTaskRunner`` worker processes; results (and the order of
        the returned list) are identical to a serial run.  Per-candidate
        progress streaming does not cross process boundaries, so parallel
        jobs carry only their terminal ``"finished"`` event.
        """
        pending = [j for j in (jobs if jobs is not None else self.jobs) if j.state is JobState.PENDING]
        n_workers = self.service_config.n_workers if n_workers is None else int(n_workers)
        if n_workers > 1 and len(pending) > 1:
            from repro.evaluation.runner import ParallelTaskRunner

            specs: List[_ServiceJobSpec] = [
                (job.method, job.program_length, job.task, job.seed, job.budget_limit)
                for job in pending
            ]
            for job in pending:
                job.state = JobState.RUNNING
            runner = ParallelTaskRunner(
                n_workers=n_workers,
                seed=self.config.seed,
                payload=self._worker_payload(),
            )
            for job, (result, error) in zip(pending, runner.map(_run_service_job, specs)):
                if result is None:
                    job.state = JobState.FAILED
                    job.error = error
                    logger.warning("job %s failed: %s", job.job_id, job.error)
                    continue
                self._finish(job, result)
                listener = self._job_listener(job)
                listener(
                    ProgressEvent(
                        kind="finished",
                        method=job.method,
                        task_id=job.task.task_id,
                        candidates_used=result.candidates_used,
                        budget_limit=result.budget_limit,
                        found=result.found,
                        found_by=result.found_by,
                    )
                )
            return pending
        for job in pending:
            self.run_job(job)
        return pending

    # ------------------------------------------------------------------
    def solve(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[SearchBudget, int, None] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
    ) -> SynthesisResult:
        """Submit-and-run convenience for interactive use.

        Raises the job's error (or :class:`~repro.events.JobCancelled`)
        instead of returning a failed job, so callers get either a
        result or an exception.
        """
        job = self.submit(task, method=method, budget=budget, seed=seed)
        if listener is not None:
            self.add_listener(listener)
            try:
                self.run_job(job)
            finally:
                self._listeners.remove(listener)
        else:
            self.run_job(job)
        if job.state is JobState.FAILED:
            raise RuntimeError(f"synthesis job failed: {job.error}")
        if job.state is JobState.CANCELLED:
            raise JobCancelled(job.job_id)
        assert job.result is not None
        return job.result

    def save_artifacts(self, directory) -> None:
        """Persist this session's trained artifacts for later warm starts."""
        self.store.save(directory)


class SynthesisService:
    """Entry point: opens warm-startable sessions over trained artifacts."""

    def __init__(
        self,
        config: Optional[NetSynConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        verbose: bool = False,
    ) -> None:
        self.config = config or NetSynConfig()
        self.config.validate()
        self.service_config = service_config or ServiceConfig()
        self.service_config.validate()
        self.verbose = verbose

    # ------------------------------------------------------------------
    def open_session(
        self,
        methods: Sequence[str] = ("netsyn_cf",),
        store: Optional[ArtifactStore] = None,
    ) -> SynthesisSession:
        """Load-or-train the Phase-1 artifacts for ``methods`` and return a
        session serving them.

        With a configured ``artifact_dir``, previously saved artifacts are
        loaded instead of retrained (warm start) and newly trained ones
        are persisted, so a second process opens the same session without
        paying for Phase 1 again.
        """
        from repro.baselines.registry import ensure_artifacts, required_artifacts

        service_config = self.service_config
        needed = sorted(required_artifacts(methods))
        if store is None:
            store = ArtifactStore()
            if (
                service_config.artifact_dir
                and service_config.warm_start
                and ArtifactStore.saved_at(service_config.artifact_dir)
            ):
                store = ArtifactStore.load(service_config.artifact_dir, names=needed)
                logger.info(
                    "warm start: loaded %s from %s", store.names(), service_config.artifact_dir
                )
        missing = store.missing(needed)
        ensure_artifacts(store, self.config, methods=methods, verbose=self.verbose)
        if service_config.artifact_dir and service_config.save_artifacts and missing:
            store.save(service_config.artifact_dir)
            logger.info("saved artifacts %s to %s", store.names(), service_config.artifact_dir)
        return SynthesisSession(
            self.config, store, methods=methods, service_config=service_config
        )
