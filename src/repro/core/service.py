"""The synthesis service layer: sessions, jobs, progress streams.

The paper's pipeline is fit-once-serve-many: Phase 1 trains the neural
fitness models once, Phase 2 answers many synthesis requests against
them.  This module turns that shape into an explicit API:

``SynthesisService``
    Owns a :class:`~repro.config.NetSynConfig` and (optionally) a
    persistent artifact directory.  :meth:`SynthesisService.open_session`
    loads Phase-1 artifacts from disk when present, trains whatever is
    missing, persists the result, and returns a session.

``SynthesisSession``
    Holds the trained :class:`~repro.core.artifacts.ArtifactStore` and a
    cache of :class:`~repro.core.backend.SynthesisBackend` instances (one
    per method × program length).  :meth:`SynthesisSession.submit`
    enqueues a job; :meth:`SynthesisSession.run` executes pending jobs
    serially in submission order or fans them out over the existing
    :class:`~repro.evaluation.runner.ParallelTaskRunner` workers
    (records identical to a serial run — every job is explicitly seeded).
    Parallel workers stream their per-generation events back through a
    multiprocessing queue drained live by a pump thread, merge the cache
    entries they computed back into the session when each job completes,
    and — with a configured ``artifact_dir`` — the session persists those
    caches next to the artifacts (keyed by model hash) so a re-opened
    session starts warm in a later process.

``SynthesisJob``
    One synthesis request with an observable lifecycle::

        PENDING -> RUNNING -> SOLVED | EXHAUSTED | FAILED | CANCELLED

    Jobs collect their :class:`~repro.events.ProgressEvent` stream and
    support cancellation: pending jobs cancel immediately; running jobs
    cancel cooperatively at the next progress event — locally by the
    session's listener raising :class:`~repro.events.JobCancelled`
    inside the backend, remotely through a shared cancellation flag the
    worker polls at every event it emits.

Seeded runs through this layer are bit-identical to the deprecated
``NetSyn.synthesize()`` path (tested in ``tests/test_service.py``).
"""

from __future__ import annotations

import atexit
import enum
import multiprocessing
import pickle
import re
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import NetSynConfig, ServiceConfig
from repro.core.artifacts import ArtifactStore
from repro.core.backend import SynthesisBackend
from repro.core.result import SynthesisResult
from repro.core.supervisor import FailureReport, WorkerSupervisor
from repro.data.tasks import SynthesisTask
from repro.events import JobCancelled, ProgressEvent, ProgressListener
from repro.execution import FusionPlane, faults, io_set_key
from repro.execution.fusion import inputs_key
from repro.ga.budget import SearchBudget
from repro.utils.logging import get_logger

logger = get_logger("core.service")


class JobState(str, enum.Enum):
    """Lifecycle of a :class:`SynthesisJob`."""

    PENDING = "pending"
    RUNNING = "running"
    SOLVED = "solved"
    EXHAUSTED = "exhausted"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.SOLVED,
            JobState.EXHAUSTED,
            JobState.FAILED,
            JobState.CANCELLED,
        )


@dataclass
class SynthesisJob:
    """One submitted synthesis request and its observable state."""

    job_id: str
    method: str
    task: SynthesisTask
    seed: int
    budget_limit: int
    program_length: Optional[int] = None
    state: JobState = JobState.PENDING
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    #: structured post-mortem when the supervisor gave up on the job
    #: (worker crashes exhausted retries, deadline exceeded); plain
    #: errors raised inside the job only set ``error``
    failure: Optional[FailureReport] = None
    events: List[ProgressEvent] = field(default_factory=list)
    _cancel_requested: bool = field(default=False, repr=False)
    #: set by the session while this job runs remotely: raises the job's
    #: shared cancellation flag so the worker observes the request live
    _remote_cancel: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        """Request cancellation (idempotent, safe at any lifecycle point).

        Pending jobs flip to ``CANCELLED`` immediately; running jobs are
        cancelled cooperatively at their next progress event — including
        jobs running in a worker process, where the request travels
        through a shared cancellation flag the worker polls on every
        event it emits.

        A cancel that arrives after the job reached a terminal state —
        the normal case for remote cancels, which can cross the wire
        after the job already settled — is a strict no-op: the terminal
        state is left exactly as it is (observable via ``state``) and no
        flag is raised.  It returns True when the job is (or just
        became) ``CANCELLED``, so repeating a cancel reports the same
        answer as the call that won; cancels landing on any other
        terminal state return False.
        """
        if self.state.terminal:
            return self.state is JobState.CANCELLED
        if self.state is JobState.PENDING:
            self.state = JobState.CANCELLED
            # also raise the flag: a cancel racing the PENDING->RUNNING
            # transition (the runner has read PENDING but not yet flipped
            # the state) must be seen by the runner's post-flip re-check,
            # or the job would run to completion after reporting success
            self._cancel_requested = True
            return True
        self._cancel_requested = True
        # capture once: the runner clears _remote_cancel when the job
        # settles, and a remote cancel racing that settle must not call
        # through a reference that just became None
        remote_cancel = self._remote_cancel
        if remote_cancel is not None:
            remote_cancel()
        return True

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "method": self.method,
            "task_id": self.task.task_id,
            "seed": self.seed,
            "budget_limit": self.budget_limit,
            "state": self.state.value,
            "error": self.error,
            "failure": self.failure.to_dict() if self.failure is not None else None,
            "result": self.result.to_dict() if self.result is not None else None,
            "n_events": len(self.events),
        }


#: picklable description of one job for the parallel workers:
#: (job_index, job_id, method, program_length, task, seed, budget_limit,
#:  progress_every, event_batch_size)
_ServiceJobSpec = Tuple[int, str, str, Optional[int], SynthesisTask, int, int, int, int]

#: what a worker returns per job:
#: (status, result, error, n_events_emitted, cache_delta)
_ServiceJobOutcome = Tuple[str, Optional[SynthesisResult], Optional[str], int, Optional[dict]]

_WORKER_BACKENDS: Dict[Any, Any] = {}

#: per-process memo of attached shared stores, keyed by (directory, token)
#: — the token changes whenever the segment is re-packed, so a process
#: that re-resolves the same directory after a retrain re-attaches
#: instead of serving memmap views laid out for the old file
_ATTACHED_STORES: Dict[Tuple[str, str], ArtifactStore] = {}

#: per-process memo of attached L2 shared score tables, keyed by
#: (path, file identity) — a table recreated for new weights (new inode)
#: re-attaches instead of being served through a stale mapping
_ATTACHED_TABLES: Dict[Tuple[str, str], Any] = {}


def _attach_score_table(path: Optional[str]) -> Any:
    """Attach (memoized per process) the shared score table at ``path``."""
    if not path:
        return None
    try:
        stat = Path(path).stat()
        identity = f"{stat.st_ino}:{stat.st_size}"
    except OSError:
        identity = "missing"
    key = (path, identity)
    if key not in _ATTACHED_TABLES:
        from repro.execution.shared_table import SharedScoreTable

        try:
            faults.fire("table_attach", target=path, path=path)
            _ATTACHED_TABLES[key] = SharedScoreTable.attach(path)
        except (OSError, ValueError) as error:
            # missing/short/torn table file: degrade this process to
            # L1-only caching instead of failing its jobs
            logger.warning("could not attach shared score table %s: %s", path, error)
            _ATTACHED_TABLES[key] = None
    return _ATTACHED_TABLES[key]


def _segment_token(directory: str) -> str:
    """Identity of the packed segment currently on disk (mtime + size)."""
    from repro.core.artifacts import SHARED_WEIGHTS_BIN

    try:
        stat = (Path(directory) / SHARED_WEIGHTS_BIN).stat()
        return f"{stat.st_mtime_ns}:{stat.st_size}"
    except OSError:
        return "missing"

#: name of the pickled cache snapshot inside a shared segment directory
_CACHE_SNAPSHOT = "cache_snapshot.pkl"


def _snapshot_key(method: str, program_length: Optional[int]) -> str:
    """The key one backend's caches live under in snapshot dicts.

    Shared by the worker warm-start payload, the merge-back path and the
    persisted cross-session snapshots, so all three speak one format.
    """
    return f"{method}:{program_length}"


@dataclass
class SharedWorkerPayload:
    """What crosses the process boundary under shared-memory serving.

    Instead of pickling every trained model into every worker, the parent
    ships this tiny descriptor; :meth:`resolve_in_worker` (called once
    per worker by the pool initializer) attaches the packed weight
    segment via ``np.memmap`` — so all workers alias one set of physical
    pages — and loads the optional warm-cache snapshot.
    """

    directory: str
    config: NetSynConfig
    names: Tuple[str, ...] = ()
    snapshot_file: Optional[str] = None
    #: path of the L2 shared mmap score table (None = L2 disabled);
    #: workers attach it once per process and hand it to their backends
    score_table_file: Optional[str] = None
    #: identity of the packed segment (set by the parent at pack time);
    #: part of the attach-memo key so a re-packed segment re-attaches
    token: str = ""
    #: per-process memo of the loaded snapshot file (not part of the
    #: pickled payload; populated lazily by :meth:`cache_snapshots`)
    _loaded_snapshots: Optional[Dict[str, dict]] = field(
        default=None, repr=False, compare=False
    )

    def resolve_in_worker(self) -> "SharedWorkerPayload":
        """Attach the shared store (memoized per process) and return self.

        A missing or torn shared-weight segment (e.g. deleted between
        pack and worker start, or truncated by a crashed packer) does not
        fail the worker: it falls back to loading the per-artifact
        ``.npz`` copies the parent saved next to the segment — slower,
        private pages, same numbers.
        """
        key = (self.directory, self.token)
        if key not in _ATTACHED_STORES:
            try:
                _ATTACHED_STORES[key] = ArtifactStore.attach_shared(
                    self.directory, names=self.names or None
                )
            except (OSError, ValueError, KeyError) as error:
                logger.warning(
                    "shared-weight attach failed in worker (%s); "
                    "falling back to private npz copies from %s",
                    error, self.directory,
                )
                _ATTACHED_STORES[key] = ArtifactStore.load(
                    self.directory, names=self.names or None
                )
        _attach_score_table(self.score_table_file)
        return self

    @property
    def score_table(self) -> Any:
        """This process's handle on the L2 table (None when disabled)."""
        return _attach_score_table(self.score_table_file)

    @property
    def store(self) -> ArtifactStore:
        key = (self.directory, self.token)
        if key not in _ATTACHED_STORES:
            self.resolve_in_worker()
        return _ATTACHED_STORES[key]

    def cache_snapshots(self) -> Dict[str, dict]:
        """The warm-cache snapshot shipped with the segment (may be empty).

        Loaded lazily and memoized on the payload instance — the instance
        lives for the whole worker process, so the pickle is read once
        per worker, not once per job.
        """
        if not self.snapshot_file:
            return {}
        if self._loaded_snapshots is None:
            try:
                with open(self.snapshot_file, "rb") as handle:
                    self._loaded_snapshots = pickle.load(handle)
            except (OSError, pickle.PickleError):  # pragma: no cover - defensive
                self._loaded_snapshots = {}
        return self._loaded_snapshots


class _FlagRaiser:
    """Raises one slot of a shared cancellation-flag array (parent side)."""

    def __init__(self, flags: Any, index: int) -> None:
        self._flags = flags
        self._index = index

    def __call__(self) -> None:
        self._flags[self._index] = 1


def _unpack_payload(payload: Any) -> Tuple[ArtifactStore, NetSynConfig, Dict[str, dict]]:
    """Store/config/snapshots from either payload shape (tuple or shared)."""
    if hasattr(payload, "raise_"):  # PayloadResolutionError from the initializer
        payload.raise_()
    if isinstance(payload, SharedWorkerPayload):
        return payload.store, payload.config, payload.cache_snapshots()
    store, config = payload
    return store, config, {}


class _EventEmitter:
    """Streams one job's events to the parent's pump (the worker side).

    Every event is enriched with the job id and streamed to the parent's
    pump thread through ``queue`` *before* the cancellation flag is
    polled, so the event that triggered a cancellation is observed by the
    parent exactly as it is on the serial path.  ``"finished"`` events
    never cancel (mirroring the serial listener: by then the result
    exists and discarding it would waste the run).

    With ``batch_size > 1`` events are coalesced into one
    ``queue.put_many``-style put of a list (the queue-backpressure
    fallback: one pickle + one lock round-trip per batch instead of per
    event).  The buffer is flushed when full, when an event arrives more
    than ``flush_interval`` after the previous flush (the check runs at
    emission time — there is no timer thread, so a buffered event can
    wait out at most one silent generation), before a cancellation is
    raised, and at job end (:meth:`flush` in the worker's ``finally``) —
    per-job stream order and completeness are identical to the unbatched
    path.
    """

    def __init__(
        self,
        job_index: int,
        job_id: str,
        queue: Any,
        flags: Any,
        batch_size: int = 1,
        flush_interval: float = 0.05,
    ) -> None:
        self.job_index = job_index
        self.job_id = job_id
        self.queue = queue
        self.flags = flags
        self.batch_size = max(1, int(batch_size))
        self.flush_interval = flush_interval
        self.emitted = 0
        self._buffer: List[ProgressEvent] = []
        self._last_flush = time.monotonic()

    def _put(self, item: Any, count: int) -> None:
        """One guarded queue put; a broken event pipe disables streaming.

        ``emitted`` counts only events that actually reached the queue —
        it is the exact number the parent's settle phase waits for, so a
        mid-job streaming failure must not inflate it.  The job itself
        keeps running: losing observability is strictly better than
        losing the result.
        """
        if self.queue is None:
            return
        try:
            faults.fire("event_put", target=self.job_id)
            self.queue.put(item)
            self.emitted += count
        except OSError as error:
            logger.warning(
                "event stream broken for %s (%s); job continues unstreamed",
                self.job_id, error,
            )
            self.queue = None
            self._buffer = []

    def flush(self) -> None:
        """Put the coalesced buffer on the queue (no-op when empty)."""
        if self._buffer:
            buffer, self._buffer = self._buffer, []
            self._put((self.job_index, buffer), len(buffer))
        self._last_flush = time.monotonic()

    def __call__(self, event: ProgressEvent) -> None:
        event.job_id = self.job_id
        if self.queue is not None:
            if self.batch_size <= 1:
                self._put((self.job_index, event), 1)
            else:
                self._buffer.append(event)
                if (
                    len(self._buffer) >= self.batch_size
                    or time.monotonic() - self._last_flush >= self.flush_interval
                ):
                    self.flush()
        if (
            self.flags is not None
            and self.flags[self.job_index]
            and event.kind != "finished"
        ):
            if self.queue is not None:
                self.flush()
            raise JobCancelled(self.job_id)


def _run_service_job(spec: _ServiceJobSpec) -> _ServiceJobOutcome:
    """Execute one job in a worker process (or serially as a fallback).

    Backends are built lazily per worker and cached per (method, length),
    mirroring the session's own backend cache, so parallel results are
    byte-identical to serial ones — seeds travel with the spec, never
    with the worker.  Progress events stream back through the runner's
    event queue, the shared cancellation flag is honored both before the
    job starts and at every emitted event, and cache entries added by
    the job (NN-score and evaluation memos) are returned as a snapshot
    delta for the parent to merge.  Failures are returned, not raised,
    so one broken job cannot take down the whole pool map (matching the
    serial path's per-job isolation).
    """
    from repro.baselines.registry import build_backend
    from repro.evaluation.runner import (
        worker_cancel_flags,
        worker_event_queue,
        worker_payload,
    )

    (
        job_index, job_id, method, length, task, seed, budget_limit,
        progress_every, event_batch_size,
    ) = spec
    queue = worker_event_queue()
    flags = worker_cancel_flags()
    emitter = _EventEmitter(
        job_index, job_id, queue, flags, batch_size=event_batch_size
    )
    backend = None
    version_before = 0
    try:
        if flags is not None and flags[job_index]:
            # cancelled before the worker even started the job: don't pay
            # for a single generation (the flag was raised parent-side)
            return ("cancelled", None, None, 0, None)
        payload = worker_payload()
        store, config, snapshots = _unpack_payload(payload)
        if _WORKER_BACKENDS.get("__store__") is not store:
            _WORKER_BACKENDS.clear()
            _WORKER_BACKENDS["__store__"] = store
        key = (method, length)
        backend = _WORKER_BACKENDS.get(key)
        if backend is None:
            backend = build_backend(method, store, config, program_length=length)
            snapshot = snapshots.get(_snapshot_key(method, length))
            if snapshot and hasattr(backend, "load_cache_snapshot"):
                backend.load_cache_snapshot(snapshot)
            _WORKER_BACKENDS[key] = backend
        # the session's L2 shared score table (when enabled): attach it
        # before solving so mid-job forwards publish to — and read from —
        # the table every sibling worker shares
        table = getattr(payload, "score_table", None)
        if table is not None and hasattr(backend, "attach_score_table"):
            backend.attach_score_table(table)
        # mirror the session's own backend setup: the configured event
        # cadence (which is also the budget-hook cancellation cadence)
        # must reach worker backends, not just local ones
        backend.progress_every = progress_every
        if hasattr(backend, "begin_cache_delta"):
            backend.begin_cache_delta()
        version_before = getattr(backend, "cache_version", lambda: 0)()
        result = backend.solve(
            task,
            budget=SearchBudget(limit=budget_limit),
            seed=seed,
            listener=emitter if (queue is not None or flags is not None) else None,
        )
    except JobCancelled:
        return ("cancelled", None, None, emitter.emitted, _worker_cache_delta(backend, version_before))
    except Exception as error:  # noqa: BLE001 - job isolation boundary
        return ("failed", None, f"{type(error).__name__}: {error}", emitter.emitted, None)
    finally:
        if queue is not None:
            emitter.flush()
    return ("ok", result, None, emitter.emitted, _worker_cache_delta(backend, version_before))


def _worker_cache_delta(backend: Any, version_before: int) -> Optional[dict]:
    """The entries this job added to the worker backend's caches.

    The merge-back payload for the parent session.  Jobs that ran fully
    warm (every score and evaluation already cached) ship nothing; jobs
    that did work ship only the dirty entries written since the job's
    ``begin_cache_delta()`` window opened — the payload scales with the
    job's new work, not with the cache capacity.  Merging is idempotent:
    every cached value is a deterministic function of its structural key.
    """
    if backend is None or not hasattr(backend, "cache_snapshot"):
        return None
    if getattr(backend, "cache_version", lambda: 0)() == version_before:
        return None
    if hasattr(backend, "begin_cache_delta"):
        delta = backend.cache_snapshot(dirty_only=True)
    else:
        delta = backend.cache_snapshot()
    if delta and getattr(backend, "score_table", None) is not None:
        # L2 is live: every score this job computed is already published
        # in the shared table, and the parent reads its misses from there
        # — don't also ship them through the result pickle
        delta.pop("scores", None)
    return delta or None


class SynthesisSession:
    """A warm set of Phase-1 artifacts serving many synthesis jobs."""

    def __init__(
        self,
        config: NetSynConfig,
        store: ArtifactStore,
        methods: Sequence[str],
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.methods = tuple(methods)
        self.service_config = service_config or ServiceConfig()
        self.jobs: List[SynthesisJob] = []
        self._backends: Dict[Tuple[str, Optional[int]], SynthesisBackend] = {}
        self._listeners: List[ProgressListener] = []
        self._next_job_number = 0
        self._shared_dir: Optional[Path] = None
        self._shared_packed = False
        #: the session's L2 shared mmap score table (created lazily for
        #: parallel runs when ServiceConfig.shared_score_table is on);
        #: the parent attaches it too, so score misses after a parallel
        #: run are read from the table instead of shipped in job deltas
        self._score_table: Any = None
        #: the L4 network score tier (created lazily from
        #: ServiceConfig.remote_score_cache, or attached explicitly via
        #: :meth:`attach_remote_score_tier`); None keeps the session
        #: fully local.  Only the parent process consults it — workers
        #: share through the L2 table and per-job deltas as before.
        self._remote_tier: Any = None
        # Persisted warm caches: snapshots written by a previous process
        # next to the artifacts, keyed by model hash (stale snapshots are
        # discarded by ArtifactStore.load_caches).  Applied lazily as
        # backends are built.
        self._cache_snapshots: Dict[str, dict] = {}
        #: cache-write version at the last persisted snapshot (None =
        #: never persisted this session), so fully-warm runs skip the
        #: model re-hash and full cache re-pickle entirely
        self._persisted_version: Optional[int] = None
        #: recovery events observed before any listener could attach
        #: (e.g. corrupt L3 segments skipped while loading warm caches);
        #: flushed to session listeners at the next :meth:`run`
        self.startup_events: List[ProgressEvent] = []
        if self.service_config.persist_caches and self.service_config.artifact_dir:
            self._cache_snapshots = self.store.load_caches(
                self.service_config.artifact_dir,
                on_skip=self._record_skipped_segment,
            )
            if self._cache_snapshots:
                logger.info(
                    "warm caches: loaded %d persisted snapshot(s) from %s",
                    len(self._cache_snapshots),
                    self.service_config.artifact_dir,
                )

    # ------------------------------------------------------------------
    def _record_skipped_segment(self, name: str, reason: str) -> None:
        """Remember a corrupt/truncated L3 segment skipped during load."""
        logger.warning("cache log: skipped segment %s (%s)", name, reason)
        self.startup_events.append(
            ProgressEvent(kind="cache_segment_skipped", reason=f"{name}: {reason}")
        )

    def add_listener(self, listener: ProgressListener) -> None:
        """Attach a session-wide progress-event consumer."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    @property
    def remote_score_tier(self) -> Any:
        """The attached L4 network score tier (None when fully local)."""
        return self._remote_tier

    def attach_remote_score_tier(self, remote: Any) -> None:
        """Attach an L4 network score tier to this session.

        Every already-built backend (and every backend built later)
        falls through to ``remote`` on local score-cache misses and
        pushes computed scores back.  Values are deterministic per
        structural key, so attaching a tier never changes results.  The
        server side of ``repro.serving`` uses this to publish its own
        session's scores into the served score pool.
        """
        self._remote_tier = remote
        for backend in self._backends.values():
            if hasattr(backend, "attach_remote_tier"):
                backend.attach_remote_tier(remote)

    def _resolve_remote_tier(self) -> Any:
        """The session's L4 tier, built on first use from the config.

        The import is deferred so ``repro.core`` never depends on
        ``repro.serving`` unless a remote cache is actually configured
        (the serving package imports back into core).
        """
        if self._remote_tier is None and self.service_config.remote_score_cache:
            from repro.serving.cache_tier import RemoteScoreTier

            self._remote_tier = RemoteScoreTier(self.service_config.remote_score_cache)
        return self._remote_tier

    def backend(self, method: str, program_length: Optional[int] = None) -> SynthesisBackend:
        """The cached backend for ``method`` (built and bound on first use)."""
        from repro.baselines.registry import build_backend

        key = (method, program_length)
        backend = self._backends.get(key)
        if backend is None:
            backend = build_backend(
                method, self.store, self.config, program_length=program_length
            )
            backend.progress_every = self.service_config.progress_every
            snapshot = self._cache_snapshots.get(_snapshot_key(method, program_length))
            if snapshot and hasattr(backend, "load_cache_snapshot"):
                backend.load_cache_snapshot(snapshot)
            if self._score_table is not None and hasattr(backend, "attach_score_table"):
                backend.attach_score_table(self._score_table)
            remote = self._resolve_remote_tier()
            if remote is not None and hasattr(backend, "attach_remote_tier"):
                backend.attach_remote_tier(remote)
            if hasattr(backend, "begin_cache_delta"):
                # persisted-snapshot loads count as writes; open a fresh
                # dirty window so the next L3 segment holds only entries
                # this session actually computes (or merges from workers)
                backend.begin_cache_delta()
            self._backends[key] = backend
        return backend

    # ------------------------------------------------------------------
    def submit(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[SearchBudget, int, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
        job_id: Optional[str] = None,
    ) -> SynthesisJob:
        """Enqueue one synthesis job (state ``PENDING``).

        ``budget`` may be a candidate count or a ``SearchBudget``; it
        defaults to the configuration's ``max_search_space``.  Jobs run
        when :meth:`run` is called (or :meth:`run_job` for one job).

        ``job_id`` lets a caller re-admit a recovered job under its
        original id (the serving journal does this after a server
        restart); the default ``job-N`` counter always continues past any
        explicit id of that shape, so fresh ids never collide.
        """
        method = method or self.methods[0]
        if method not in self.methods:
            raise KeyError(
                f"method {method!r} is not part of this session; opened with {self.methods}"
            )
        if isinstance(budget, SearchBudget):
            limit = budget.limit
        elif budget is None:
            limit = self.config.max_search_space
        else:
            limit = int(budget)
        if job_id is None:
            self._next_job_number += 1
            job_id = f"job-{self._next_job_number}"
        else:
            match = re.fullmatch(r"job-(\d+)", job_id)
            if match:
                self._next_job_number = max(
                    self._next_job_number, int(match.group(1))
                )
        job = SynthesisJob(
            job_id=job_id,
            method=method,
            task=task,
            seed=seed,
            budget_limit=limit,
            program_length=program_length,
        )
        self.jobs.append(job)
        return job

    # ------------------------------------------------------------------
    def _job_listener(self, job: SynthesisJob) -> ProgressListener:
        """Record events on the job, fan out to session listeners, and
        honor cooperative cancellation."""

        max_events = self.service_config.max_events_per_job

        def listener(event: ProgressEvent) -> None:
            event.job_id = job.job_id
            job.events.append(event)
            if len(job.events) > max_events:  # keep the most recent events
                del job.events[0]
            for session_listener in self._listeners:
                session_listener(event)
            # honor cancellation at every event except "finished": by then
            # the result exists, and discarding it would waste the run
            if job._cancel_requested and event.kind != "finished":
                raise JobCancelled(job.job_id)

        return listener

    def run_job(self, job: SynthesisJob) -> SynthesisJob:
        """Execute one pending job to a terminal state (serial path)."""
        if job.state is not JobState.PENDING:
            return job
        if job._cancel_requested:
            # cancel requested before the job ever started (e.g. from a
            # listener thread racing the PENDING->RUNNING transition):
            # honor it here instead of paying for a generation and
            # cancelling at the first progress event
            job.state = JobState.CANCELLED
            return job
        job.state = JobState.RUNNING
        budget = SearchBudget(limit=job.budget_limit)
        try:
            result = self.backend(job.method, job.program_length).solve(
                job.task, budget=budget, seed=job.seed, listener=self._job_listener(job)
            )
        except JobCancelled:
            job.state = JobState.CANCELLED
            logger.info("job %s cancelled after %d candidates", job.job_id, budget.used)
            return job
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job.state = JobState.FAILED
            job.error = f"{type(error).__name__}: {error}"
            logger.warning("job %s failed: %s", job.job_id, job.error)
            return job
        self._finish(job, result)
        return job

    def _finish(self, job: SynthesisJob, result: SynthesisResult) -> None:
        job.result = result
        job.state = JobState.SOLVED if result.found else JobState.EXHAUSTED

    # ------------------------------------------------------------------
    # Cross-job batch fusion (ServiceConfig.fuse_jobs): concurrent jobs
    # over the *same example inputs* contribute their population rows to
    # the same columnar kernel dispatches (repro.execution.fusion).
    def _fusion_groups(
        self, pending: List[SynthesisJob]
    ) -> Tuple[List[List[SynthesisJob]], List[SynthesisJob]]:
        """Partition pending jobs into fusable groups and serial leftovers.

        A group shares ``(method, program_length)`` — one backend — and
        the structural key of its example inputs, with pairwise-distinct
        IO sets: distinct IO keys make every cache key disjoint across
        the group, which is what keeps per-job counters exact.  A job
        whose IO set duplicates an earlier group member stays a leftover
        and runs *after* the groups, so it observes the same warm cache
        a serial run (where its twin precedes it) would have produced.
        Backends without columnar batching are never fused.
        """
        groups: Dict[Tuple, List[SynthesisJob]] = {}
        io_keys: Dict[Tuple, set] = {}
        leftovers: List[SynthesisJob] = []
        for job in pending:
            backend = self.backend(job.method, job.program_length)
            if not getattr(backend, "supports_fusion", lambda: False)():
                leftovers.append(job)
                continue
            key = (
                job.method,
                job.program_length,
                inputs_key([example.inputs for example in job.task.io_set]),
            )
            io_key = io_set_key(job.task.io_set)
            seen = io_keys.setdefault(key, set())
            if io_key in seen:
                leftovers.append(job)
                continue
            seen.add(io_key)
            groups.setdefault(key, []).append(job)
        fusable: List[List[SynthesisJob]] = []
        for group in groups.values():
            if len(group) > 1:
                fusable.append(group)
            else:
                leftovers.append(group[0])
        return fusable, leftovers

    def _run_fused(self, pending: List[SynthesisJob]) -> None:
        """Run pending jobs with cross-job dispatch fusion.

        Same-inputs groups run first (their members concurrently, fused
        on one plane per group), then the leftovers serially in
        submission order — so a job whose IO set duplicates a fused one
        still starts from the warm caches its twin produced, exactly as
        in a serial run.
        """
        fusable, leftovers = self._fusion_groups(pending)
        for group in fusable:
            self._run_fused_group(group)
        for job in leftovers:
            self.run_job(job)

    def _run_fused_group(self, group: List[SynthesisJob]) -> None:
        """One fusion group: per-job threads over one shared plane.

        Registration, engine construction and the final cache merge all
        happen in the main thread in admission order, so the only
        concurrency is inside the evaluation rendezvous — where results
        are deterministic per (program, io_set) and row ownership is
        positional.  A job that finishes (or cancels, or fails) leaves
        the plane in its ``finally``, so stragglers never wait out
        rendezvous timeouts on its account.
        """
        first = group[0]
        backend = self.backend(first.method, first.program_length)
        plane = FusionPlane([example.inputs for example in first.task.io_set])
        engines = []
        for job in group:
            token = plane.register()
            engines.append(backend.fused_executor(plane, token))
        threads = [
            threading.Thread(
                target=self._run_fused_job,
                args=(job, backend, engine, plane),
                name=f"fused-{job.job_id}",
                daemon=True,
            )
            for job, engine in zip(group, engines)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for engine in engines:
            backend.merge_fused_cache(engine)

    def _run_fused_job(self, job: SynthesisJob, backend, engine, plane) -> None:
        """``run_job`` body for one member of a fusion group."""
        if job.state is not JobState.PENDING:
            plane.unregister(engine._token)
            return
        if job._cancel_requested:
            job.state = JobState.CANCELLED
            plane.unregister(engine._token)
            return
        job.state = JobState.RUNNING
        budget = SearchBudget(limit=job.budget_limit)
        try:
            result = backend.solve(
                job.task,
                budget=budget,
                seed=job.seed,
                listener=self._job_listener(job),
                executor=engine,
            )
        except JobCancelled:
            job.state = JobState.CANCELLED
            logger.info("job %s cancelled after %d candidates", job.job_id, budget.used)
            return
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job.state = JobState.FAILED
            job.error = f"{type(error).__name__}: {error}"
            logger.warning("job %s failed: %s", job.job_id, job.error)
            return
        finally:
            # leaving the plane first means sibling jobs stop waiting for
            # this job's rows the moment it has no more batches to offer
            plane.unregister(engine._token)
        self._finish(job, result)

    # ------------------------------------------------------------------
    def _shared_directory(self) -> Path:
        """The directory holding the shared weight segment for workers."""
        if self._shared_dir is None:
            configured = self.service_config.shared_dir or self.service_config.artifact_dir
            if configured:
                self._shared_dir = Path(configured)
            else:
                self._shared_dir = Path(tempfile.mkdtemp(prefix="netsyn-shared-"))
                atexit.register(shutil.rmtree, str(self._shared_dir), ignore_errors=True)
        return self._shared_dir

    def _worker_payload(self) -> Any:
        """Build the cross-process payload for a parallel run.

        With ``shared_weights`` the trained models are persisted once
        (``weights.npz``), packed into a flat mmap-able segment, and only
        a path descriptor crosses the process boundary — each worker
        attaches the segment read-only instead of unpickling its own
        model copies.  ``share_worker_caches`` additionally snapshots the
        session backends' score/evaluation caches (structural keys are
        process-stable) so workers start warm.  Falls back to pickling
        ``(store, config)`` when shared serving is disabled.
        """
        if not self.service_config.shared_weights or not self.store.names():
            # nothing trained to share (e.g. an artifact-free edit/oracle
            # session): ship the store directly, it is empty or tiny
            return (self.store, self.config)
        directory = self._shared_directory()
        if not self._shared_packed:
            self.store.save(directory)
            self.store.pack_shared(directory)
            self._shared_packed = True
        snapshot_file = None
        if self.service_config.share_worker_caches:
            snapshots = {
                _snapshot_key(method, length): snapshot
                for (method, length), backend in self._backends.items()
                for snapshot in [getattr(backend, "cache_snapshot", lambda: None)()]
                if snapshot
            }
            if snapshots:
                path = directory / _CACHE_SNAPSHOT
                with path.open("wb") as handle:
                    pickle.dump(snapshots, handle)
                snapshot_file = str(path)
        return SharedWorkerPayload(
            directory=str(directory),
            config=self.config,
            names=self.store.names(),
            snapshot_file=snapshot_file,
            score_table_file=self._score_table_file(directory),
            token=_segment_token(str(directory)),
        )

    def _score_table_file(self, directory: Path) -> Optional[str]:
        """Create/attach the session's L2 shared score table (or None).

        The table lives next to the packed weight segment, keyed by the
        store's model hash: :meth:`SharedScoreTable.ensure` recreates a
        table left behind by a session over different weights, because
        cached scores are functions of the model.  The parent attaches
        the same table it hands the workers — after a parallel run its
        own L1 misses are answered from L2 instead of requiring workers
        to ship score deltas through the result pickle.
        """
        if not self.service_config.shared_score_table:
            return None
        if self._score_table is None:
            from repro.execution.shared_table import SHARED_SCORES_BIN, SharedScoreTable

            self._score_table = SharedScoreTable.ensure(
                directory / SHARED_SCORES_BIN,
                n_slots=self.service_config.table_slots,
                model_hash=self.store.model_hash(),
            )
            for backend in self._backends.values():
                if hasattr(backend, "attach_score_table"):
                    backend.attach_score_table(self._score_table)
        return str(self._score_table.path)

    # ------------------------------------------------------------------
    def _pump_events(
        self,
        queue: Any,
        pending: Sequence[SynthesisJob],
        received: List[int],
        on_control: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        """Drain the workers' event queue live (runs on a daemon thread).

        Each item is ``(job_index, event)``; events are recorded on the
        job and fanned out to session listeners exactly like the serial
        path, while the main thread blocks in the pool map.  A listener
        raising :class:`JobCancelled` requests cancellation of that job
        (serial semantics translated to the remote flag); any other
        listener exception is logged and swallowed — the pump must keep
        draining or the run would lose events.  A ``None`` sentinel
        (posted by :meth:`run` after all expected events arrived) stops
        the pump.

        Items with a negative job index are **control events** (worker
        heartbeats under supervised execution): they are routed to
        ``on_control`` and never recorded on a job or fanned to listeners
        — per-job streams stay identical to serial runs.  The blocking
        get runs under a short timeout so the pump stays responsive (and
        can never be parked forever on a queue whose writers all died);
        termination is still sentinel-driven.
        """
        from queue import Empty

        max_events = self.service_config.max_events_per_job
        stop = False
        while not stop:
            try:
                items = [queue.get(timeout=0.25)]
            except Empty:
                continue
            # batched drain: grab whatever else already crossed the queue
            # before fanning out, so a bursty producer costs one wakeup
            # per burst instead of one per event
            for _ in range(256):
                try:
                    items.append(queue.get_nowait())
                except Empty:
                    break
            for item in items:
                if item is None:
                    stop = True
                    continue
                job_index, payload = item
                if job_index < 0:
                    if on_control is not None and isinstance(payload, ProgressEvent):
                        try:
                            on_control(payload)
                        except Exception:  # noqa: BLE001 - pump must survive
                            logger.exception("control-event handler failed")
                    continue
                # a worker with event batching on puts a coalesced list
                events = payload if isinstance(payload, list) else [payload]
                job = pending[job_index]
                job.events.extend(events)
                if len(job.events) > max_events:  # keep the most recent events
                    del job.events[: len(job.events) - max_events]
                received[job_index] += len(events)
                for event in events:
                    for session_listener in self._listeners:
                        try:
                            session_listener(event)
                        except JobCancelled:
                            job.cancel()
                        except Exception:  # noqa: BLE001 - pump must survive listeners
                            logger.exception("session listener failed on %s", event.kind)

    def _settle_event_stream(
        self,
        queue: Any,
        pump: threading.Thread,
        received: List[int],
        expected: List[int],
        timeout: float = 30.0,
    ) -> None:
        """Wait until every streamed event reached the pump, then stop it.

        The pool map returning only proves the *results* arrived; events
        travel on a separate queue whose feeder threads may still be
        flushing.  Workers report how many events they emitted per job,
        so the parent waits for exactly that many before posting the
        pump's stop sentinel — making ``run()``'s post-condition "every
        event observable" deterministic rather than racy.
        """
        deadline = time.monotonic() + timeout
        while any(got < want for got, want in zip(received, expected)):
            if time.monotonic() > deadline:  # pragma: no cover - defensive
                logger.warning(
                    "event stream incomplete after %.0fs: received %s of %s",
                    timeout, received, expected,
                )
                break
            time.sleep(0.001)
        queue.put(None)
        pump.join(timeout=5.0)

    def run(
        self,
        jobs: Optional[Sequence[SynthesisJob]] = None,
        n_workers: Optional[int] = None,
    ) -> List[SynthesisJob]:
        """Execute pending jobs, serially (in submission order) or in parallel.

        With ``n_workers > 1`` the pending jobs fan out over
        ``ParallelTaskRunner`` worker processes; results (and the order of
        the returned list) are identical to a serial run.  Worker-side
        progress events stream back live through a multiprocessing queue
        drained by a pump thread (``ServiceConfig.stream_worker_events``),
        so session listeners observe remote jobs per-generation exactly
        like local ones; ``job.cancel()`` reaches running workers through
        a shared cancellation flag, and cache entries computed by workers
        are merged back into this session's backends when each job
        completes (``ServiceConfig.merge_worker_caches``).  With a
        configured ``artifact_dir`` the merged caches are persisted for
        later sessions (``ServiceConfig.persist_caches``).
        """
        if self.service_config.fault_plan is not None:
            # the parent's own instrumented sites (l3_append, table_attach)
            # must observe the plan on serial runs too
            faults.install(self.service_config.fault_plan, role="parent")
        self._flush_startup_events()
        pending = [j for j in (jobs if jobs is not None else self.jobs) if j.state is JobState.PENDING]
        n_workers = self.service_config.n_workers if n_workers is None else int(n_workers)
        if n_workers > 1 and len(pending) > 1:
            self._run_parallel(pending, n_workers)
        elif self.service_config.fuse_jobs and len(pending) > 1:
            self._run_fused(pending)
        else:
            for job in pending:
                self.run_job(job)
        self._persist_caches()
        return pending

    def _flush_startup_events(self) -> None:
        """Deliver pre-listener recovery events (once) to session listeners."""
        if not self.startup_events:
            return
        events, self.startup_events = self.startup_events, []
        for event in events:
            for session_listener in self._listeners:
                try:
                    session_listener(event)
                except Exception:  # noqa: BLE001 - startup flush must not fail the run
                    logger.exception("session listener failed on %s", event.kind)

    def _run_parallel(self, pending: List[SynthesisJob], n_workers: int) -> None:
        """Fan ``pending`` out over worker processes with live streaming.

        ``ServiceConfig.supervised`` (the default) routes through the
        fault-tolerant :class:`~repro.core.supervisor.WorkerSupervisor`;
        disabling it keeps the original unsupervised pool map, where a
        worker crash loses the job (and historically hung the run).
        """
        if self.service_config.supervised:
            self._run_supervised(pending, n_workers)
        else:
            self._run_pool(pending, n_workers)

    def _prepare_fan_out(
        self, pending: List[SynthesisJob], context: Any
    ) -> Tuple[Any, List[_ServiceJobSpec], List[int]]:
        """Shared fan-out setup: cancel flags, specs, state transitions."""
        # one shared byte per job: the parent raises it, workers poll it
        # at every emitted event (no lock needed for a monotonic flag)
        flags = context.Array("b", len(pending), lock=False)
        specs: List[_ServiceJobSpec] = [
            (index, job.job_id, job.method, job.program_length, job.task, job.seed,
             job.budget_limit, self.service_config.progress_every,
             self.service_config.event_batch_size)
            for index, job in enumerate(pending)
        ]
        received = [0] * len(pending)
        for index, job in enumerate(pending):
            if job.state is not JobState.PENDING:
                # cancelled between collecting the pending list and this
                # fan-out: keep the terminal state and make sure the
                # worker never runs the job
                flags[index] = 1
                continue
            job.state = JobState.RUNNING
            job._remote_cancel = _FlagRaiser(flags, index)
            if job._cancel_requested:  # cancelled between submit and fan-out
                flags[index] = 1
        return flags, specs, received

    def _supervision_listener(
        self, pending: List[SynthesisJob]
    ) -> Callable[[ProgressEvent], None]:
        """Consumer for the supervisor's recovery events.

        Job-scoped events (retries, quarantines, deadlines) are recorded
        on the job like any of its own events; all supervision events fan
        out to session listeners.  A listener raising
        :class:`JobCancelled` on a supervision event cancels that job.
        """
        by_id = {job.job_id: job for job in pending}

        def listener(event: ProgressEvent) -> None:
            job = by_id.get(event.job_id)
            if job is not None:
                job.events.append(event)
            for session_listener in self._listeners:
                try:
                    session_listener(event)
                except JobCancelled:
                    if job is not None:
                        job.cancel()
                except Exception:  # noqa: BLE001 - supervision must survive listeners
                    logger.exception("session listener failed on %s", event.kind)

        return listener

    def _run_supervised(self, pending: List[SynthesisJob], n_workers: int) -> None:
        """Supervised fan-out: retries, heartbeats, deadlines, degradation."""
        context = multiprocessing.get_context()
        queue = context.Queue() if self.service_config.stream_worker_events else None
        flags, specs, received = self._prepare_fan_out(pending, context)
        supervisor = WorkerSupervisor(
            n_workers=n_workers,
            config=self.service_config,
            seed=self.config.seed,
            payload=self._worker_payload(),
            event_queue=queue,
            cancel_flags=flags,
            emit=self._supervision_listener(pending),
            context=context,
        )
        pump = None
        if queue is not None:
            pump = threading.Thread(
                target=self._pump_events,
                args=(queue, pending, received),
                kwargs={"on_control": supervisor.observe_control},
                name="netsyn-event-pump",
                daemon=True,
            )
            pump.start()
        outcomes = None
        try:
            outcomes = supervisor.run(specs)
        finally:
            for job in pending:
                job._remote_cancel = None
            if pump is not None:
                if outcomes is not None:
                    # a job's final attempt flushed its events before its
                    # outcome message, so n_events is a guaranteed floor;
                    # earlier crashed attempts may have streamed more
                    # (received can exceed it) and hard-killed workers may
                    # have streamed fewer (their outcome reports 0)
                    expected = [
                        received[index]
                        if outcome.status == "pending_serial"
                        else max(outcome.n_events, received[index])
                        for index, outcome in enumerate(outcomes)
                    ]
                else:
                    expected = [0] * len(pending)
                self._settle_event_stream(queue, pump, received, expected)
        serial_rerun: List[SynthesisJob] = []
        for job, outcome in zip(pending, outcomes):
            if outcome.cache_delta and self.service_config.merge_worker_caches:
                backend = self.backend(job.method, job.program_length)
                if hasattr(backend, "load_cache_snapshot"):
                    backend.load_cache_snapshot(outcome.cache_delta)
            if outcome.status == "pending_serial":
                # the pool degraded before this job finished: hand it to
                # the serial path below (same backend, same seed — the
                # result is what the worker would have produced)
                job.state = JobState.PENDING
                serial_rerun.append(job)
            elif outcome.status == "cancelled":
                job.state = JobState.CANCELLED
                logger.info("job %s cancelled in worker", job.job_id)
            elif outcome.status != "ok" or outcome.result is None:
                job.state = JobState.FAILED
                job.error = outcome.error
                job.failure = outcome.failure
                logger.warning("job %s failed: %s", job.job_id, job.error)
                if outcome.failure is not None:
                    # the worker died (or was killed) before it could
                    # flush a terminal event: synthesize one so the job's
                    # stream still settles with an observable ending
                    self._supervision_listener([job])(
                        ProgressEvent(
                            kind="failed",
                            method=job.method,
                            task_id=job.task.task_id,
                            job_id=job.job_id,
                            attempt=outcome.attempts,
                            reason=outcome.failure.kind,
                        )
                    )
            else:
                self._finish(job, outcome.result)
                if queue is None:
                    # streaming disabled: synthesize the terminal event so
                    # job.events still records the outcome
                    listener = self._job_listener(job)
                    listener(
                        ProgressEvent(
                            kind="finished",
                            method=job.method,
                            task_id=job.task.task_id,
                            candidates_used=outcome.result.candidates_used,
                            budget_limit=outcome.result.budget_limit,
                            found=outcome.result.found,
                            found_by=outcome.result.found_by,
                        )
                    )
        for job in serial_rerun:
            self.run_job(job)

    def _run_pool(self, pending: List[SynthesisJob], n_workers: int) -> None:
        """Unsupervised fan-out over the plain multiprocessing pool."""
        from repro.evaluation.runner import ParallelTaskRunner

        context = multiprocessing.get_context()
        queue = context.Queue() if self.service_config.stream_worker_events else None
        flags, specs, received = self._prepare_fan_out(pending, context)
        pump = None
        if queue is not None:
            pump = threading.Thread(
                target=self._pump_events,
                args=(queue, pending, received),
                name="netsyn-event-pump",
                daemon=True,
            )
            pump.start()
        runner = ParallelTaskRunner(
            n_workers=n_workers,
            seed=self.config.seed,
            payload=self._worker_payload(),
            event_queue=queue,
            cancel_flags=flags,
        )
        outcomes: Optional[List[_ServiceJobOutcome]] = None
        try:
            outcomes = runner.map(_run_service_job, specs)
        finally:
            for job in pending:
                job._remote_cancel = None
            if pump is not None:
                # each worker reports how many events it emitted per job;
                # wait for exactly those before stopping the pump (on the
                # exception path nothing is expected — just stop)
                expected = (
                    [outcome[3] for outcome in outcomes]
                    if outcomes is not None
                    else [0] * len(pending)
                )
                self._settle_event_stream(queue, pump, received, expected)
        for job, (status, result, error, _n_events, delta) in zip(pending, outcomes):
            if delta and self.service_config.merge_worker_caches:
                backend = self.backend(job.method, job.program_length)
                if hasattr(backend, "load_cache_snapshot"):
                    backend.load_cache_snapshot(delta)
            if status == "cancelled":
                job.state = JobState.CANCELLED
                logger.info("job %s cancelled in worker", job.job_id)
            elif status != "ok" or result is None:
                job.state = JobState.FAILED
                job.error = error
                logger.warning("job %s failed: %s", job.job_id, job.error)
            else:
                self._finish(job, result)
                if queue is None:
                    # streaming disabled: synthesize the terminal event so
                    # job.events still records the outcome
                    listener = self._job_listener(job)
                    listener(
                        ProgressEvent(
                            kind="finished",
                            method=job.method,
                            task_id=job.task.task_id,
                            candidates_used=result.candidates_used,
                            budget_limit=result.budget_limit,
                            found=result.found,
                            found_by=result.found_by,
                        )
                    )

    # ------------------------------------------------------------------
    def solve(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[SearchBudget, int, None] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
    ) -> SynthesisResult:
        """Submit-and-run convenience for interactive use.

        Raises the job's error (or :class:`~repro.events.JobCancelled`)
        instead of returning a failed job, so callers get either a
        result or an exception.
        """
        job = self.submit(task, method=method, budget=budget, seed=seed)
        if listener is not None:
            self.add_listener(listener)
            try:
                self.run_job(job)
            finally:
                self._listeners.remove(listener)
        else:
            self.run_job(job)
        if job.state is JobState.FAILED:
            raise RuntimeError(f"synthesis job failed: {job.error}")
        if job.state is JobState.CANCELLED:
            raise JobCancelled(job.job_id)
        assert job.result is not None
        return job.result

    def save_artifacts(self, directory) -> None:
        """Persist this session's trained artifacts for later warm starts."""
        self.store.save(directory)

    # ------------------------------------------------------------------
    def save_caches(self, directory=None) -> Optional[Path]:
        """Append this session's new cache entries to the L3 cache log.

        Each call appends one segment under ``<directory>/cache_log/``
        (defaulting to the configured ``artifact_dir``) holding only the
        entries written since the previous persist — the dirty windows
        of every built backend — instead of rewriting the whole
        accumulated cache like the old ``cache_snapshots.pkl`` format
        did.  The log is keyed by the store's model hash; entries loaded
        from disk by earlier sessions stay in the log untouched, so
        sessions serving different (method, length) pairs against one
        artifact directory accumulate naturally.  Returns the appended
        segment's path, or None when there is nowhere to write or
        nothing new to save.
        """
        directory = directory or self.service_config.artifact_dir
        if not directory:
            return None
        deltas: Dict[str, dict] = {}
        for (method, length), backend in self._backends.items():
            if not hasattr(backend, "cache_snapshot"):
                continue
            if hasattr(backend, "begin_cache_delta"):
                delta = backend.cache_snapshot(dirty_only=True)
            else:
                delta = backend.cache_snapshot()
            if delta:
                deltas[_snapshot_key(method, length)] = delta
        if not deltas:
            return None
        path = self.store.save_caches(
            directory,
            deltas,
            compact_threshold=self.service_config.cache_log_compact_threshold,
        )
        # the appended entries are durable now: open fresh dirty windows
        # so the next segment only carries work done after this point
        for backend in self._backends.values():
            if hasattr(backend, "begin_cache_delta"):
                backend.begin_cache_delta()
        return path

    def _caches_version(self) -> int:
        """Combined cache-write version of every built backend."""
        return sum(
            getattr(backend, "cache_version", lambda: 0)()
            for backend in self._backends.values()
        )

    def _persist_caches(self) -> None:
        """Append an L3 segment after a run when the configuration asks.

        Skipped when no backend wrote a cache entry since the last save —
        a fully-warm ``run()`` costs no model re-hash and no pickling at
        all.  The appended segment holds only this run's dirty entries
        (see :meth:`save_caches`), so persist cost scales with new work,
        not with the accumulated cache size.
        """
        if not (self.service_config.persist_caches and self.service_config.artifact_dir):
            return
        version = self._caches_version()
        if version == self._persisted_version:
            return
        try:
            self.save_caches(self.service_config.artifact_dir)
            self._persisted_version = version
        except OSError as error:  # pragma: no cover - disk-full etc.
            logger.warning("could not persist cache snapshots: %s", error)


class SynthesisService:
    """Entry point: opens warm-startable sessions over trained artifacts."""

    def __init__(
        self,
        config: Optional[NetSynConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        verbose: bool = False,
    ) -> None:
        self.config = config or NetSynConfig()
        self.config.validate()
        self.service_config = service_config or ServiceConfig()
        self.service_config.validate()
        self.verbose = verbose

    # ------------------------------------------------------------------
    def open_session(
        self,
        methods: Sequence[str] = ("netsyn_cf",),
        store: Optional[ArtifactStore] = None,
    ) -> SynthesisSession:
        """Load-or-train the Phase-1 artifacts for ``methods`` and return a
        session serving them.

        With a configured ``artifact_dir``, previously saved artifacts are
        loaded instead of retrained (warm start) and newly trained ones
        are persisted, so a second process opens the same session without
        paying for Phase 1 again.
        """
        from repro.baselines.registry import ensure_artifacts, required_artifacts

        service_config = self.service_config
        needed = sorted(required_artifacts(methods))
        if store is None:
            store = ArtifactStore()
            if (
                service_config.artifact_dir
                and service_config.warm_start
                and ArtifactStore.saved_at(service_config.artifact_dir)
            ):
                store = ArtifactStore.load(service_config.artifact_dir, names=needed)
                logger.info(
                    "warm start: loaded %s from %s", store.names(), service_config.artifact_dir
                )
        missing = store.missing(needed)
        ensure_artifacts(store, self.config, methods=methods, verbose=self.verbose)
        if service_config.artifact_dir and service_config.save_artifacts and missing:
            store.save(service_config.artifact_dir)
            logger.info("saved artifacts %s to %s", store.names(), service_config.artifact_dir)
        return SynthesisSession(
            self.config, store, methods=methods, service_config=service_config
        )
