"""Synthesis results and run statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsl.program import Program


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run (one method, one task, one seed).

    Attributes
    ----------
    found:
        Whether a program satisfying every IO example was found within the
        candidate budget.
    program:
        The synthesized program, when found.
    candidates_used:
        Number of candidate programs examined — the paper's "search space
        used" metric.
    budget_limit:
        The run's candidate budget (``max_search_space``).
    generations:
        GA generations executed (0 for non-GA baselines).
    wall_time_seconds:
        Wall-clock synthesis time.
    found_by:
        Which mechanism produced the solution: ``"init"``, ``"ga"``,
        ``"ns"``, ``"search"`` (enumerative baselines) or ``"none"``.
    method:
        Name of the synthesizer that produced this result.
    task_id:
        Identifier of the task, when run through the evaluation harness.
    average_fitness_history / best_fitness_history:
        Per-generation fitness statistics (GA methods only).
    """

    found: bool
    program: Optional[Program] = None
    candidates_used: int = 0
    budget_limit: int = 0
    generations: int = 0
    wall_time_seconds: float = 0.0
    found_by: str = "none"
    method: str = ""
    task_id: str = ""
    neighborhood_invocations: int = 0
    average_fitness_history: List[float] = field(default_factory=list)
    best_fitness_history: List[float] = field(default_factory=list)

    @property
    def status(self) -> str:
        """Terminal job status this result maps to: ``"solved"`` when a
        program was found, ``"exhausted"`` otherwise (the budget ran out
        or the generation limit was reached)."""
        return "solved" if self.found else "exhausted"

    @property
    def search_space_fraction(self) -> float:
        """Fraction of the candidate budget consumed (paper's y-axis in Fig. 4a-c)."""
        if self.budget_limit <= 0:
            return 0.0
        return min(1.0, self.candidates_used / self.budget_limit)

    def to_dict(self) -> dict:
        """JSON-friendly summary (omits the fitness histories)."""
        return {
            "found": self.found,
            "program": list(self.program.function_ids) if self.program else None,
            "candidates_used": self.candidates_used,
            "budget_limit": self.budget_limit,
            "generations": self.generations,
            "wall_time_seconds": self.wall_time_seconds,
            "found_by": self.found_by,
            "method": self.method,
            "task_id": self.task_id,
            "neighborhood_invocations": self.neighborhood_invocations,
        }
