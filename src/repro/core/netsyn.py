"""The NetSyn synthesis backend (and the deprecated ``NetSyn`` facade).

:class:`NetSynBackend` wires the two phases of Figure 1 together behind
the unified :class:`~repro.core.backend.SynthesisBackend` protocol:

* **Phase 1 — fitness function generation** (:meth:`NetSynBackend.fit`,
  or :meth:`NetSynBackend.bind` to reuse artifacts from an
  :class:`~repro.core.artifacts.ArtifactStore`): train or attach the
  neural fitness model configured by ``NetSynConfig.fitness_kind`` (plus
  the FP model whenever FP-guided mutation is enabled).
* **Phase 2 — program generation** (:meth:`NetSynBackend.solve`): run the
  genetic algorithm with the learned fitness function, FP-guided mutation
  and restricted local neighborhood search until a program equivalent to
  the target under the IO examples is found or the candidate budget is
  exhausted — streaming per-generation
  :class:`~repro.events.ProgressEvent`\\ s to an optional listener.

:class:`NetSyn` remains as a thin deprecated facade over the backend so
pre-existing callers (``NetSyn(config).fit().synthesize(io_set)``) keep
working bit-identically; new code should go through
:class:`~repro.core.service.SynthesisService`.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, List, Optional, Tuple

from repro.config import NetSynConfig
from repro.core.backend import SynthesisBackend
from repro.core.phase1 import Phase1Artifacts, train_fp_model, train_trace_model
from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.dsl.equivalence import IOSet
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.events import ProgressListener
from repro.execution import (
    BatchExecutionEngine,
    ExecutionEngine,
    FusedBatchEngine,
    FusionPlane,
    LRUCache,
    TieredScoreCache,
)
from repro.fitness.base import FitnessFunction
from repro.fitness.functions import (
    EditDistanceFitness,
    LearnedTraceFitness,
    OracleFitness,
    ProbabilityMapFitness,
)
from repro.ga.budget import SearchBudget
from repro.ga.engine import GeneticAlgorithm
from repro.ga.neighborhood import NeighborhoodSearch
from repro.ga.operators import GeneOperators
from repro.utils.logging import get_logger
from repro.utils.rng import RngFactory
from repro.utils.timing import Stopwatch

logger = get_logger("core.netsyn")

#: evaluation-cache namespaces exported in snapshots: outputs and solution
#: verdicts are compact; execution traces dominate the bytes and re-derive
#: in one execution, so they stay behind
_EXPORT_NAMESPACES = ("outputs", "solutions")


class NetSynBackend(SynthesisBackend):
    """GA-based program synthesizer with a learned fitness function."""

    def __init__(self, config: Optional[NetSynConfig] = None, name: Optional[str] = None) -> None:
        self.config = config or NetSynConfig()
        self.config.validate()
        self.name = name or f"netsyn_{self.config.fitness_kind}"
        self._factory = RngFactory(self.config.seed)
        self._trace_artifacts: Optional[Phase1Artifacts] = None
        self._fp_artifacts: Optional[Phase1Artifacts] = None
        self._fitted = False
        # Long-lived memo state shared across this backend's runs: every
        # cached value is a deterministic function of (program, io_set),
        # so reuse across jobs cannot change results, only skip work.
        self._shared_executor: Optional[ExecutionEngine] = None
        self._score_cache: Optional[TieredScoreCache] = None
        self._sample_cache: Optional[LRUCache] = None
        self._map_cache: Optional[LRUCache] = None
        #: the L2 shared mmap score table of a parallel session (None on
        #: the default single-tier path); see execution/shared_table.py
        self._score_table: Any = None
        #: the L4 network score tier of a served session (None offline);
        #: see serving/cache_tier.py
        self._remote_tier: Any = None

    # ------------------------------------------------------------------
    @property
    def needs_trace_model(self) -> bool:
        """True when the configured fitness requires the CF/LCS trace model."""
        return self.config.fitness_kind in ("cf", "lcs")

    @property
    def needs_fp_model(self) -> bool:
        """True when the FP model must be trained (FP fitness or FP mutation)."""
        return self.config.fitness_kind == "fp" or self.config.fp_guided_mutation

    @property
    def requires(self) -> Tuple[str, ...]:  # type: ignore[override]
        """Canonical artifact names this backend consumes from a store."""
        names = []
        if self.needs_trace_model:
            names.append(self.config.fitness_kind)
        if self.needs_fp_model:
            names.append("fp")
        return tuple(names)

    @property
    def default_budget_limit(self) -> int:  # type: ignore[override]
        return self.config.max_search_space

    @property
    def trace_artifacts(self) -> Optional[Phase1Artifacts]:
        """Phase-1 artifacts of the trace model (after :meth:`fit`/:meth:`bind`)."""
        return self._trace_artifacts

    @property
    def fp_artifacts(self) -> Optional[Phase1Artifacts]:
        """Phase-1 artifacts of the FP model (after :meth:`fit`/:meth:`bind`)."""
        return self._fp_artifacts

    # ------------------------------------------------------------------
    def fit(
        self,
        trace_samples=None,
        fp_io_sets=None,
        fp_memberships=None,
        verbose: bool = False,
    ) -> "NetSynBackend":
        """Phase 1: train the neural fitness model(s).

        Pre-generated corpora may be passed to reuse data across several
        synthesizers (the evaluation harness does this); otherwise fresh
        corpora are generated from the configuration.
        """
        cfg = self.config
        if self.needs_trace_model:
            self._trace_artifacts = train_trace_model(
                kind=cfg.fitness_kind,
                training=cfg.training,
                nn=cfg.nn,
                dsl=cfg.dsl,
                samples=trace_samples,
                verbose=verbose,
            )
        if self.needs_fp_model:
            self._fp_artifacts = train_fp_model(
                training=cfg.training,
                nn=cfg.nn,
                dsl=cfg.dsl,
                io_sets=fp_io_sets,
                memberships=fp_memberships,
                verbose=verbose,
            )
        self._reset_memo_caches()
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def _reset_memo_caches(self) -> None:
        """Drop every backend-lifetime memo when the models change.

        Cached predicted scores, probability maps and the fp score entries
        living in the shared executor are functions of the *model*, not
        just of ``(program, io_set)`` — serving them across a refit or
        rebind would steer the GA with the old model's numbers.
        """
        self._shared_executor = None
        self._score_cache = None
        self._sample_cache = None
        self._map_cache = None
        self._score_table = None
        self._remote_tier = None

    def set_models(
        self,
        trace_artifacts: Optional[Phase1Artifacts] = None,
        fp_artifacts: Optional[Phase1Artifacts] = None,
    ) -> "NetSynBackend":
        """Attach pre-trained Phase-1 artifacts instead of calling :meth:`fit`."""
        if trace_artifacts is not None:
            self._trace_artifacts = trace_artifacts
        if fp_artifacts is not None:
            self._fp_artifacts = fp_artifacts
        self._reset_memo_caches()
        self._fitted = True
        return self

    def bind(self, store) -> "NetSynBackend":
        """Attach every required artifact from a typed artifact store."""
        trace = None
        if self.needs_trace_model:
            trace = store.get(self.config.fitness_kind)
        fp = store.get("fp") if self.needs_fp_model else None
        return self.set_models(trace_artifacts=trace, fp_artifacts=fp)

    # ------------------------------------------------------------------
    def _make_executor(self) -> ExecutionEngine:
        """The run-shared execution engine this backend is configured for.

        With ``config.vectorized`` the engine is the columnar
        :class:`~repro.execution.BatchExecutionEngine`: the GA engine,
        the fitness functions and the neighborhood search then evaluate
        whole candidate batches in one vectorized pass.  Both engines
        feed the same :class:`~repro.execution.EvaluationCache`, so
        snapshots, deltas and every cache tier behave identically.
        """
        if self.config.vectorized:
            return BatchExecutionEngine()
        return ExecutionEngine()

    # ------------------------------------------------------------------
    def _memo_sections(self) -> List[Tuple[str, Any, Callable[[bool], list]]]:
        """The live memo caches as uniform ``(section, cache, export)`` rows.

        One description drives every snapshot/delta/version operation —
        the three caches (predicted scores, FP probability maps, compact
        evaluation entries) used to be handled by three near-identical
        loops each.  ``export(dirty_only)`` returns the section's
        picklable entries; every cache also supports ``clear_dirty()``
        and ``stats.stores``.
        """
        sections: List[Tuple[str, Any, Callable[[bool], list]]] = []
        if self._score_cache is not None:
            score_cache = self._score_cache
            sections.append((
                "scores",
                score_cache,
                lambda dirty: score_cache.dirty_snapshot() if dirty else score_cache.snapshot(),
            ))
        if self._map_cache is not None:
            map_cache = self._map_cache
            sections.append((
                "maps",
                map_cache,
                lambda dirty: map_cache.dirty_items() if dirty else map_cache.items(),
            ))
        if self._shared_executor is not None:
            eval_cache = self._shared_executor.cache
            sections.append((
                "evaluation",
                eval_cache,
                lambda dirty: (
                    eval_cache.dirty_snapshot(_EXPORT_NAMESPACES) if dirty
                    else eval_cache.snapshot(_EXPORT_NAMESPACES)
                ),
            ))
        return sections

    def cache_snapshot(self, dirty_only: bool = False) -> Optional[dict]:
        """Picklable snapshot of this backend's warm memo caches.

        Exports the predicted-score cache, the FP probability maps (one
        small vector per specification, keyed by the structural io key —
        skipping their forward is what makes a warm restart NN-free for
        known specs) and the compact evaluation entries (outputs and
        solution verdicts; execution traces stay behind — they dominate
        the bytes and re-derive in one execution).  All keys are
        structural, so the snapshot can warm-start the same backend in
        another process (see ``SynthesisSession.run``).

        With ``dirty_only`` only entries written since the last
        :meth:`begin_cache_delta` are exported — the per-job merge-back
        payload of a parallel worker (and the parent's per-run L3 log
        segment), bounded by the work actually done rather than by the
        cache capacity.
        """
        data: dict = {}
        for section, cache, export in self._memo_sections():
            if len(cache):
                entries = export(dirty_only)
                if entries:
                    data[section] = entries
        return data or None

    def begin_cache_delta(self) -> None:
        """Open a fresh delta window for :meth:`cache_snapshot(dirty_only=True)`."""
        for _section, cache, _export in self._memo_sections():
            cache.clear_dirty()

    def load_cache_snapshot(self, data: Optional[dict]) -> None:
        """Warm-start the memo caches from :meth:`cache_snapshot` output."""
        if not data:
            return
        cfg = self.config
        if "scores" in data and cfg.memoize_scores:
            if self._score_cache is None:
                self._score_cache = TieredScoreCache(
                    capacity=cfg.score_cache_size,
                    namespace=f"score:nnff_{cfg.fitness_kind}",
                    table=self._score_table,
                    remote=self._remote_tier,
                )
            self._score_cache.load_snapshot(data["scores"])
        if "maps" in data:
            self._fp_map_cache().load(data["maps"])
        if "evaluation" in data and cfg.share_evaluation_cache:
            if self._shared_executor is None:
                self._shared_executor = self._make_executor()
            self._shared_executor.cache.load_snapshot(data["evaluation"])

    def cache_version(self) -> int:
        """Monotone count of memo-cache writes (cheap change detection).

        Parallel workers record this before a job and snapshot only when
        it moved, so jobs that added nothing (fully warm runs) ship no
        cache delta back to the parent.
        """
        return sum(cache.stats.stores for _s, cache, _e in self._memo_sections())

    # ------------------------------------------------------------------
    @property
    def score_table(self) -> Any:
        """The attached L2 shared score table (None on the single-tier path)."""
        return self._score_table

    def attach_score_table(self, table: Any) -> None:
        """Attach the session's L2 shared mmap score table.

        From then on score-cache misses fall through to the table and
        every computed score is published to it, so concurrent workers
        serve each other mid-job.  Values are deterministic per
        structural key, so attaching a table never changes results.
        """
        self._score_table = table
        if self._score_cache is not None:
            self._score_cache.attach_table(table)

    @property
    def remote_tier(self) -> Any:
        """The attached L4 network score tier (None when serving offline)."""
        return self._remote_tier

    def attach_remote_tier(self, remote: Any) -> None:
        """Attach an L4 network score tier (``repro.serving.cache_tier``).

        Misses that fall through every local tier then consult the remote
        score pool, and computed scores are pushed back asynchronously.
        Like the L2 table, values are deterministic per structural key, so
        attaching (or losing) the tier never changes results — only how
        much local work is skipped.
        """
        self._remote_tier = remote
        if self._score_cache is not None:
            self._score_cache.attach_remote(remote)

    # ------------------------------------------------------------------
    def build_fitness(
        self,
        target: Optional[Program] = None,
        executor: Optional[ExecutionEngine] = None,
        caches: Optional[dict] = None,
    ) -> FitnessFunction:
        """Construct the fitness function configured for Phase 2.

        ``executor`` is the run's shared execution engine; passing it lets
        the fitness reuse executions cached by the GA's solution check
        (and vice versa).  ``caches`` (keys ``score``/``sample``/``map``)
        overrides the backend-lifetime fitness caches — the fused-serving
        path passes job-private instances so concurrent jobs never share
        counter objects (see :meth:`_private_fitness_caches`).
        """
        cfg = self.config
        kind = cfg.fitness_kind
        if kind in ("cf", "lcs"):
            if self._trace_artifacts is None:
                raise RuntimeError("call fit() before synthesize(): the trace model is untrained")
            if caches is not None:
                score_cache = caches["score"] if cfg.memoize_scores else None
                sample_cache = caches["sample"]
            else:
                if cfg.memoize_scores and self._score_cache is None:
                    self._score_cache = TieredScoreCache(
                        capacity=cfg.score_cache_size,
                        namespace=f"score:nnff_{kind}",
                        table=self._score_table,
                        remote=self._remote_tier,
                    )
                if self._sample_cache is None:
                    self._sample_cache = LRUCache(cfg.sample_cache_size)
                score_cache = self._score_cache
                sample_cache = self._sample_cache
            return LearnedTraceFitness(
                self._trace_artifacts.model,
                kind=kind,
                encoder=self._trace_artifacts.encoder,
                executor=executor,
                memoize=cfg.memoize_scores,
                score_cache=score_cache,
                sample_cache=sample_cache,
                program_length=cfg.program_length,
            )
        if kind == "fp":
            if self._fp_artifacts is None:
                raise RuntimeError("call fit() before synthesize(): the FP model is untrained")
            return ProbabilityMapFitness(
                self._fp_artifacts.model,
                encoder=self._fp_artifacts.encoder,
                executor=executor,
                cache_tag="fp",
                map_cache=caches["map"] if caches is not None else self._fp_map_cache(),
            )
        if kind == "edit":
            return EditDistanceFitness(executor=executor)
        if kind in ("oracle_cf", "oracle_lcs"):
            if target is None:
                raise ValueError("oracle fitness requires the target program")
            return OracleFitness(target, kind=kind.split("_", 1)[1], executor=executor)
        raise ValueError(f"unknown fitness kind {kind!r}")

    def _fp_map_cache(self) -> LRUCache:
        """The backend-lifetime probability-map LRU (built on first use)."""
        if self._map_cache is None:
            self._map_cache = LRUCache(self.config.map_cache_size)
        return self._map_cache

    def _fp_fitness_for_mutation(
        self,
        executor: Optional[ExecutionEngine] = None,
        caches: Optional[dict] = None,
    ) -> Optional[ProbabilityMapFitness]:
        if not self.config.fp_guided_mutation or self._fp_artifacts is None:
            return None
        return ProbabilityMapFitness(
            self._fp_artifacts.model,
            encoder=self._fp_artifacts.encoder,
            executor=executor,
            cache_tag="fp",
            map_cache=caches["map"] if caches is not None else self._fp_map_cache(),
        )

    def _private_fitness_caches(self) -> dict:
        """Fresh fitness caches for one fused job.

        Concurrent fused jobs must not share :class:`CacheStats` objects
        (per-generation events report counter *deltas*, which would
        otherwise include sibling activity).  Sharing the instances is
        also unnecessary for warmth: every fitness cache key includes the
        IO key, and fused jobs have pairwise-distinct IO sets, so one
        job's entries can never answer another's lookups.  The L2 table
        and L4 remote tier still attach — those are cross-process tiers
        whose counters are documented advisory.  Entries merge back into
        the backend-lifetime caches via :meth:`merge_fused_cache`.
        """
        cfg = self.config
        return {
            "score": TieredScoreCache(
                capacity=cfg.score_cache_size,
                namespace=f"score:nnff_{cfg.fitness_kind}",
                table=self._score_table,
                remote=self._remote_tier,
            ),
            "sample": LRUCache(cfg.sample_cache_size),
            "map": LRUCache(cfg.map_cache_size),
        }

    # ------------------------------------------------------------------
    def solve_io(
        self,
        io_set: IOSet,
        target: Optional[Program] = None,
        budget: Optional[SearchBudget] = None,
        seed: Optional[int] = None,
        task_id: str = "",
        listener: Optional[ProgressListener] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> SynthesisResult:
        """Phase 2: search for a program satisfying ``io_set``.

        Parameters
        ----------
        io_set:
            The input-output specification.
        target:
            The hidden target program; only required for oracle fitness
            kinds (and used purely for scoring, never for early exit).
        budget:
            Candidate budget; defaults to ``config.max_search_space``.
        seed:
            Per-run seed (the paper repeats each task K times with
            different random seeds).
        listener:
            Optional progress-event consumer; per-generation events are
            enriched with this backend's method name and ``task_id``.
        """
        cfg = self.config
        if not self._fitted and (self.needs_trace_model or self.needs_fp_model):
            raise RuntimeError("call fit() (or set_models()) before synthesize()")
        budget = budget or SearchBudget(limit=cfg.max_search_space)
        run_factory = self._factory if seed is None else RngFactory(seed)

        # One execution engine shared by the GA solution check, every
        # fitness evaluation and the neighborhood search, so each candidate
        # is interpreted at most once per specification.  With
        # ``share_evaluation_cache`` the engine also persists across this
        # backend's runs (fit-once-serve-many sessions re-solve the same
        # specs with different seeds): every cached value is deterministic
        # per (program, io_set), so reuse cannot change results.
        caches = None
        if executor is None:
            if cfg.share_evaluation_cache:
                if self._shared_executor is None:
                    self._shared_executor = self._make_executor()
                executor = self._shared_executor
            else:
                executor = self._make_executor()
        else:
            # explicit engine = a fused job: give it private fitness
            # caches too, so concurrent jobs never share counter objects
            # (the session merges them back after the group joins)
            caches = self._private_fitness_caches()
            executor._fitness_caches = caches
        fitness = self.build_fitness(target=target, executor=executor, caches=caches)
        fp_fitness = self._fp_fitness_for_mutation(executor=executor, caches=caches)

        operators = GeneOperators(
            program_length=cfg.program_length,
            rng=run_factory.get("operators"),
        )
        neighborhood = None
        if cfg.neighborhood.enabled:
            neighborhood = NeighborhoodSearch(
                config=cfg.neighborhood,
                fitness=fitness,
                interpreter=Interpreter(trace=False),
                executor=executor,
            )

        # When FP mutation is enabled but the main fitness cannot provide a
        # probability map, wrap the fitness so the engine sees the FP map.
        engine_fitness = fitness
        if fp_fitness is not None and fitness.probability_map(io_set) is None:
            engine_fitness = _WithProbabilityMap(fitness, fp_fitness)

        engine = GeneticAlgorithm(
            fitness=engine_fitness,
            operators=operators,
            config=cfg.ga,
            neighborhood=neighborhood,
            fp_guided_mutation=cfg.fp_guided_mutation,
            rng=run_factory.get("engine"),
            interpreter=Interpreter(trace=False),
            executor=executor,
        )

        engine_listener = None
        if listener is not None:

            def engine_listener(event):
                event.method = self.name
                event.task_id = task_id
                listener(event)

        with Stopwatch() as stopwatch:
            evolution = engine.run(io_set, budget, listener=engine_listener)

        return SynthesisResult(
            found=evolution.found,
            program=evolution.program,
            candidates_used=evolution.candidates_used,
            budget_limit=budget.limit,
            generations=evolution.generations,
            wall_time_seconds=stopwatch.elapsed,
            found_by=evolution.found_by,
            method=self.name,
            task_id=task_id,
            neighborhood_invocations=evolution.neighborhood_invocations,
            average_fitness_history=evolution.average_fitness_history,
            best_fitness_history=evolution.best_fitness_history,
        )

    # ------------------------------------------------------------------
    def solve(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> SynthesisResult:
        """Synthesize one task through the unified backend protocol.

        ``executor`` overrides the backend's engine selection for this
        call only (the fused-serving path passes a per-job
        :class:`~repro.execution.FusedBatchEngine` here); ``None`` keeps
        the usual run-shared engine.
        """
        budget = budget or SearchBudget(limit=self.config.max_search_space)
        self._start_events(task, budget, listener)
        result = self.solve_io(
            task.io_set,
            target=task.target,
            budget=budget,
            seed=seed,
            task_id=task.task_id,
            listener=listener,
            executor=executor,
        )
        self._finish_events(task, result, listener)
        return result

    # ------------------------------------------------------------------
    def supports_fusion(self) -> bool:
        """True when populations evaluate on the columnar batch path —
        the precondition for cross-job dispatch fusion."""
        return bool(self.config.vectorized)

    def fused_executor(self, plane: "FusionPlane", token: int) -> "FusedBatchEngine":
        """A per-job engine whose population batches ride ``plane``.

        Reads fall through to this backend's shared evaluation cache (so
        fused jobs start as warm as serial ones); writes stay job-private
        until :meth:`merge_fused_cache` replays them after the job
        settled.
        """
        base = None
        if self.config.share_evaluation_cache:
            if self._shared_executor is None:
                self._shared_executor = self._make_executor()
            base = self._shared_executor.cache
        return FusedBatchEngine(plane, token, base_cache=base)

    def merge_fused_cache(self, engine: "FusedBatchEngine") -> int:
        """Fold a fused job's private caches back into the backend.

        Evaluation-cache writes replay into the shared engine (when
        sharing is on); the job-private fitness caches merge into the
        backend-lifetime ones so later runs stay warm.  Values are
        deterministic per key, so merging is idempotent and
        order-independent across the group's jobs (their keys are
        disjoint anyway).  Returns the number of evaluation entries
        merged.
        """
        merged = 0
        if self.config.share_evaluation_cache:
            if self._shared_executor is None:
                self._shared_executor = self._make_executor()
            merged = engine.merge_into(self._shared_executor.cache)
        caches = getattr(engine, "_fitness_caches", None)
        if caches is not None:
            cfg = self.config
            if cfg.memoize_scores and len(caches["score"]):
                if self._score_cache is None:
                    self._score_cache = TieredScoreCache(
                        capacity=cfg.score_cache_size,
                        namespace=f"score:nnff_{cfg.fitness_kind}",
                        table=self._score_table,
                        remote=self._remote_tier,
                    )
                self._score_cache.load_snapshot(caches["score"].snapshot())
            if len(caches["sample"]):
                if self._sample_cache is None:
                    self._sample_cache = LRUCache(cfg.sample_cache_size)
                self._sample_cache.load(caches["sample"].items())
            if len(caches["map"]):
                self._fp_map_cache().load(caches["map"].items())
        return merged


class NetSyn:
    """Deprecated facade over :class:`NetSynBackend`.

    Kept so ``NetSyn(config).fit().synthesize(io_set)`` works exactly as
    before (bit-identical results); new code should use
    :class:`~repro.core.service.SynthesisService` /
    :class:`NetSynBackend` directly.
    """

    def __init__(self, config: Optional[NetSynConfig] = None) -> None:
        warnings.warn(
            "NetSyn is deprecated; use SynthesisService.open_session() or "
            "NetSynBackend instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.backend = NetSynBackend(config)

    # -- delegation ------------------------------------------------------
    @property
    def config(self) -> NetSynConfig:
        return self.backend.config

    @property
    def needs_trace_model(self) -> bool:
        return self.backend.needs_trace_model

    @property
    def needs_fp_model(self) -> bool:
        return self.backend.needs_fp_model

    @property
    def trace_artifacts(self) -> Optional[Phase1Artifacts]:
        return self.backend.trace_artifacts

    @property
    def fp_artifacts(self) -> Optional[Phase1Artifacts]:
        return self.backend.fp_artifacts

    def fit(self, *args, **kwargs) -> "NetSyn":
        self.backend.fit(*args, **kwargs)
        return self

    def set_models(self, *args, **kwargs) -> "NetSyn":
        self.backend.set_models(*args, **kwargs)
        return self

    def build_fitness(self, *args, **kwargs) -> FitnessFunction:
        return self.backend.build_fitness(*args, **kwargs)

    def synthesize(
        self,
        io_set: IOSet,
        target: Optional[Program] = None,
        budget: Optional[SearchBudget] = None,
        seed: Optional[int] = None,
        task_id: str = "",
    ) -> SynthesisResult:
        """Phase 2 search (old entry point; see :meth:`NetSynBackend.solve_io`)."""
        return self.backend.solve_io(
            io_set, target=target, budget=budget, seed=seed, task_id=task_id
        )


class _WithProbabilityMap(FitnessFunction):
    """Adapter combining a primary fitness with an FP model's probability map."""

    def __init__(self, primary: FitnessFunction, fp_fitness: ProbabilityMapFitness) -> None:
        self.primary = primary
        self.fp_fitness = fp_fitness
        self.name = primary.name
        self.provides_mutation_scores = getattr(primary, "provides_mutation_scores", False)

    def score(self, programs, io_set):
        return self.primary.score(programs, io_set)

    def mutation_scores(self, program, io_set):
        return self.primary.mutation_scores(program, io_set)

    def probability_map(self, io_set):
        return self.fp_fitness.probability_map(io_set)

    def cache_stats(self):
        return self.primary.cache_stats() + self.fp_fitness.cache_stats()