"""NetSyn core: Phase-1 model training and Phase-2 GA-based synthesis."""

from repro.ga.budget import SearchBudget, BudgetExhausted
from repro.core.result import SynthesisResult
from repro.core.phase1 import Phase1Artifacts, train_fp_model, train_trace_model
from repro.core.netsyn import NetSyn

__all__ = [
    "SearchBudget",
    "BudgetExhausted",
    "SynthesisResult",
    "Phase1Artifacts",
    "train_fp_model",
    "train_trace_model",
    "NetSyn",
]
