"""NetSyn core: Phase-1 model training, Phase-2 GA-based synthesis, and the
session/service layer that serves both behind the unified backend API."""

from repro.ga.budget import SearchBudget, BudgetExhausted
from repro.core.result import SynthesisResult
from repro.core.phase1 import (
    Phase1Artifacts,
    register_model_builder,
    train_fp_model,
    train_trace_model,
)
from repro.core.artifacts import ARTIFACT_NAMES, ArtifactStore, MissingArtifactError
from repro.core.backend import SynthesisBackend
from repro.core.netsyn import NetSyn, NetSynBackend
from repro.core.service import (
    JobState,
    SynthesisJob,
    SynthesisService,
    SynthesisSession,
)
from repro.core.supervisor import FailureReport, WorkerSupervisor

__all__ = [
    "SearchBudget",
    "BudgetExhausted",
    "SynthesisResult",
    "Phase1Artifacts",
    "register_model_builder",
    "train_fp_model",
    "train_trace_model",
    "ARTIFACT_NAMES",
    "ArtifactStore",
    "MissingArtifactError",
    "SynthesisBackend",
    "NetSyn",
    "NetSynBackend",
    "JobState",
    "SynthesisJob",
    "SynthesisService",
    "SynthesisSession",
    "FailureReport",
    "WorkerSupervisor",
]
