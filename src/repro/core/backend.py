"""The unified synthesis backend protocol.

Every synthesis method in this repository — NetSyn's GA variants and the
four baselines (DeepCoder, PCCoder, RobustFill, PushGP) — implements one
interface: :class:`SynthesisBackend`.  A backend

* declares which Phase-1 artifacts it ``requires`` (by canonical name),
* can be ``bind()``-ed to an :class:`~repro.core.artifacts.ArtifactStore`
  holding those artifacts, and
* ``solve()``-s one :class:`~repro.data.tasks.SynthesisTask` under a
  :class:`~repro.ga.budget.SearchBudget`, optionally streaming
  :class:`~repro.events.ProgressEvent`\\ s to a listener.

The service layer (:mod:`repro.core.service`) schedules jobs over
backends; the old ``Synthesizer`` ABC in :mod:`repro.baselines.base` is a
subclass of this protocol, so every pre-existing method participates
without per-method glue.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.core.result import SynthesisResult
from repro.data.tasks import SynthesisTask
from repro.events import ProgressEvent, ProgressListener
from repro.ga.budget import SearchBudget


def attach_candidate_listener(
    budget: SearchBudget,
    listener: ProgressListener,
    method: str = "",
    task_id: str = "",
    every: int = 50,
) -> None:
    """Emit a ``"candidates"`` event every ``every`` budget charges.

    Installed on the budget's ``on_charge`` hook, this gives *every*
    backend — including the enumerative baselines that have no generation
    loop — a uniform progress stream keyed to the paper's search-space
    metric.  Any previously installed hook keeps firing first.
    """
    every = max(1, int(every))
    state = {"next": every}
    previous = budget.on_charge

    def hook(charged_budget: SearchBudget) -> None:
        if previous is not None:
            previous(charged_budget)
        if charged_budget.used >= state["next"] or charged_budget.exhausted:
            state["next"] = charged_budget.used + every
            listener(
                ProgressEvent(
                    kind="candidates",
                    method=method,
                    task_id=task_id,
                    candidates_used=charged_budget.used,
                    budget_limit=charged_budget.limit,
                )
            )

    budget.on_charge = hook


class SynthesisBackend(abc.ABC):
    """One program-synthesis method behind the uniform service API."""

    #: registry name of the method (e.g. ``"deepcoder"``, ``"netsyn_cf"``)
    name: str = "backend"
    #: canonical names of the Phase-1 artifacts this backend needs
    requires: Tuple[str, ...] = ()
    #: budget charges between two ``"candidates"`` progress events
    progress_every: int = 50
    #: budget limit used when ``solve`` is called without a budget
    default_budget_limit: int = 10_000

    # ------------------------------------------------------------------
    def bind(self, store) -> "SynthesisBackend":
        """Attach Phase-1 artifacts from ``store``; no-op for model-free
        backends.  Returns ``self`` for chaining."""
        return self

    @abc.abstractmethod
    def solve(
        self,
        task: SynthesisTask,
        budget: Optional[SearchBudget] = None,
        seed: int = 0,
        listener: Optional[ProgressListener] = None,
    ) -> SynthesisResult:
        """Synthesize ``task`` within ``budget`` candidates.

        ``listener`` receives the progress-event stream documented in
        :mod:`repro.events`; passing one never changes the (seeded)
        search outcome.  A listener may raise
        :class:`~repro.events.JobCancelled` to abandon the run.
        """

    # ------------------------------------------------------------------
    def _start_events(
        self,
        task: SynthesisTask,
        budget: SearchBudget,
        listener: Optional[ProgressListener],
    ) -> None:
        """Emit ``"started"`` and install the per-candidate budget hook."""
        if listener is None:
            return
        listener(
            ProgressEvent(
                kind="started", method=self.name, task_id=task.task_id, budget_limit=budget.limit
            )
        )
        attach_candidate_listener(
            budget, listener, method=self.name, task_id=task.task_id, every=self.progress_every
        )

    def _finish_events(
        self,
        task: SynthesisTask,
        result: SynthesisResult,
        listener: Optional[ProgressListener],
    ) -> None:
        if listener is None:
            return
        listener(
            ProgressEvent(
                kind="finished",
                method=self.name,
                task_id=task.task_id,
                candidates_used=result.candidates_used,
                budget_limit=result.budget_limit,
                found=result.found,
                found_by=result.found_by,
            )
        )
