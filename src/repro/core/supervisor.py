"""Supervised parallel execution: the fault-tolerant worker pool.

``multiprocessing.Pool.map`` — the fan-out the session layer used before
this module — has no failure story: a worker killed mid-job (OOM,
segfault, SIGKILL) loses its task forever and the map blocks until the
end of time, a job that reliably crashes its worker is retried nowhere,
and a job that silently spins can only be stopped by killing the whole
run.  :class:`WorkerSupervisor` replaces the pool with explicitly managed
worker processes and adds the failure discipline a serving layer needs:

* **Liveness.**  Every worker runs a daemon heartbeat thread that emits
  ``"heartbeat"`` events through the session's existing event queue; the
  supervisor watches process sentinels (a dead worker is detected within
  one tick) *and* heartbeat recency (a live-but-frozen worker is detected
  within ``heartbeat_timeout`` and hard-killed).  Jobs whose claim died
  with a worker that never reported starting — the claim/report window —
  are recovered once the pool has been quiet for an orphan grace period.
* **Retry with backoff.**  A job whose worker died is requeued with
  seeded exponential backoff and jitter, up to
  ``ServiceConfig.max_job_retries`` times.  Job results are deterministic
  functions of their spec (seed travels with the job, never the worker),
  so a retried job that completes produces exactly the result the first
  attempt would have.
* **Quarantine.**  A poison job — one that kills every worker that runs
  it — exhausts its retries and ends ``failed`` with a structured
  :class:`FailureReport`; the run continues for every healthy job.
* **Deadlines.**  With ``ServiceConfig.job_deadline`` set, an overdue job
  is first cancelled cooperatively through the shared cancellation-flag
  array (the same flag ``job.cancel()`` raises); a worker that ignores
  the flag past ``deadline_grace`` is hard-killed.  Either way the job
  ends ``failed`` with a ``deadline`` report — deadline overruns are not
  retried.
* **Degradation.**  When the pool accumulates more than
  ``ServiceConfig.max_pool_crashes`` worker crashes, the supervisor stops
  feeding it, kills the survivors, and hands the remaining jobs back to
  the session to run serially in the parent (``"degraded_serial"``) —
  slower, but immune to whatever was killing the workers.

With no faults and default knobs the supervisor is pure bookkeeping on
the parent side: jobs run in the same worker function
(``_run_service_job``) with the same payload, emitter and cancellation
flags as the pool path, so seeded parallel runs remain event-for-event
identical to serial ones.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import ServiceConfig
from repro.events import ProgressEvent
from repro.utils.logging import get_logger

logger = get_logger("core.supervisor")

#: supervisor poll tick: how often worker death / deadlines / heartbeats
#: are re-checked while waiting for results
_TICK = 0.02


@dataclass
class FailureReport:
    """Structured post-mortem of a job the supervisor gave up on."""

    job_id: str
    #: "crash" (worker died, retries exhausted), "deadline" (wall-clock
    #: deadline exceeded), or "hung" (worker stopped heartbeating and the
    #: job's retries were exhausted)
    kind: str
    #: how many times the job was started in total
    attempts: int
    message: str = ""
    #: ids of the workers that died running this job, in order
    worker_ids: Tuple[int, ...] = ()
    #: wall-clock seconds from first start to the terminal decision
    elapsed: float = 0.0

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "worker_ids": list(self.worker_ids),
            "elapsed": self.elapsed,
        }

    def __str__(self) -> str:
        return (
            f"{self.kind} after {self.attempts} attempt(s): {self.message}"
            if self.message
            else f"{self.kind} after {self.attempts} attempt(s)"
        )


@dataclass
class SupervisedOutcome:
    """Terminal per-job record the session applies after a supervised run."""

    #: "ok" | "cancelled" | "failed" | "pending_serial" (degraded runs
    #: hand unfinished jobs back to the session's serial path)
    status: str
    result: Any = None
    error: Optional[str] = None
    #: events the final attempt emitted (what the settle phase waits for)
    n_events: int = 0
    cache_delta: Optional[dict] = None
    failure: Optional[FailureReport] = None
    #: worker crashes this job survived (its stream may hold partial
    #: attempts, so the settle phase must not wait for exact counts)
    crashes: int = 0
    attempts: int = 1


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _heartbeat_loop(worker_id: int, event_queue: Any, interval: float,
                    stop: threading.Event) -> None:
    """Emit one ``"heartbeat"`` event per interval until told to stop."""
    while not stop.wait(interval):
        try:
            event_queue.put((-1, ProgressEvent(kind="heartbeat", worker_id=worker_id)))
        except Exception:  # noqa: BLE001 - queue torn down: stop beating
            return


def _supervised_worker_main(
    worker_id: int,
    seed: int,
    payload: Any,
    task_queue: Any,
    result_queue: Any,
    event_queue: Any,
    cancel_flags: Any,
    heartbeat_interval: float,
    fault_plan: Any,
) -> None:
    """One supervised worker: claim specs, run them, report outcomes.

    Reuses the pool path's per-process initialization
    (:func:`repro.evaluation.runner._parallel_worker_init`) and job
    function (:func:`repro.core.service._run_service_job`) verbatim, so a
    supervised job is bit-identical to a pool or serial job.  Lifecycle
    messages (``started`` / ``outcome``) travel a dedicated result queue;
    progress events and heartbeats travel the session's event queue.
    """
    from repro.core.service import _run_service_job
    from repro.evaluation.runner import _parallel_worker_init
    from repro.execution import faults

    faults.install(fault_plan, role="worker")
    stop = threading.Event()
    if event_queue is not None and heartbeat_interval > 0:
        # beat from the first instant: payload resolution below can be
        # slow (model weights), and a worker must look alive throughout
        threading.Thread(
            target=_heartbeat_loop,
            args=(worker_id, event_queue, heartbeat_interval, stop),
            name=f"netsyn-heartbeat-{worker_id}",
            daemon=True,
        ).start()
    _parallel_worker_init(seed, payload, event_queue, cancel_flags)
    try:
        while True:
            item = task_queue.get()
            if item is None:
                return
            spec, attempt = item
            job_index, job_id = spec[0], spec[1]
            result_queue.put(("started", worker_id, job_index, attempt))
            target = f"{job_id}:{attempt}"
            faults.fire("worker_start", target=target)
            outcome = _run_service_job(spec)
            faults.fire("pre_merge", target=target)
            result_queue.put(("outcome", worker_id, job_index, attempt, outcome))
    finally:
        stop.set()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class WorkerSupervisor:
    """Runs one batch of job specs over supervised worker processes.

    Parameters
    ----------
    n_workers:
        Target pool size (capped at the number of specs).
    config:
        The session's :class:`~repro.config.ServiceConfig` (retry,
        heartbeat, deadline and degradation knobs).
    seed:
        Session seed; with the fault plan's seed it derives the
        deterministic retry jitter and the per-worker RNG init.
    payload / event_queue / cancel_flags:
        Exactly what the pool path ships: the worker payload descriptor,
        the streaming event queue (or None) and the shared per-job
        cancellation-flag array.
    emit:
        Callback receiving supervision :class:`ProgressEvent`\\ s
        (restarts, retries, quarantines, deadline and degradation
        events) for session-listener fan-out.
    """

    def __init__(
        self,
        n_workers: int,
        config: ServiceConfig,
        seed: int,
        payload: Any,
        event_queue: Any,
        cancel_flags: Any,
        emit: Optional[Callable[[ProgressEvent], None]] = None,
        context: Any = None,
    ) -> None:
        import multiprocessing

        self.config = config
        self.seed = int(seed)
        self.payload = payload
        self.event_queue = event_queue
        self.cancel_flags = cancel_flags
        self._emit_cb = emit
        self._context = context or multiprocessing.get_context()
        self.n_workers = int(n_workers)
        self.degraded = False
        self.total_crashes = 0
        #: worker_id -> {"process", "job": None | (job_index, attempt, t0),
        #:               "kill_reason": str}
        self._workers: Dict[int, dict] = {}
        #: worker_id -> last heartbeat (monotonic); fed by the event pump
        self._heartbeats: Dict[int, float] = {}
        self._next_worker_id = 0
        self._task_queue: Any = None
        self._result_queue: Any = None

    # ------------------------------------------------------------------
    def observe_control(self, event: ProgressEvent) -> None:
        """Hook the event pump calls with control-channel events."""
        if event.kind == "heartbeat" and event.worker_id >= 0:
            self._heartbeats[event.worker_id] = time.monotonic()

    def _emit(self, kind: str, *, job_index: Optional[int] = None,
              worker_id: int = -1, attempt: int = 0, reason: str = "") -> None:
        if self._emit_cb is None:
            return
        event = ProgressEvent(
            kind=kind, worker_id=worker_id, attempt=attempt, reason=reason
        )
        if job_index is not None:
            spec = self._specs[job_index]
            event.job_id = spec[1]
            event.method = spec[2]
            event.task_id = spec[4].task_id
        try:
            self._emit_cb(event)
        except Exception:  # noqa: BLE001 - supervision must survive listeners
            logger.exception("supervision listener failed on %s", kind)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[Tuple]) -> List[SupervisedOutcome]:
        """Execute every spec to a terminal outcome (never hangs).

        Returns one :class:`SupervisedOutcome` per spec, in spec order.
        On degradation, unfinished jobs come back ``pending_serial`` for
        the caller to run in-process.
        """
        self._specs = list(specs)
        n = len(self._specs)
        self._outcomes: List[Optional[SupervisedOutcome]] = [None] * n
        self._attempts = [0] * n
        self._crashes = [0] * n
        self._crash_workers: List[List[int]] = [[] for _ in range(n)]
        self._first_start = [0.0] * n
        self._deadline_fired = [False] * n
        self._deadline_kill_at = [0.0] * n
        #: retries waiting out their backoff: (due_time, job_index)
        self._delayed: List[Tuple[float, int]] = []
        self._queued = 0  # specs handed to the task queue, not yet started

        self._task_queue = self._context.Queue()
        self._result_queue = self._context.Queue()
        for index in range(n):
            self._enqueue(index)
        for _ in range(min(self.n_workers, max(1, n))):
            self._spawn_worker()
        try:
            self._supervise()
        finally:
            self._shutdown()
        if self.degraded:
            for index in range(n):
                if self._outcomes[index] is None:
                    self._outcomes[index] = SupervisedOutcome(
                        status="pending_serial",
                        crashes=self._crashes[index],
                        attempts=self._attempts[index],
                    )
        return [outcome for outcome in self._outcomes]  # all set by now

    # ------------------------------------------------------------------
    def _enqueue(self, job_index: int) -> None:
        self._task_queue.put((self._specs[job_index], self._attempts[job_index]))
        self._attempts[job_index] += 1
        self._queued += 1

    def _spawn_worker(self) -> int:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self._context.Process(
            target=_supervised_worker_main,
            args=(
                worker_id,
                self.seed,
                self.payload,
                self._task_queue,
                self._result_queue,
                self.event_queue,
                self.cancel_flags,
                self.config.heartbeat_interval,
                self.config.fault_plan,
            ),
            name=f"netsyn-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = {"process": process, "job": None, "kill_reason": ""}
        self._heartbeats[worker_id] = time.monotonic()
        return worker_id

    def _pending(self) -> int:
        return sum(1 for outcome in self._outcomes if outcome is None)

    def _backoff(self, job_index: int, attempt: int) -> float:
        base = self.config.retry_backoff * (2 ** max(0, attempt - 1))
        delay = min(base, self.config.retry_backoff_max)
        plan_seed = getattr(self.config.fault_plan, "seed", 0) or 0
        rng = random.Random((self.seed * 1_000_003 + plan_seed) ^ (job_index << 17) ^ attempt)
        return delay * (1.0 + self.config.retry_jitter * rng.random())

    # ------------------------------------------------------------------
    def _supervise(self) -> None:
        from queue import Empty

        # how long a fully quiet pool (idle workers, nothing draining, no
        # scheduled retries, jobs still unaccounted) is trusted before the
        # unaccounted jobs are declared orphaned.  A worker silent that
        # long is dead by the heartbeat policy anyway, so re-enqueuing
        # cannot double-run a job that is merely slow.
        if self.event_queue is not None:
            orphan_grace = max(2.0, self.config.heartbeat_timeout)
        else:
            orphan_grace = 5.0
        last_progress = time.monotonic()
        while self._pending() > 0:
            now = time.monotonic()
            # release retries whose backoff expired
            if self._delayed:
                due = [j for (t, j) in self._delayed if t <= now]
                self._delayed = [(t, j) for (t, j) in self._delayed if t > now]
                for job_index in due:
                    self._emit(
                        "job_retry",
                        job_index=job_index,
                        attempt=self._attempts[job_index],
                        reason="backoff_elapsed",
                    )
                    self._enqueue(job_index)
                if due:
                    last_progress = now
            # drain every queued lifecycle message
            drained = False
            try:
                self._handle(self._result_queue.get(timeout=_TICK))
                drained = True
                while True:
                    self._handle(self._result_queue.get_nowait())
            except Empty:
                pass
            if drained:
                last_progress = time.monotonic()
            crashes_before = self.total_crashes
            self._reap_dead_workers()
            self._check_deadlines()
            self._check_heartbeats()
            if self.total_crashes != crashes_before:
                last_progress = time.monotonic()
            if self.total_crashes > self.config.max_pool_crashes:
                self._degrade()
                return
            if not drained and not self._workers and self._pending() > 0 and not self._delayed:
                # every worker is gone and nothing is scheduled: degrade
                # rather than spin forever (can only happen when spawns
                # fail or the crash budget exactly drained the pool)
                self._degrade()  # pragma: no cover - defensive
                return
            if (
                not drained
                and not self._delayed
                and self._pending() > 0
                and all(
                    state["job"] is None and not state["kill_reason"]
                    for state in self._workers.values()
                )
                and time.monotonic() - last_progress > orphan_grace
            ):
                self._recover_orphans()
                last_progress = time.monotonic()

    def _recover_orphans(self) -> None:
        """Requeue jobs whose task-queue claim died with an unreported worker.

        A worker can die (or freeze) in the window between claiming a
        task and its ``started`` message reaching the parent; from here
        that worker looked idle, so its death attributed no job loss and
        the job would otherwise wait forever.  When the pool has been
        fully quiet for the orphan grace period — every live worker idle,
        no retries scheduled, nothing draining — any job still without an
        outcome can only be such an orphan (an idle worker claims a
        genuinely queued task within milliseconds), so each one re-enters
        the normal lost-job path: backoff retry, or quarantine once its
        retries are spent.
        """
        for job_index in range(len(self._specs)):
            if self._outcomes[job_index] is None and not self._deadline_fired[job_index]:
                logger.warning(
                    "job %s orphaned (claimed by a worker that died unreported); recovering",
                    self._specs[job_index][1],
                )
                self._job_lost(job_index, worker_id=-1, reason="orphaned")
            elif self._outcomes[job_index] is None:
                self._outcomes[job_index] = self._deadline_outcome(job_index)

    def _handle(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "started":
            _, worker_id, job_index, attempt = message
            state = self._workers.get(worker_id)
            if state is not None:
                state["job"] = (job_index, attempt, time.monotonic())
            self._queued -= 1
            self._heartbeats[worker_id] = time.monotonic()
            if self._first_start[job_index] == 0.0:
                self._first_start[job_index] = time.monotonic()
        elif kind == "outcome":
            _, worker_id, job_index, attempt, outcome = message
            state = self._workers.get(worker_id)
            if state is not None:
                state["job"] = None
            self._heartbeats[worker_id] = time.monotonic()
            if self._outcomes[job_index] is not None:
                return  # stale duplicate from a raced retry
            status, result, error, n_events, delta = outcome
            if status == "cancelled" and self._deadline_fired[job_index]:
                # the cancellation the worker observed was the deadline
                # enforcement, not a user request
                self._outcomes[job_index] = self._deadline_outcome(
                    job_index, n_events=n_events, delta=delta
                )
                return
            self._outcomes[job_index] = SupervisedOutcome(
                status=status,
                result=result,
                error=error,
                n_events=n_events,
                cache_delta=delta,
                crashes=self._crashes[job_index],
                attempts=self._attempts[job_index],
            )

    def _deadline_outcome(self, job_index: int, n_events: int = 0,
                          delta: Optional[dict] = None) -> SupervisedOutcome:
        spec = self._specs[job_index]
        report = FailureReport(
            job_id=spec[1],
            kind="deadline",
            attempts=self._attempts[job_index],
            message=f"exceeded the {self.config.job_deadline:.1f}s wall-clock deadline",
            worker_ids=tuple(self._crash_workers[job_index]),
            elapsed=time.monotonic() - self._first_start[job_index]
            if self._first_start[job_index]
            else 0.0,
        )
        return SupervisedOutcome(
            status="failed",
            error=str(report),
            n_events=n_events,
            cache_delta=delta,
            failure=report,
            crashes=self._crashes[job_index],
            attempts=self._attempts[job_index],
        )

    # ------------------------------------------------------------------
    def _reap_dead_workers(self) -> None:
        dead = [
            (worker_id, state)
            for worker_id, state in self._workers.items()
            if not state["process"].is_alive()
        ]
        for worker_id, state in dead:
            del self._workers[worker_id]
            self._heartbeats.pop(worker_id, None)
            reason = state["kill_reason"] or "worker_crash"
            job = state["job"]
            self.total_crashes += 1
            if job is not None:
                job_index, attempt, _t0 = job
                if self._outcomes[job_index] is None:
                    self._job_lost(job_index, worker_id, reason)
            # replace the worker while there is (or may be) work left
            if (
                not self.degraded
                and self.total_crashes <= self.config.max_pool_crashes
                and self._pending() > 0
            ):
                new_id = self._spawn_worker()
                self._emit(
                    "worker_restarted",
                    worker_id=new_id,
                    reason=reason,
                    job_index=job[0] if job is not None else None,
                )
                logger.warning(
                    "worker %d died (%s); restarted as worker %d",
                    worker_id, reason, new_id,
                )

    def _job_lost(self, job_index: int, worker_id: int, reason: str) -> None:
        """A worker died while running ``job_index``: retry or give up."""
        self._crashes[job_index] += 1
        self._crash_workers[job_index].append(worker_id)
        spec = self._specs[job_index]
        if self._deadline_fired[job_index]:
            self._outcomes[job_index] = self._deadline_outcome(job_index)
            return
        attempt = self._attempts[job_index]  # attempts already started
        if attempt > self.config.max_job_retries:
            report = FailureReport(
                job_id=spec[1],
                kind="hung" if reason == "heartbeat_timeout" else "crash",
                attempts=attempt,
                message=(
                    f"worker died ({reason}) on every attempt; "
                    f"quarantined after {attempt} attempt(s)"
                ),
                worker_ids=tuple(self._crash_workers[job_index]),
                elapsed=time.monotonic() - self._first_start[job_index]
                if self._first_start[job_index]
                else 0.0,
            )
            self._outcomes[job_index] = SupervisedOutcome(
                status="failed",
                error=str(report),
                failure=report,
                crashes=self._crashes[job_index],
                attempts=attempt,
            )
            self._emit(
                "job_quarantined",
                job_index=job_index,
                worker_id=worker_id,
                attempt=attempt,
                reason=reason,
            )
            return
        delay = self._backoff(job_index, attempt)
        self._delayed.append((time.monotonic() + delay, job_index))
        logger.info(
            "job %s lost to %s (attempt %d); retrying in %.3fs",
            spec[1], reason, attempt, delay,
        )

    def _check_deadlines(self) -> None:
        deadline = self.config.job_deadline
        if deadline is None:
            return
        now = time.monotonic()
        for worker_id, state in list(self._workers.items()):
            job = state["job"]
            if job is None:
                continue
            job_index, _attempt, started = job
            if self._outcomes[job_index] is not None:
                continue
            overdue = now - started - deadline
            if overdue <= 0:
                continue
            if not self._deadline_fired[job_index]:
                self._deadline_fired[job_index] = True
                self._deadline_kill_at[job_index] = now + self.config.deadline_grace
                if self.cancel_flags is not None:
                    self.cancel_flags[job_index] = 1
                self._emit(
                    "deadline_exceeded",
                    job_index=job_index,
                    worker_id=worker_id,
                    attempt=self._attempts[job_index],
                    reason=f"deadline {deadline:.1f}s",
                )
            elif now >= self._deadline_kill_at[job_index]:
                # the cooperative cancel went unheeded: hard kill; the
                # reaper converts the death into a deadline failure
                state["kill_reason"] = "deadline_kill"
                self._kill(state["process"])

    def _check_heartbeats(self) -> None:
        if self.event_queue is None:
            return  # heartbeats ride the event queue; without it rely on sentinels
        timeout = self.config.heartbeat_timeout
        now = time.monotonic()
        for worker_id, state in list(self._workers.items()):
            # idle workers are checked too: a worker frozen between
            # claiming a task and its "started" message reaching us looks
            # idle from here, and its heartbeat silence is the only tell
            if state["kill_reason"]:
                continue
            last = self._heartbeats.get(worker_id, now)
            if now - last > timeout:
                state["kill_reason"] = "heartbeat_timeout"
                logger.warning(
                    "worker %d silent for %.1fs; killing it", worker_id, now - last
                )
                self._kill(state["process"])

    @staticmethod
    def _kill(process: Any) -> None:
        try:
            process.kill()  # SIGKILL: also fells SIGSTOPped (frozen) workers
        except Exception:  # noqa: BLE001 - already gone
            pass

    def _degrade(self) -> None:
        self.degraded = True
        self._emit(
            "degraded_serial",
            reason=f"{self.total_crashes} worker crashes exceeded "
            f"max_pool_crashes={self.config.max_pool_crashes}",
        )
        logger.warning(
            "degrading to serial execution after %d worker crashes", self.total_crashes
        )

    def _shutdown(self) -> None:
        for _ in self._workers:
            try:
                self._task_queue.put(None)
            except Exception:  # noqa: BLE001 - queue already broken
                break
        deadline = time.monotonic() + 2.0
        for state in self._workers.values():
            state["process"].join(timeout=max(0.0, deadline - time.monotonic()))
        for state in self._workers.values():
            if state["process"].is_alive():
                self._kill(state["process"])
                state["process"].join(timeout=1.0)
        self._workers.clear()
        try:
            self._result_queue.close()
            self._task_queue.close()
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass
