"""Phase 1: generate training data and train the neural fitness models.

This module ties together the corpus builder (:mod:`repro.data.corpus`),
the datasets (:mod:`repro.fitness.datasets`), the models
(:mod:`repro.fitness.models`) and the trainer (:mod:`repro.nn.training`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import DSLConfig, NNConfig, TrainingConfig
from repro.data.corpus import CorpusBuilder
from repro.fitness.datasets import FunctionProbabilityDataset, TraceFitnessDataset
from repro.fitness.features import FeatureEncoder, FitnessSample
from repro.fitness.models import FunctionProbabilityModel, TraceFitnessModel
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer, TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RngFactory

logger = get_logger("core.phase1")


@dataclass
class Phase1Artifacts:
    """Everything produced by Phase 1 for one model."""

    model: object
    history: TrainingHistory
    encoder: FeatureEncoder
    validation_metrics: Dict[str, float] = field(default_factory=dict)


def train_trace_model(
    kind: str = "cf",
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    samples: Optional[List[FitnessSample]] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the CF or LCS trace fitness model.

    Parameters
    ----------
    kind:
        ``"cf"`` or ``"lcs"`` — which ideal fitness the model predicts.
    training, nn, dsl:
        Configuration blocks (defaults are the library defaults).
    samples:
        Pre-generated training samples; when omitted a fresh balanced
        corpus is generated from the configuration.
    """
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed)

    if samples is None:
        builder = CorpusBuilder(training=training, dsl=dsl)
        samples = builder.build_trace_samples(kind=kind)
    if not samples:
        raise ValueError("no training samples available")

    encoder = FeatureEncoder()
    dataset = TraceFitnessDataset(samples, encoder)
    train_set, val_set = dataset.split(training.validation_fraction, factory.get("trace-split"))

    n_classes = training.program_length + 1
    model = TraceFitnessModel(n_classes=n_classes, config=nn, rng=factory.get("trace-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("trace-batches"))
    history = trainer.fit(
        train_set,
        epochs=training.epochs,
        batch_size=training.batch_size,
        validation=val_set if len(val_set) else None,
        verbose=verbose,
    )
    validation_metrics = history.val_metrics[-1] if history.val_metrics else {}
    logger.info("trained %s trace model: %s", kind, history.last())
    return Phase1Artifacts(
        model=model, history=history, encoder=encoder, validation_metrics=validation_metrics
    )


def train_fp_model(
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    io_sets=None,
    memberships: Optional[np.ndarray] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the function-probability (FP) model from IO examples only."""
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed + 1)

    if io_sets is None or memberships is None:
        builder = CorpusBuilder(training=training, dsl=dsl)
        io_sets, memberships = builder.build_fp_data()
    if len(io_sets) == 0:
        raise ValueError("no training data available")

    encoder = FeatureEncoder()
    dataset = FunctionProbabilityDataset(io_sets, memberships, encoder)
    train_set, val_set = dataset.split(training.validation_fraction, factory.get("fp-split"))

    model = FunctionProbabilityModel(config=nn, rng=factory.get("fp-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("fp-batches"))
    history = trainer.fit(
        train_set,
        epochs=training.epochs,
        batch_size=training.batch_size,
        validation=val_set if len(val_set) else None,
        verbose=verbose,
    )
    validation_metrics = history.val_metrics[-1] if history.val_metrics else {}
    logger.info("trained FP model: %s", history.last())
    return Phase1Artifacts(
        model=model, history=history, encoder=encoder, validation_metrics=validation_metrics
    )
