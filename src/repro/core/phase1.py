"""Phase 1: generate training data and train the neural fitness models.

This module ties together the corpus builder (:mod:`repro.data.corpus`),
the datasets (:mod:`repro.fitness.datasets`), the models
(:mod:`repro.fitness.models`) and the trainer (:mod:`repro.nn.training`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.config import DSLConfig, NNConfig, TrainingConfig
from repro.data.corpus import CorpusBuilder
from repro.fitness.datasets import FunctionProbabilityDataset, TraceFitnessDataset
from repro.fitness.features import FeatureEncoder, FitnessSample
from repro.fitness.models import FunctionProbabilityModel, TraceFitnessModel
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer, TrainingHistory
from repro.utils.logging import get_logger
from repro.utils.rng import RngFactory
from repro.utils.serialization import PathLike, load_json, load_npz, save_json, save_npz

logger = get_logger("core.phase1")


# ---------------------------------------------------------------------------
# Model reconstruction registry (for Phase1Artifacts.load)
# ---------------------------------------------------------------------------

#: builders keyed by model class name: ``builder(model_meta, nn_config) -> Module``
_MODEL_BUILDERS: Dict[str, Callable[[dict, NNConfig], object]] = {}


def register_model_builder(name: str, builder: Callable[[dict, NNConfig], object]) -> None:
    """Register a constructor used to rebuild a persisted model by class name.

    The two core fitness models register themselves below; the baseline
    models (PCCoder step predictor, RobustFill decoder) register on import
    of their modules, which :meth:`Phase1Artifacts.load` triggers lazily.
    """
    _MODEL_BUILDERS[name] = builder


register_model_builder(
    "TraceFitnessModel",
    lambda meta, nn: TraceFitnessModel(n_classes=int(meta["n_classes"]), config=nn),
)
register_model_builder(
    "FunctionProbabilityModel",
    lambda meta, nn: FunctionProbabilityModel(config=nn, pos_weight=meta.get("pos_weight")),
)


def _build_model(class_name: str, model_meta: dict, nn: NNConfig):
    if class_name not in _MODEL_BUILDERS:
        # the step/decoder models live in repro.baselines and register on import
        import repro.baselines  # noqa: F401
    builder = _MODEL_BUILDERS.get(class_name)
    if builder is None:
        raise ValueError(
            f"cannot rebuild persisted model {class_name!r}; "
            f"registered: {sorted(_MODEL_BUILDERS)}"
        )
    return builder(model_meta, nn)


_ARTIFACTS_META = "artifacts.json"
_ARTIFACTS_WEIGHTS = "weights.npz"


@dataclass
class Phase1Artifacts:
    """Everything produced by Phase 1 for one model."""

    model: object
    history: TrainingHistory
    encoder: FeatureEncoder
    validation_metrics: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> None:
        """Persist model weights + metadata so a later process can reload.

        Weights go to ``weights.npz`` (lossless float64), everything needed
        to rebuild the model object — class name, architecture config,
        per-model extras, encoder settings, training history — to
        ``artifacts.json``.  :meth:`load` reverses this bit-exactly: the
        reloaded model produces identical fitness scores (tested in
        ``tests/test_service.py``).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        model = self.model
        model_meta: Dict[str, object] = {}
        if hasattr(model, "n_classes"):
            model_meta["n_classes"] = int(model.n_classes)
        if getattr(model, "pos_weight", None) is not None:
            model_meta["pos_weight"] = float(model.pos_weight)
        save_npz(directory / _ARTIFACTS_WEIGHTS, model.state_dict())
        save_json(
            directory / _ARTIFACTS_META,
            {
                "format_version": 1,
                "model_class": type(model).__name__,
                "nn_config": vars(model.config),
                "model_meta": model_meta,
                "encoder": {"max_value_length": self.encoder.max_value_length},
                "history": {
                    "train_loss": self.history.train_loss,
                    "train_metrics": self.history.train_metrics,
                    "val_metrics": self.history.val_metrics,
                },
                "validation_metrics": self.validation_metrics,
            },
        )

    @classmethod
    def load(
        cls,
        directory: PathLike,
        state: Optional[Dict[str, np.ndarray]] = None,
        copy: bool = True,
    ) -> "Phase1Artifacts":
        """Reload artifacts persisted by :meth:`save`.

        ``state`` overrides the weight source: shared-memory serving
        passes mmap-backed views of a packed segment (with ``copy=False``)
        so every worker process aliases one set of physical pages instead
        of materializing its own copy of ``weights.npz``.
        """
        directory = Path(directory)
        meta = load_json(directory / _ARTIFACTS_META)
        nn = NNConfig(**meta["nn_config"])
        model = _build_model(meta["model_class"], meta.get("model_meta", {}), nn)
        if state is None:
            state = load_npz(directory / _ARTIFACTS_WEIGHTS)
        model.load_state_dict(state, copy=copy)
        history_meta = meta.get("history", {})
        history = TrainingHistory(
            train_loss=list(history_meta.get("train_loss", [])),
            train_metrics=list(history_meta.get("train_metrics", [])),
            val_metrics=list(history_meta.get("val_metrics", [])),
        )
        encoder = FeatureEncoder(
            max_value_length=int(meta.get("encoder", {}).get("max_value_length", 16))
        )
        return cls(
            model=model,
            history=history,
            encoder=encoder,
            validation_metrics=dict(meta.get("validation_metrics", {})),
        )


def train_trace_model(
    kind: str = "cf",
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    samples: Optional[List[FitnessSample]] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the CF or LCS trace fitness model.

    Parameters
    ----------
    kind:
        ``"cf"`` or ``"lcs"`` — which ideal fitness the model predicts.
    training, nn, dsl:
        Configuration blocks (defaults are the library defaults).
    samples:
        Pre-generated training samples; when omitted a fresh balanced
        corpus is generated from the configuration.
    """
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed)

    if samples is None:
        builder = CorpusBuilder(training=training, dsl=dsl)
        samples = builder.build_trace_samples(kind=kind)
    if not samples:
        raise ValueError("no training samples available")

    encoder = FeatureEncoder()
    dataset = TraceFitnessDataset(samples, encoder)
    train_set, val_set = dataset.split(training.validation_fraction, factory.get("trace-split"))

    n_classes = training.program_length + 1
    model = TraceFitnessModel(n_classes=n_classes, config=nn, rng=factory.get("trace-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("trace-batches"))
    history = trainer.fit(
        train_set,
        epochs=training.epochs,
        batch_size=training.batch_size,
        validation=val_set if len(val_set) else None,
        verbose=verbose,
    )
    validation_metrics = history.val_metrics[-1] if history.val_metrics else {}
    logger.info("trained %s trace model: %s", kind, history.last())
    return Phase1Artifacts(
        model=model, history=history, encoder=encoder, validation_metrics=validation_metrics
    )


def train_fp_model(
    training: Optional[TrainingConfig] = None,
    nn: Optional[NNConfig] = None,
    dsl: Optional[DSLConfig] = None,
    io_sets=None,
    memberships: Optional[np.ndarray] = None,
    verbose: bool = False,
) -> Phase1Artifacts:
    """Train the function-probability (FP) model from IO examples only."""
    training = training or TrainingConfig()
    nn = nn or NNConfig()
    dsl = dsl or DSLConfig()
    factory = RngFactory(training.seed + 1)

    if io_sets is None or memberships is None:
        builder = CorpusBuilder(training=training, dsl=dsl)
        io_sets, memberships = builder.build_fp_data()
    if len(io_sets) == 0:
        raise ValueError("no training data available")

    encoder = FeatureEncoder()
    dataset = FunctionProbabilityDataset(io_sets, memberships, encoder)
    train_set, val_set = dataset.split(training.validation_fraction, factory.get("fp-split"))

    model = FunctionProbabilityModel(config=nn, rng=factory.get("fp-init"))
    optimizer = Adam(model.parameters(), learning_rate=training.learning_rate)
    trainer = Trainer(model, optimizer, rng=factory.get("fp-batches"))
    history = trainer.fit(
        train_set,
        epochs=training.epochs,
        batch_size=training.batch_size,
        validation=val_set if len(val_set) else None,
        verbose=verbose,
    )
    validation_metrics = history.val_metrics[-1] if history.val_metrics else {}
    logger.info("trained FP model: %s", history.last())
    return Phase1Artifacts(
        model=model, history=history, encoder=encoder, validation_metrics=validation_metrics
    )
