"""The typed Phase-1 artifact store.

Phase 1 of the paper trains up to five models (CF trace, LCS trace, FP,
PCCoder step, RobustFill decoder).  :class:`ArtifactStore` holds them
under their canonical names with typed accessors — replacing the
stringly-typed ``SynthesizerContext.artifacts`` dict on the new API
surface — and persists them as a directory of per-artifact
``weights.npz`` + ``artifacts.json`` pairs via
:meth:`~repro.core.phase1.Phase1Artifacts.save`, which is what makes
:class:`~repro.core.service.SynthesisSession` warm-startable across
processes (fit once, serve many).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import struct
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.phase1 import Phase1Artifacts
from repro.utils.logging import get_logger
from repro.utils.serialization import PathLike, load_json, save_json

logger = get_logger("core.artifacts")

#: every artifact name Phase 1 can produce, in canonical order
ARTIFACT_NAMES: Tuple[str, ...] = ("cf", "lcs", "fp", "step", "decoder")

_STORE_MANIFEST = "store.json"

#: shared-memory weight segment (one flat file + a JSON layout manifest)
SHARED_WEIGHTS_BIN = "shared_weights.bin"
SHARED_WEIGHTS_MANIFEST = "shared_weights.json"

#: legacy persisted cache snapshots (whole-file pickle, rewritten per
#: run) — still loaded for backward compatibility; new sessions write
#: the append-only cache log below instead
CACHE_SNAPSHOTS_FILE = "cache_snapshots.pkl"

#: the L3 tier: an append-only segment log of cache snapshots.  Each
#: run() appends one segment holding only the entries written since the
#: last persist; the manifest keys the whole log by model hash
CACHE_LOG_DIR = "cache_log"
CACHE_LOG_MANIFEST = "manifest.json"
_SEGMENT_FORMAT = "segment-{seq:06d}.pkl"

#: framing of one segment file: magic + little-endian (payload length,
#: CRC32 of payload) + pickled payload.  A writer killed mid-write leaves
#: a short or checksum-failing file; the reader skips it instead of
#: crashing on a truncated pickle
_SEGMENT_MAGIC = b"NSL3SEG1"
_SEGMENT_HEADER = struct.Struct("<QI")

#: distinguishes concurrent manifest temp files written by one process
_MANIFEST_TMP_SEQ = itertools.count()

#: default number of segments the log may grow to before it is folded
#: into one deduplicated segment (see ``compact_cache_log``)
DEFAULT_COMPACT_THRESHOLD = 8

#: alignment of each parameter inside the packed segment (cache lines)
_SHARED_ALIGN = 64


class MissingArtifactError(KeyError):
    """A required Phase-1 artifact has not been trained or loaded.

    Subclasses :class:`KeyError` for backward compatibility with the old
    ``SynthesizerContext.get`` contract, but renders its message verbatim
    (``KeyError.__str__`` would wrap it in quotes).
    """

    def __init__(self, name: str, available: Iterable[str]) -> None:
        self.name = name
        self.available = tuple(available)
        super().__init__(name)

    def __str__(self) -> str:
        return (
            f"no trained artifact {self.name!r}; available: {sorted(self.available)}. "
            f"Train it (registry.ensure_artifacts) or load it (ArtifactStore.load)."
        )


@dataclass
class ArtifactStore:
    """Typed container for the Phase-1 artifacts of one configuration.

    One slot per canonical artifact name; ``get``/``set`` validate names
    eagerly so a typo fails with the full list of valid names instead of
    a silent empty lookup.
    """

    cf: Optional[Phase1Artifacts] = None
    lcs: Optional[Phase1Artifacts] = None
    fp: Optional[Phase1Artifacts] = None
    step: Optional[Phase1Artifacts] = None
    decoder: Optional[Phase1Artifacts] = None
    #: memo of :meth:`model_hash` — weights are immutable once an
    #: artifact is in the store, so the hash only changes via set/delete
    _model_hash: Optional[str] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_name(name: str) -> None:
        if name not in ARTIFACT_NAMES:
            raise ValueError(f"unknown artifact name {name!r}; valid names: {ARTIFACT_NAMES}")

    def get(self, name: str) -> Phase1Artifacts:
        """The named artifact, or :class:`MissingArtifactError` if absent."""
        self._validate_name(name)
        artifacts = getattr(self, name)
        if artifacts is None:
            raise MissingArtifactError(name, self.names())
        return artifacts

    def get_optional(self, name: str) -> Optional[Phase1Artifacts]:
        """The named artifact, or ``None`` if absent (name still validated)."""
        self._validate_name(name)
        return getattr(self, name)

    def set(self, name: str, artifacts: Phase1Artifacts) -> "ArtifactStore":
        self._validate_name(name)
        setattr(self, name, artifacts)
        self._model_hash = None
        return self

    def has(self, name: str) -> bool:
        self._validate_name(name)
        return getattr(self, name) is not None

    def names(self) -> Tuple[str, ...]:
        """Names of the artifacts currently present, in canonical order."""
        return tuple(name for name in ARTIFACT_NAMES if getattr(self, name) is not None)

    def missing(self, required: Iterable[str]) -> Tuple[str, ...]:
        """Which of ``required`` are not present yet."""
        return tuple(name for name in required if not self.has(name))

    def delete(self, name: str) -> None:
        """Drop the named artifact (no-op when absent)."""
        self._validate_name(name)
        setattr(self, name, None)
        self._model_hash = None

    def as_dict(self) -> Dict[str, Phase1Artifacts]:
        """Plain-dict snapshot (the deprecated ``context.artifacts`` shape)."""
        return {name: getattr(self, name) for name in self.names()}

    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> None:
        """Persist every present artifact under ``directory/<name>/``.

        The manifest is merged with any store already saved there, so
        sessions serving different method sets can share one artifact
        directory without clobbering each other's entries.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        on_disk: Tuple[str, ...] = ()
        if self.saved_at(directory):
            on_disk = tuple(load_json(directory / _STORE_MANIFEST).get("artifacts", ()))
        names = self.names()
        for name in names:
            self.get(name).save(directory / name)
        merged = [n for n in ARTIFACT_NAMES if n in set(on_disk) | set(names)]
        save_json(directory / _STORE_MANIFEST, {"format_version": 1, "artifacts": merged})

    @classmethod
    def load(cls, directory: PathLike, names: Optional[Iterable[str]] = None) -> "ArtifactStore":
        """Load a store saved by :meth:`save`.

        ``names`` restricts loading to a subset (artifacts missing on disk
        are skipped, so a partially-populated directory warm-starts what
        it can and the rest is trained on demand).
        """
        directory = Path(directory)
        manifest = load_json(directory / _STORE_MANIFEST)
        on_disk = tuple(manifest.get("artifacts", ()))
        wanted = on_disk if names is None else tuple(n for n in names if n in on_disk)
        store = cls()
        for name in wanted:
            store.set(name, Phase1Artifacts.load(directory / name))
        return store

    @staticmethod
    def saved_at(directory: PathLike) -> bool:
        """True when ``directory`` holds a persisted store manifest."""
        return (Path(directory) / _STORE_MANIFEST).is_file()

    # ------------------------------------------------------------------
    # shared-memory model serving
    # ------------------------------------------------------------------
    def pack_shared(self, directory: PathLike) -> Path:
        """Pack every present model's weights into one mmap-able segment.

        :meth:`save` persists per-artifact ``weights.npz`` archives — the
        durable, lossless form — but a compressed zip cannot be
        memory-mapped.  This writes the same float64 parameters, 64-byte
        aligned, into a single flat ``shared_weights.bin`` next to them,
        plus a JSON manifest recording each parameter's byte offset and
        shape.  :meth:`attach_shared` then maps that file read-only, so
        any number of worker processes share one set of physical pages
        instead of each holding a private copy of every model.

        Requires the store to have been :meth:`save`\\ d to the same
        directory first (attachment rebuilds models from the per-artifact
        metadata written there).
        """
        directory = Path(directory)
        if not self.saved_at(directory):
            raise FileNotFoundError(
                f"no persisted store at {directory}; call save() before pack_shared()"
            )
        directory.mkdir(parents=True, exist_ok=True)
        layout: Dict[str, Dict[str, dict]] = {}
        offset = 0
        blobs = []
        for name in self.names():
            state = self.get(name).model.state_dict()
            params: Dict[str, dict] = {}
            for param_name, value in state.items():
                value = np.ascontiguousarray(value, dtype="<f8")
                padding = (-offset) % _SHARED_ALIGN
                offset += padding
                blobs.append((padding, value))
                params[param_name] = {"offset": offset, "shape": list(value.shape)}
                offset += value.nbytes
            layout[name] = params
        with (directory / SHARED_WEIGHTS_BIN).open("wb") as handle:
            for padding, value in blobs:
                if padding:
                    handle.write(b"\0" * padding)
                handle.write(value.tobytes())
        save_json(
            directory / SHARED_WEIGHTS_MANIFEST,
            {
                "format_version": 1,
                "dtype": "<f8",
                "total_bytes": offset,
                "artifacts": layout,
            },
        )
        return directory / SHARED_WEIGHTS_BIN

    @classmethod
    def attach_shared(
        cls, directory: PathLike, names: Optional[Iterable[str]] = None
    ) -> "ArtifactStore":
        """Attach a store whose model weights alias the packed segment.

        The returned store's models are rebuilt from the per-artifact
        metadata saved by :meth:`save`, but their parameters are read-only
        views into a single ``np.memmap`` of ``shared_weights.bin`` —
        byte-identical to the persisted ``weights.npz`` values, at near
        zero per-process memory cost.  Models served this way are for
        inference only (training would write through the mapping).
        """
        directory = Path(directory)
        manifest = load_json(directory / SHARED_WEIGHTS_MANIFEST)
        layout: Dict[str, Dict[str, dict]] = manifest["artifacts"]
        dtype = np.dtype(manifest.get("dtype", "<f8"))
        wanted = tuple(layout) if names is None else tuple(n for n in names if n in layout)
        store = cls()
        if not wanted:
            return store
        segment = np.memmap(directory / SHARED_WEIGHTS_BIN, dtype=np.uint8, mode="r")
        for name in wanted:
            state: Dict[str, np.ndarray] = {}
            for param_name, spec in layout[name].items():
                shape = tuple(int(x) for x in spec["shape"])
                nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                start = int(spec["offset"])
                view = segment[start : start + nbytes].view(dtype).reshape(shape)
                state[param_name] = view
            store.set(name, Phase1Artifacts.load(directory / name, state=state, copy=False))
        return store

    @staticmethod
    def shared_at(directory: PathLike) -> bool:
        """True when ``directory`` holds a packed shared-weight segment."""
        directory = Path(directory)
        return (directory / SHARED_WEIGHTS_MANIFEST).is_file() and (
            directory / SHARED_WEIGHTS_BIN
        ).is_file()

    # ------------------------------------------------------------------
    # persistent score/evaluation-cache snapshots
    # ------------------------------------------------------------------
    def model_hash(self) -> str:
        """Content hash of every present model's parameters.

        Cached predicted scores are functions of the model weights, not
        just of ``(program, io_set)``, so persisted cache snapshots are
        keyed by this hash: a snapshot written under one set of weights
        is silently discarded when loaded under another (a retrain, a
        different seed, a different preset).  An empty store hashes to a
        stable constant, so artifact-free sessions (edit/oracle) can
        still persist their model-independent evaluation caches.

        Memoized: weights are immutable once an artifact is in the store
        (training happens before :meth:`set`, attached segments are
        read-only), so the O(model-size) serialize-and-hash walk runs
        once per store mutation instead of once per persisting ``run()``.
        """
        if self._model_hash is None:
            digest = hashlib.sha256()
            for name in self.names():
                state = self.get(name).model.state_dict()
                for param_name in sorted(state):
                    digest.update(f"{name}/{param_name}".encode())
                    digest.update(np.ascontiguousarray(state[param_name], dtype="<f8").tobytes())
            self._model_hash = digest.hexdigest()
        return self._model_hash

    def _log_dir(self, directory: PathLike) -> Path:
        return Path(directory) / CACHE_LOG_DIR

    @staticmethod
    def _read_manifest(log_dir: Path) -> Optional[dict]:
        path = log_dir / CACHE_LOG_MANIFEST
        if not path.is_file():
            return None
        try:
            manifest = load_json(path)
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    @staticmethod
    def _load_segment(path: Path) -> Tuple[Dict[str, dict], str]:
        """One segment's snapshots plus a load status.

        Returns ``(snapshots, status)`` with status ``"ok"``,
        ``"missing"`` (file gone — e.g. a concurrent compaction deleted
        it after the manifest was read) or ``"corrupt"`` (short file,
        CRC mismatch, or unreadable pickle — e.g. a writer killed
        mid-append).  Never raises: a bad segment costs its entries, not
        the load.  Unframed files are read as legacy pre-CRC segments.
        """
        try:
            data = path.read_bytes()
        except OSError:
            return {}, "missing"
        if data.startswith(_SEGMENT_MAGIC):
            header_end = len(_SEGMENT_MAGIC) + _SEGMENT_HEADER.size
            if len(data) < header_end:
                return {}, "corrupt"
            length, crc = _SEGMENT_HEADER.unpack(data[len(_SEGMENT_MAGIC):header_end])
            payload = data[header_end : header_end + length]
            if len(payload) != length or zlib.crc32(payload) != crc:
                return {}, "corrupt"
        else:
            payload = data  # legacy unframed segment (pre-CRC format)
        try:
            loaded = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - corrupt pickles raise many types
            return {}, "corrupt"
        snapshots = loaded.get("snapshots", {}) if isinstance(loaded, dict) else {}
        return (snapshots if isinstance(snapshots, dict) else {}), "ok"

    @staticmethod
    def _count_entries(snapshots: Dict[str, dict]) -> int:
        return sum(
            len(entries) for parts in snapshots.values() for entries in parts.values()
        )

    def _load_legacy_caches(self, directory: PathLike) -> Dict[str, dict]:
        """Snapshots from the pre-log whole-file pickle ({} when stale)."""
        path = Path(directory) / CACHE_SNAPSHOTS_FILE
        if not path.is_file():
            return {}
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return {}
        if payload.get("model_hash") != self.model_hash():
            return {}
        snapshots = payload.get("snapshots", {})
        return snapshots if isinstance(snapshots, dict) else {}

    def save_caches(
        self,
        directory: PathLike,
        snapshots: Dict[str, dict],
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> Path:
        """Append one cache-log segment next to the artifacts (the L3 tier).

        ``snapshots`` maps ``"<method>:<program_length>"`` to the output
        of ``NetSynBackend.cache_snapshot()`` — ideally the *dirty-only*
        delta since the last persist: unlike the old whole-file
        ``cache_snapshots.pkl`` rewrite, the write cost scales with the
        new entries, not with the accumulated cache size.  The log's
        manifest is keyed by :meth:`model_hash`; appending under changed
        weights resets the log (stale scores must never survive a
        retrain), and a legacy whole-file pickle with a matching hash is
        migrated into the log as its first segment.  When the log
        exceeds ``compact_threshold`` segments it is folded into one
        deduplicated segment (newest entry per key wins).

        Returns the path of the appended segment.
        """
        log_dir = self._log_dir(directory)
        log_dir.mkdir(parents=True, exist_ok=True)
        model_hash = self.model_hash()
        manifest = self._read_manifest(log_dir)
        if manifest is None or manifest.get("model_hash") != model_hash:
            for stale in log_dir.glob("segment-*.pkl"):
                stale.unlink(missing_ok=True)
            manifest = {
                "format_version": 1,
                "model_hash": model_hash,
                "next_seq": 1,
                "segments": [],
            }
            legacy = self._load_legacy_caches(directory)
            if legacy:
                self._append_segment(log_dir, manifest, legacy)
        path = self._append_segment(log_dir, manifest, snapshots)
        if len(manifest["segments"]) > max(1, int(compact_threshold)):
            self._compact(log_dir, manifest)
        with self._manifest_lock(log_dir):
            self._reconcile(log_dir, manifest)
            self._write_manifest(log_dir, manifest)
        return path

    @staticmethod
    def _write_manifest(log_dir: Path, manifest: dict) -> None:
        """Atomically swap the manifest into place (write-temp + rename).

        A reader (or a concurrent session losing a manifest race) always
        observes a complete manifest — either the old one or the new one,
        never a half-written file.  The temp name is unique per write
        (PID, thread, counter) so concurrent writers — other sessions or
        other threads of this one — never trample an in-flight temp.
        """
        path = log_dir / CACHE_LOG_MANIFEST
        tmp = log_dir / (
            f".manifest.{os.getpid()}.{threading.get_ident()}."
            f"{next(_MANIFEST_TMP_SEQ)}.tmp"
        )
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        os.replace(tmp, path)

    @staticmethod
    @contextmanager
    def _manifest_lock(log_dir: Path):
        """Serialize manifest read-modify-write cycles across writers.

        An advisory ``flock`` on a sidecar lock file closes the window
        between :meth:`_reconcile` re-reading the on-disk manifest and
        :meth:`_write_manifest` swapping the merged one in — without it a
        concurrent writer publishing in that window would have its record
        silently dropped by the last-writer-wins swap.  ``flock`` is
        taken on a fresh descriptor per call, so it also serializes
        threads of one process.  Platforms without ``fcntl`` fall back to
        the unlocked best-effort behaviour (readers stay safe either
        way; a lost record is re-adopted by the next reconcile).
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with (log_dir / ".manifest.lock").open("a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    @classmethod
    def _reconcile(cls, log_dir: Path, manifest: dict) -> None:
        """Fold a concurrently-written on-disk manifest into ``manifest``.

        Two sessions appending to one ``cache_log/`` race on the
        last-writer-wins manifest swap.  Exclusive segment creation
        already guarantees the loser's segment *file* survives; this
        re-reads the manifest just before writing and adopts any segment
        records (same model hash, file still present) the other session
        published meanwhile, so the race costs neither side its entries.
        """
        on_disk = cls._read_manifest(log_dir)
        if not on_disk or on_disk.get("model_hash") != manifest.get("model_hash"):
            return
        known = {record["file"] for record in manifest["segments"]}
        for record in on_disk.get("segments", ()):
            name = record.get("file")
            if name and name not in known and (log_dir / name).is_file():
                manifest["segments"].append(record)
        # drop records whose files a concurrent compaction already folded
        # into its combined segment (adopted above) and unlinked — keeping
        # them would make every future load skip phantom "missing" files
        manifest["segments"] = [
            record
            for record in manifest["segments"]
            if (log_dir / record["file"]).is_file()
        ]
        # zero-padded names sort in sequence order; keep merge order
        # (oldest first) deterministic across both racers
        manifest["segments"].sort(key=lambda record: record["file"])
        manifest["next_seq"] = max(
            int(manifest.get("next_seq", 1)), int(on_disk.get("next_seq", 1))
        )

    @classmethod
    def _append_segment(
        cls, log_dir: Path, manifest: dict, snapshots: Dict[str, dict]
    ) -> Path:
        """Write one CRC-framed segment and record it in ``manifest``.

        The file is created exclusively (``"xb"``): when a concurrent
        session already claimed this sequence number the append simply
        takes the next one, so two sessions sharing one ``cache_log/``
        never overwrite each other's segments.
        """
        payload = pickle.dumps({"format_version": 3, "snapshots": dict(snapshots)})
        framed = (
            _SEGMENT_MAGIC
            + _SEGMENT_HEADER.pack(len(payload), zlib.crc32(payload))
            + payload
        )
        while True:
            seq = int(manifest["next_seq"])
            manifest["next_seq"] = seq + 1
            name = _SEGMENT_FORMAT.format(seq=seq)
            path = log_dir / name
            try:
                with path.open("xb") as handle:
                    handle.write(framed)
                break
            except FileExistsError:
                continue  # a concurrent session claimed this seq: take the next
        from repro.execution import faults

        faults.fire("l3_append", target=name, path=path)
        manifest["segments"].append(
            {"file": name, "entries": cls._count_entries(snapshots)}
        )
        return path

    @classmethod
    def _merge_segments(
        cls,
        log_dir: Path,
        manifest: dict,
        on_skip: Optional[Callable[[str, str], None]] = None,
    ) -> Dict[str, dict]:
        """Concatenate every segment's entries, oldest segment first.

        Per snapshot key and section the entry lists are concatenated in
        append order, so when a later segment re-writes a key its entry
        comes last — exactly what the LRU load path wants (later entries
        overwrite earlier ones and end up most recent).  One segment is
        unpickled at a time.  Missing or corrupt segments are skipped
        (reported through ``on_skip(file_name, status)``): they cost
        their entries, never the load.
        """
        merged: Dict[str, dict] = {}
        for record in manifest.get("segments", ()):
            snapshots, status = cls._load_segment(log_dir / record["file"])
            if status != "ok":
                logger.warning("cache log: skipping %s segment %s", status, record["file"])
                if on_skip is not None:
                    on_skip(record["file"], status)
                continue
            for key, parts in snapshots.items():
                target = merged.setdefault(key, {})
                for section, entries in parts.items():
                    target.setdefault(section, []).extend(entries)
        return merged

    @classmethod
    def _compact(cls, log_dir: Path, manifest: dict) -> None:
        """Fold the whole log into one deduplicated segment (newest wins)."""
        merged = cls._merge_segments(log_dir, manifest)
        for parts in merged.values():
            for section, entries in parts.items():
                seen = set()
                deduped = []
                for key, value in reversed(entries):
                    if key in seen:
                        continue
                    seen.add(key)
                    deduped.append((key, value))
                deduped.reverse()
                parts[section] = deduped
        old_files = [record["file"] for record in manifest.get("segments", ())]
        manifest["segments"] = []
        cls._append_segment(log_dir, manifest, merged)
        for name in old_files:
            (log_dir / name).unlink(missing_ok=True)

    def compact_cache_log(self, directory: PathLike) -> bool:
        """Explicitly fold the cache log into one segment (False if no log)."""
        log_dir = self._log_dir(directory)
        manifest = self._read_manifest(log_dir)
        if manifest is None or not manifest.get("segments"):
            return False
        self._compact(log_dir, manifest)
        with self._manifest_lock(log_dir):
            self._reconcile(log_dir, manifest)
            self._write_manifest(log_dir, manifest)
        return True

    def load_caches(
        self,
        directory: PathLike,
        on_skip: Optional[Callable[[str, str], None]] = None,
    ) -> Dict[str, dict]:
        """Reload persisted snapshots (``{}`` when absent or stale).

        Prefers the append-only cache log; directories written before
        the log existed fall back to the legacy ``cache_snapshots.pkl``
        whole-file pickle.  Either way a snapshot written under
        different model weights (stale hash) or an unreadable file
        yields ``{}`` — a cold start, never an error: the cache is an
        optimization, not state the session depends on.

        Corrupt or missing segments are skipped (never raised); each skip
        is reported through ``on_skip(file_name, status)``.  A *missing*
        segment usually means a concurrent session compacted the log
        between our manifest read and the segment read — the load
        re-reads the manifest and retries the merge once before
        accepting the loss.
        """
        log_dir = self._log_dir(directory)
        manifest = self._read_manifest(log_dir)
        if manifest is None:
            return self._load_legacy_caches(directory)
        if manifest.get("model_hash") != self.model_hash():
            return {}
        for attempt in range(2):
            skipped: List[Tuple[str, str]] = []
            merged = self._merge_segments(
                log_dir, manifest, on_skip=lambda name, status: skipped.append((name, status))
            )
            if attempt == 0 and any(status == "missing" for _, status in skipped):
                manifest = self._read_manifest(log_dir)
                if manifest is None or manifest.get("model_hash") != self.model_hash():
                    return {}
                continue
            if on_skip is not None:
                for name, status in skipped:
                    on_skip(name, status)
            return merged
        return {}  # pragma: no cover - loop always returns

    @staticmethod
    def caches_saved_at(directory: PathLike) -> bool:
        """True when ``directory`` holds persisted caches (log or legacy)."""
        directory = Path(directory)
        return (directory / CACHE_LOG_DIR / CACHE_LOG_MANIFEST).is_file() or (
            directory / CACHE_SNAPSHOTS_FILE
        ).is_file()
