"""Data series behind every figure of the paper's evaluation section.

No plotting library is assumed: each function returns the plain numpy
arrays / dictionaries a plotting front-end (or the benchmark harness,
which prints them) would consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.confusion import confusion_from_model
from repro.evaluation.metrics import (
    RunRecord,
    filter_records,
    per_function_synthesis_rate,
    singleton_vs_list_breakdown,
    synthesis_rate_by_task,
    synthesis_rate_distribution,
)
from repro.fitness.datasets import TraceFitnessDataset
from repro.fitness.models import TraceFitnessModel
from repro.nn.training import TrainingHistory


def _per_task_cost_curve(
    records: Sequence[RunRecord], value_fn
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted per-task cost curve: x = % of programs, y = cost.

    Only tasks synthesized in at least one run appear; the curve
    terminates where the method stops synthesizing programs, exactly like
    the lines in Figure 4.
    """
    by_task: Dict[str, List[RunRecord]] = {}
    for record in records:
        by_task.setdefault(record.task_id, []).append(record)
    n_tasks = len(by_task)
    costs = []
    for runs in by_task.values():
        successful = [value_fn(r) for r in runs if r.found]
        if successful:
            costs.append(float(np.median(successful)))
    costs.sort()
    if not costs or n_tasks == 0:
        return np.array([]), np.array([])
    x = 100.0 * np.arange(1, len(costs) + 1) / n_tasks
    return x, np.array(costs)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


def fig4_search_space_series(
    records: Sequence[RunRecord], methods: Sequence[str], length: int
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Figure 4(a)-(c): search space used (fraction of budget) vs % programs."""
    series = {}
    for method in methods:
        subset = filter_records(records, method=method, length=length)
        series[method] = _per_task_cost_curve(subset, lambda r: r.search_space_fraction)
    return series


def fig4_synthesis_rate_series(
    records: Sequence[RunRecord], methods: Sequence[str], length: int
) -> Dict[str, np.ndarray]:
    """Figure 4(d)-(f): distribution of per-program synthesis rate."""
    return {
        method: synthesis_rate_distribution(filter_records(records, method=method, length=length))
        for method in methods
    }


def fig4_time_series(
    records: Sequence[RunRecord], methods: Sequence[str], length: int
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Figure 4(g)-(i): synthesis time vs % programs."""
    series = {}
    for method in methods:
        subset = filter_records(records, method=method, length=length)
        series[method] = _per_task_cost_curve(subset, lambda r: r.wall_time)
    return series


# ---------------------------------------------------------------------------
# Figures 5 and 6
# ---------------------------------------------------------------------------


def fig5_singleton_vs_list(
    records: Sequence[RunRecord], methods: Sequence[str]
) -> Dict[str, Dict[str, object]]:
    """Figure 5: per-program synthesis rate split by output type, per method."""
    result: Dict[str, Dict[str, object]] = {}
    for method in methods:
        subset = filter_records(records, method=method)
        singleton_rates = synthesis_rate_by_task([r for r in subset if r.is_singleton])
        list_rates = synthesis_rate_by_task([r for r in subset if not r.is_singleton])
        result[method] = {
            "singleton_rates": np.array(sorted(singleton_rates.values())),
            "list_rates": np.array(sorted(list_rates.values())),
            "summary": singleton_vs_list_breakdown(subset),
        }
    return result


def fig6_function_breakdown(
    records: Sequence[RunRecord], methods: Sequence[str], n_functions: int = 41
) -> Dict[str, np.ndarray]:
    """Figure 6: synthesis rate of tasks containing each DSL function."""
    return {
        method: per_function_synthesis_rate(filter_records(records, method=method), n_functions)
        for method in methods
    }


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------


def fig7_model_quality(
    trace_models: Dict[str, TraceFitnessModel],
    validation_sets: Dict[str, TraceFitnessDataset],
    fp_history: Optional[TrainingHistory] = None,
) -> Dict[str, object]:
    """Figure 7: confusion matrices for CF/LCS models and FP accuracy curve.

    Parameters
    ----------
    trace_models:
        Mapping ``{"cf": model, "lcs": model}`` (either key may be absent).
    validation_sets:
        Labelled validation datasets keyed the same way.
    fp_history:
        Training history of the FP model (its validation ``positive_accuracy``
        series is the Figure 7(c) curve).
    """
    output: Dict[str, object] = {}
    for kind, model in trace_models.items():
        if kind not in validation_sets:
            continue
        output[f"confusion_{kind}"] = confusion_from_model(model, validation_sets[kind])
    if fp_history is not None:
        series = fp_history.metric_series("positive_accuracy", split="val")
        if all(np.isnan(series)) or not series:
            series = fp_history.metric_series("positive_accuracy", split="train")
        output["fp_accuracy_over_epochs"] = np.asarray(series, dtype=np.float64)
    return output
