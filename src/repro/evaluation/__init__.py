"""Evaluation harness: metrics, experiment runner, tables and figure series.

Each artifact of the paper's evaluation section maps to a function here
(see DESIGN.md's per-experiment index):

* Figure 4(a)-(c) / Table 4 — :func:`search_space_percentiles`
* Figure 4(d)-(f)           — :func:`synthesis_rate_distribution`
* Figure 4(g)-(i) / Table 3 — :func:`time_percentiles`
* Table 2                   — :class:`AblationRunner`
* Figure 5                  — :func:`singleton_vs_list_breakdown`
* Figure 6                  — :func:`per_function_synthesis_rate`
* Figure 7                  — :func:`confusion_matrix`, training histories
"""

from repro.evaluation.metrics import (
    RunRecord,
    MethodSummary,
    percentile_curve,
    search_space_percentiles,
    synthesis_percentage,
    synthesis_rate_by_task,
    synthesis_rate_distribution,
    time_percentiles,
)
from repro.evaluation.confusion import confusion_matrix, confusion_from_model
from repro.evaluation.runner import (
    AblationRow,
    AblationRunner,
    EvaluationReport,
    EvaluationRunner,
    ParallelTaskRunner,
)
from repro.evaluation.tables import format_percentile_table, format_ablation_table
from repro.evaluation.figures import (
    fig4_search_space_series,
    fig4_synthesis_rate_series,
    fig4_time_series,
    fig5_singleton_vs_list,
    fig6_function_breakdown,
    fig7_model_quality,
)

__all__ = [
    "RunRecord",
    "MethodSummary",
    "percentile_curve",
    "search_space_percentiles",
    "synthesis_percentage",
    "synthesis_rate_by_task",
    "synthesis_rate_distribution",
    "time_percentiles",
    "confusion_matrix",
    "confusion_from_model",
    "EvaluationRunner",
    "EvaluationReport",
    "ParallelTaskRunner",
    "AblationRunner",
    "AblationRow",
    "format_percentile_table",
    "format_ablation_table",
    "fig4_search_space_series",
    "fig4_synthesis_rate_series",
    "fig4_time_series",
    "fig5_singleton_vs_list",
    "fig6_function_breakdown",
    "fig7_model_quality",
]
