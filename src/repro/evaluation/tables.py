"""Plain-text table formatting in the style of the paper's Tables 2-4."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.evaluation.metrics import (
    DEFAULT_PERCENTILES,
    MethodSummary,
    RunRecord,
    filter_records,
    search_space_percentiles,
    synthesis_percentage,
    time_percentiles,
)
from repro.utils.timing import format_seconds


def _format_cell(value: Optional[float], as_time: bool) -> str:
    if value is None:
        return "-"
    if as_time:
        return format_seconds(value)
    return f"{value * 100:.0f}%" if value >= 0.005 else "<1%"


def format_percentile_table(
    records: Sequence[RunRecord],
    methods: Sequence[str],
    lengths: Sequence[int],
    metric: str = "search_space",
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> str:
    """Render Table 3 (``metric="time"``) or Table 4 (``metric="search_space"``).

    One block per program length, one row per method, one column per
    percentile of test programs synthesized; dashes mark percentiles the
    method never reached — the same layout as the paper.
    """
    if metric not in ("search_space", "time"):
        raise ValueError("metric must be 'search_space' or 'time'")
    as_time = metric == "time"
    header = ["LENGTH", "METHOD", "SYNTH%"] + [f"{p}%" for p in percentiles]
    widths = [6, 14, 7] + [8] * len(percentiles)
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for length in lengths:
        for method in methods:
            subset = filter_records(records, method=method, length=length)
            if not subset:
                continue
            if as_time:
                curve = time_percentiles(subset, percentiles)
            else:
                curve = search_space_percentiles(subset, percentiles)
            cells = [
                str(length).ljust(widths[0]),
                method.ljust(widths[1]),
                f"{synthesis_percentage(subset) * 100:.0f}%".ljust(widths[2]),
            ]
            cells += [_format_cell(curve[p], as_time).ljust(8) for p in percentiles]
            lines.append("  ".join(cells))
    return "\n".join(lines)


def format_ablation_table(rows) -> str:
    """Render Table 2 from :class:`~repro.evaluation.runner.AblationRow` rows."""
    header = f"{'APPROACH':28s}  {'SYNTHESIZED':>12s}  {'AVG GEN':>9s}  {'AVG SYN RATE':>13s}"
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.approach:28s}  {row.programs_synthesized:>3d}/{row.n_tasks:<8d}  "
            f"{row.average_generations:>9.1f}  {row.average_synthesis_rate:>12.1f}%"
        )
    return "\n".join(lines)


def format_summary_table(summaries: Sequence[MethodSummary]) -> str:
    """Compact per-method summary (used by examples and benchmark output)."""
    header = (
        f"{'LENGTH':>6s}  {'METHOD':14s}  {'SYNTH%':>7s}  {'MEAN CANDIDATES':>16s}  {'MEAN TIME':>10s}"
    )
    lines = [header]
    for s in summaries:
        candidates = "-" if s.mean_candidates_when_found != s.mean_candidates_when_found else f"{s.mean_candidates_when_found:.0f}"
        mean_time = "-" if s.mean_time_when_found != s.mean_time_when_found else f"{s.mean_time_when_found:.2f}s"
        lines.append(
            f"{s.length:>6d}  {s.method:14s}  {s.synthesis_percentage * 100:>6.0f}%  "
            f"{candidates:>16s}  {mean_time:>10s}"
        )
    return "\n".join(lines)
