"""Confusion matrices for the trace fitness models (Figure 7a-b)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.fitness.datasets import TraceFitnessDataset
from repro.fitness.models import TraceFitnessModel
from repro.nn.training import iterate_minibatches


def confusion_matrix(true_labels: np.ndarray, predicted_labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Row-normalized confusion matrix.

    Entry ``(i, j)`` is the probability of predicting class ``i`` when the
    true class is ``j`` — the paper's convention, where each *row of the
    displayed matrix* corresponds to one true value and sums to 1.  Rows
    with no examples are left as zeros.
    """
    true_labels = np.asarray(true_labels, dtype=np.int64)
    predicted_labels = np.asarray(predicted_labels, dtype=np.int64)
    if true_labels.shape != predicted_labels.shape:
        raise ValueError("label arrays must have the same shape")
    matrix = np.zeros((n_classes, n_classes), dtype=np.float64)
    for true, predicted in zip(true_labels, predicted_labels):
        matrix[true, predicted] += 1.0
    row_sums = matrix.sum(axis=1, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        normalized = np.where(row_sums > 0, matrix / row_sums, 0.0)
    return normalized


def confusion_from_model(
    model: TraceFitnessModel,
    dataset: TraceFitnessDataset,
    batch_size: int = 64,
    max_samples: Optional[int] = None,
) -> np.ndarray:
    """Confusion matrix of a trained trace model on a labelled dataset."""
    n = len(dataset) if max_samples is None else min(len(dataset), max_samples)
    if n == 0:
        raise ValueError("dataset is empty")
    true_labels = []
    predicted = []
    for indices in iterate_minibatches(n, batch_size, shuffle=False):
        batch = dataset.get_batch(indices)
        true_labels.append(batch["labels"])
        predicted.append(model.predict_classes(batch))
    return confusion_matrix(
        np.concatenate(true_labels), np.concatenate(predicted), model.n_classes
    )


def close_prediction_rate(confusion: np.ndarray, high_class: int) -> float:
    """Probability mass the matrix puts on high predictions for high labels.

    The paper highlights that for candidates whose true fitness is ``>=
    high_class`` the model predicts ``>= high_class`` with probability
    around 0.7 — this helper extracts exactly that number.
    """
    n = confusion.shape[0]
    if not 0 <= high_class < n:
        raise ValueError("high_class out of range")
    rows = confusion[high_class:, high_class:]
    row_mass = confusion[high_class:].sum(axis=1)
    valid = row_mass > 0
    if not valid.any():
        return 0.0
    return float(rows.sum(axis=1)[valid].mean())
