"""Experiment runners: the full method comparison and the Table-2 ablation.

The method comparison drives its (method, length, task, run) grid through
a :class:`~repro.core.service.SynthesisSession`, which trains the shared
Phase-1 models once and executes the submitted jobs serially or fanned
out over multiprocessing workers via :class:`ParallelTaskRunner`.  Every
synthesis attempt is seeded explicitly — the seed is a deterministic
function of the experiment seed and the run index, never of the worker —
so the parallel report is byte-identical to the serial one regardless of
worker count or scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import SynthesizerContext
from repro.baselines.ga_adapters import make_netsyn_synthesizer
from repro.baselines.registry import build_context
from repro.config import ExperimentConfig, NetSynConfig, ServiceConfig
from repro.core.phase1 import train_fp_model, train_trace_model
from repro.core.service import SynthesisSession
from repro.data.tasks import BenchmarkSuite, make_benchmark_suite
from repro.evaluation.metrics import (
    MethodSummary,
    RunRecord,
    filter_records,
    search_space_percentiles,
    summarize_method,
    synthesis_percentage,
    time_percentiles,
)
from repro.ga.budget import SearchBudget
from repro.utils.logging import get_logger
from repro.utils.serialization import save_json

logger = get_logger("evaluation.runner")


# ---------------------------------------------------------------------------
# Parallel task execution
# ---------------------------------------------------------------------------

#: Per-process state installed by the pool initializer (under ``fork``
#: the context is inherited; under ``spawn`` it travels via pickling,
#: which the DSL layer supports — see ``DSLFunction.__reduce__``).
_WORKER_STATE: Dict[str, Any] = {}


class PayloadResolutionError:
    """Marker carrying a worker-side payload attachment failure.

    Raising inside a pool *initializer* kills the worker and makes the
    pool respawn it forever (the map never completes), so resolution
    failures are captured and re-raised lazily by whichever job first
    consumes the payload — that job fails cleanly instead of hanging the
    whole run.
    """

    def __init__(self, error: BaseException) -> None:
        self.message = f"worker payload resolution failed: {type(error).__name__}: {error}"

    def raise_(self) -> None:
        raise RuntimeError(self.message)


def _resolve_payload(payload: Any) -> Any:
    """Give payload descriptors a chance to attach per-process resources.

    A payload exposing ``resolve_in_worker()`` (e.g. the service layer's
    ``SharedWorkerPayload``) is resolved exactly once per process — this
    is where shared-memory model serving mmaps the packed weight segment
    instead of unpickling model objects into the worker.
    """
    resolve = getattr(payload, "resolve_in_worker", None)
    if not callable(resolve):
        return payload
    try:
        return resolve()
    except Exception as error:  # noqa: BLE001 - must not kill the initializer
        return PayloadResolutionError(error)


def _parallel_worker_init(
    seed: int, payload: Any, event_queue: Any = None, cancel_flags: Any = None
) -> None:
    """Initialize one worker: seed its RNGs and stash the shared payload.

    The global numpy RNG is seeded per worker (mixed with the PID) as a
    safety net for any library code that touches it; all repo components
    draw from explicitly seeded generators, which is what actually makes
    parallel results byte-identical to serial ones.

    ``event_queue`` (a ``multiprocessing`` queue) and ``cancel_flags`` (a
    shared byte array, one slot per job) are the service layer's
    cross-process progress channel: job functions read them back via
    :func:`worker_event_queue` / :func:`worker_cancel_flags` to stream
    ``ProgressEvent``\\ s to the parent and to observe cooperative
    cancellation requests while running.
    """
    np.random.seed((int(seed) * 1_000_003 + os.getpid()) % (2**32))
    _WORKER_STATE["payload"] = _resolve_payload(payload)
    _WORKER_STATE["event_queue"] = event_queue
    _WORKER_STATE["cancel_flags"] = cancel_flags


class ParallelTaskRunner:
    """Order-preserving map over a pool of multiprocessing workers.

    Parameters
    ----------
    n_workers:
        Number of worker processes; ``<= 1`` degrades to a serial map in
        the calling process (no pool, no pickling).
    seed:
        Base seed for the per-worker RNG initialization.
    payload:
        Arbitrary object made available to jobs via
        :func:`worker_payload` (e.g. the trained-model context), shipped
        to each worker exactly once instead of once per job.
    event_queue:
        Optional ``multiprocessing`` queue workers stream progress events
        into (see :func:`worker_event_queue`); queues and shared arrays
        travel through the pool initializer because they cannot be
        pickled per task.
    cancel_flags:
        Optional shared byte array (one slot per job) workers poll for
        cooperative cancellation (see :func:`worker_cancel_flags`).
    """

    def __init__(
        self,
        n_workers: int = 1,
        seed: int = 0,
        payload: Any = None,
        event_queue: Any = None,
        cancel_flags: Any = None,
    ) -> None:
        self.n_workers = int(n_workers)
        self.seed = int(seed)
        self.payload = payload
        self.event_queue = event_queue
        self.cancel_flags = cancel_flags

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, preserving input order.

        ``fn`` and the items must be picklable (module-level function,
        structural arguments) when ``n_workers > 1``.
        """
        items = list(items)
        if self.n_workers <= 1 or len(items) <= 1:
            _WORKER_STATE["payload"] = _resolve_payload(self.payload)
            _WORKER_STATE["event_queue"] = self.event_queue
            _WORKER_STATE["cancel_flags"] = self.cancel_flags
            try:
                return [fn(item) for item in items]
            finally:
                for key in ("payload", "event_queue", "cancel_flags"):
                    _WORKER_STATE.pop(key, None)
        context = multiprocessing.get_context()
        with context.Pool(
            processes=min(self.n_workers, len(items)),
            initializer=_parallel_worker_init,
            initargs=(self.seed, self.payload, self.event_queue, self.cancel_flags),
        ) as pool:
            return pool.map(fn, items)


def worker_payload() -> Any:
    """The payload the current :class:`ParallelTaskRunner` distributed."""
    return _WORKER_STATE.get("payload")


def worker_event_queue() -> Any:
    """The cross-process progress-event queue of the current runner (or None)."""
    return _WORKER_STATE.get("event_queue")


def worker_cancel_flags() -> Any:
    """The shared per-job cancellation flags of the current runner (or None)."""
    return _WORKER_STATE.get("cancel_flags")


@dataclass
class EvaluationReport:
    """All run records of one experiment plus convenient aggregations."""

    experiment: ExperimentConfig
    records: List[RunRecord] = field(default_factory=list)

    @property
    def methods(self) -> List[str]:
        return sorted({r.method for r in self.records})

    @property
    def lengths(self) -> List[int]:
        return sorted({r.length for r in self.records})

    def records_for(self, method: Optional[str] = None, length: Optional[int] = None) -> List[RunRecord]:
        return filter_records(self.records, method=method, length=length)

    def summary(self, method: str, length: int) -> MethodSummary:
        return summarize_method(self.records, method, length)

    def summaries(self) -> List[MethodSummary]:
        return [self.summary(m, l) for l in self.lengths for m in self.methods]

    def save(self, path) -> None:
        """Persist every record as JSON (for later re-analysis)."""
        save_json(path, {"experiment": vars(self.experiment), "records": [r.to_dict() for r in self.records]})


class EvaluationRunner:
    """Runs a set of methods over benchmark suites (Figures 4-6, Tables 3-4)."""

    def __init__(
        self,
        experiment: Optional[ExperimentConfig] = None,
        base_config: Optional[NetSynConfig] = None,
        context: Optional[SynthesizerContext] = None,
        verbose: bool = False,
        n_workers: int = 1,
        service_config: Optional[ServiceConfig] = None,
        remote_address: Optional[str] = None,
        remote_submit_attempts: int = 6,
    ) -> None:
        self.experiment = (experiment or ExperimentConfig()).scaled()
        self.experiment.validate()
        self.base_config = base_config or NetSynConfig.small()
        self.base_config.validate()
        self.verbose = verbose
        self.n_workers = int(n_workers)
        self.service_config = service_config
        #: ``host:port`` of a running synthesis server: the grid is
        #: submitted there instead of through a local session, and no
        #: Phase-1 model is trained in this process at all
        self.remote_address = remote_address
        #: total submit tries against an over-capacity/draining server
        #: (the client waits the server-suggested ``retry_after`` between
        #: tries); 1 = fail fast on the first rejection
        self.remote_submit_attempts = int(remote_submit_attempts)
        self._context = context
        self._session: Optional[Any] = None

    # ------------------------------------------------------------------
    @property
    def context(self) -> SynthesizerContext:
        """The shared trained-model context (built lazily, exactly once)."""
        if self._context is None:
            logger.info("building context for methods %s", self.experiment.methods)
            self._context = build_context(
                self.base_config, methods=self.experiment.methods, verbose=self.verbose
            )
        return self._context

    @property
    def session(self) -> Any:
        """The synthesis session the evaluation grid runs through.

        Built over the shared context's artifact store, so passing a
        pre-trained ``context`` keeps working as before.  With a
        configured ``remote_address`` this is a
        :class:`~repro.serving.client.RemoteSynthesisSession` instead —
        the grid runs in the server process (which owns the trained
        models) and this process never trains anything.
        """
        if self._session is None:
            if self.remote_address:
                from repro.serving.client import RemoteSynthesisSession

                self._session = RemoteSynthesisSession(
                    self.remote_address,
                    submit_attempts=self.remote_submit_attempts,
                )
            else:
                self._session = SynthesisSession(
                    self.context.config,
                    self.context.store,
                    methods=self.experiment.methods,
                    service_config=self.service_config,
                )
        return self._session

    def build_suite(self, length: int) -> BenchmarkSuite:
        """The benchmark suite used for one program length."""
        return make_benchmark_suite(
            length=length,
            n_programs=self.experiment.n_test_programs,
            seed=self.experiment.seed,
            dsl_config=self.base_config.dsl,
        )

    # ------------------------------------------------------------------
    def _submit_grid(self, session: SynthesisSession) -> List[Tuple[Any, int]]:
        """Submit the full evaluation grid, in serial iteration order.

        The per-run seed depends only on the experiment seed and the run
        index, so any assignment of jobs to workers reproduces the same
        records.
        """
        submitted: List[Tuple[Any, int]] = []
        for length in self.experiment.lengths:
            suite = self.build_suite(length)
            for method in self.experiment.methods:
                for task in suite:
                    for run_index in range(self.experiment.n_runs):
                        seed = self.experiment.seed * 10_007 + run_index
                        job = session.submit(
                            task,
                            method=method,
                            budget=self.experiment.max_search_space,
                            seed=seed,
                            program_length=length,
                        )
                        submitted.append((job, run_index))
        return submitted

    def run(self) -> EvaluationReport:
        """Execute every (method, length, task, run) combination.

        The grid goes through :class:`SynthesisSession`: jobs are
        submitted in serial iteration order, then executed serially or —
        with ``n_workers > 1`` — fanned out over worker processes.  The
        records (and their order) are identical either way.
        """
        report = EvaluationReport(experiment=self.experiment)
        session = self.session
        submitted = self._submit_grid(session)
        jobs = [job for job, _ in submitted]
        if self.remote_address:
            session.run(jobs)  # worker count is the server's decision
        else:
            session.run(jobs, n_workers=self.n_workers)
        for job, run_index in submitted:
            if job.result is None:  # pragma: no cover - failed/cancelled job
                raise RuntimeError(
                    f"evaluation job {job.job_id} ended {job.state.value}: {job.error}"
                )
            report.records.append(
                RunRecord(
                    method=job.method,
                    length=job.program_length,
                    task_id=job.task.task_id,
                    run_index=run_index,
                    result=job.result,
                    is_singleton=job.task.is_singleton,
                    target_function_ids=tuple(job.task.target.function_ids),
                )
            )
        return report


# ---------------------------------------------------------------------------
# Table 2: ablation of NS and FP-guided mutation on GA + fCF
# ---------------------------------------------------------------------------


@dataclass
class AblationRow:
    """One row of Table 2."""

    approach: str
    programs_synthesized: int
    n_tasks: int
    average_generations: float
    average_synthesis_rate: float

    def to_dict(self) -> dict:
        return {
            "approach": self.approach,
            "programs_synthesized": self.programs_synthesized,
            "n_tasks": self.n_tasks,
            "average_generations": self.average_generations,
            "average_synthesis_rate": self.average_synthesis_rate,
        }


#: the five configurations of Table 2
ABLATION_VARIANTS = (
    ("GA+fCF", {"neighborhood": None, "fp_mutation": False}),
    ("GA+fCF+NS_BFS", {"neighborhood": "bfs", "fp_mutation": False}),
    ("GA+fCF+NS_DFS", {"neighborhood": "dfs", "fp_mutation": False}),
    ("GA+fCF+MutationFP", {"neighborhood": None, "fp_mutation": True}),
    ("GA+fCF+NS_BFS+MutationFP", {"neighborhood": "bfs", "fp_mutation": True}),
)


class AblationRunner:
    """Reproduces Table 2: the contribution of NS and FP-guided mutation."""

    def __init__(
        self,
        base_config: Optional[NetSynConfig] = None,
        length: Optional[int] = None,
        n_tasks: int = 10,
        n_runs: int = 2,
        max_search_space: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.base_config = (base_config or NetSynConfig.small("cf")).replace(fitness_kind="cf")
        self.length = length or self.base_config.program_length
        self.n_tasks = n_tasks
        self.n_runs = n_runs
        self.max_search_space = max_search_space or self.base_config.max_search_space
        self.seed = seed

    def _variant_config(self, options: Dict) -> NetSynConfig:
        config = self.base_config.replace(
            program_length=self.length,
            fp_guided_mutation=bool(options["fp_mutation"]),
            max_search_space=self.max_search_space,
        )
        if options["neighborhood"] is None:
            config.neighborhood.enabled = False
        else:
            config.neighborhood.enabled = True
            config.neighborhood.strategy = options["neighborhood"]
        return config

    def run(self, variants=ABLATION_VARIANTS) -> List[AblationRow]:
        """Run every Table-2 variant over the same task suite and Phase-1 models."""
        # train shared models once
        trace = train_trace_model(
            kind="cf",
            training=self.base_config.training,
            nn=self.base_config.nn,
            dsl=self.base_config.dsl,
        )
        fp = train_fp_model(
            training=self.base_config.training, nn=self.base_config.nn, dsl=self.base_config.dsl
        )
        suite = make_benchmark_suite(
            length=self.length, n_programs=self.n_tasks, seed=self.seed, dsl_config=self.base_config.dsl
        )

        rows: List[AblationRow] = []
        for name, options in variants:
            config = self._variant_config(options)
            synthesizer = make_netsyn_synthesizer(
                "cf", config, trace_artifacts=trace, fp_artifacts=fp
            )
            found_per_task: List[float] = []
            generations: List[float] = []
            synthesized = 0
            for task in suite:
                successes = 0
                for run_index in range(self.n_runs):
                    budget = SearchBudget(limit=self.max_search_space)
                    result = synthesizer.synthesize(task, budget=budget, seed=self.seed + run_index)
                    successes += int(result.found)
                    generations.append(result.generations)
                rate = successes / self.n_runs
                found_per_task.append(rate)
                if rate >= 0.5:
                    synthesized += 1
            rows.append(
                AblationRow(
                    approach=name,
                    programs_synthesized=synthesized,
                    n_tasks=len(suite),
                    average_generations=float(np.mean(generations)) if generations else 0.0,
                    average_synthesis_rate=float(np.mean(found_per_task) * 100.0),
                )
            )
        return rows
