"""Metrics over synthesis runs.

The central record is :class:`RunRecord`: one synthesis attempt of one
method on one task with one seed.  All the paper's evaluation quantities
— synthesis percentage, search-space-used percentile curves (Figure 4a-c,
Table 4), synthesis-time percentiles (Figure 4g-i, Table 3) and per-task
synthesis-rate distributions (Figure 4d-f) — are computed from lists of
records.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.result import SynthesisResult

#: percentiles reported by the paper's Tables 3 and 4
DEFAULT_PERCENTILES = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass
class RunRecord:
    """One synthesis attempt: (method, length, task, run) -> result."""

    method: str
    length: int
    task_id: str
    run_index: int
    result: SynthesisResult
    is_singleton: bool = False
    target_function_ids: tuple = ()

    @property
    def found(self) -> bool:
        return self.result.found

    @property
    def candidates_used(self) -> int:
        return self.result.candidates_used

    @property
    def search_space_fraction(self) -> float:
        return self.result.search_space_fraction

    @property
    def wall_time(self) -> float:
        return self.result.wall_time_seconds

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "length": self.length,
            "task_id": self.task_id,
            "run_index": self.run_index,
            "is_singleton": self.is_singleton,
            "target_function_ids": list(self.target_function_ids),
            "result": self.result.to_dict(),
        }


@dataclass
class MethodSummary:
    """Aggregate view of one method's records at one program length."""

    method: str
    length: int
    n_tasks: int
    n_runs: int
    synthesis_percentage: float
    mean_candidates_when_found: float
    mean_time_when_found: float
    search_space_curve: Dict[int, Optional[float]] = field(default_factory=dict)
    time_curve: Dict[int, Optional[float]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# grouping helpers
# ---------------------------------------------------------------------------


def _by_task(records: Sequence[RunRecord]) -> Dict[str, List[RunRecord]]:
    grouped: Dict[str, List[RunRecord]] = defaultdict(list)
    for record in records:
        grouped[record.task_id].append(record)
    return dict(grouped)


def filter_records(
    records: Sequence[RunRecord],
    method: Optional[str] = None,
    length: Optional[int] = None,
) -> List[RunRecord]:
    """Records matching the given method and/or length."""
    out = []
    for record in records:
        if method is not None and record.method != method:
            continue
        if length is not None and record.length != length:
            continue
        out.append(record)
    return out


# ---------------------------------------------------------------------------
# headline metrics
# ---------------------------------------------------------------------------


def synthesis_percentage(records: Sequence[RunRecord]) -> float:
    """Fraction of tasks synthesized in at least half of their runs.

    The paper reports "percentage of programs synthesized"; a task counts
    as synthesized when the method finds it in the majority of its K runs
    (a single lucky run out of many does not count).
    """
    grouped = _by_task(records)
    if not grouped:
        return 0.0
    synthesized = 0
    for runs in grouped.values():
        rate = np.mean([r.found for r in runs])
        if rate >= 0.5:
            synthesized += 1
    return synthesized / len(grouped)


def synthesis_rate_by_task(records: Sequence[RunRecord]) -> Dict[str, float]:
    """Per-task fraction of successful runs (the violin data of Fig. 4d-f)."""
    return {task: float(np.mean([r.found for r in runs])) for task, runs in _by_task(records).items()}


def synthesis_rate_distribution(records: Sequence[RunRecord]) -> np.ndarray:
    """Synthesis rates of every task, as an array (for distribution plots)."""
    rates = synthesis_rate_by_task(records)
    return np.array(sorted(rates.values()))


def percentile_curve(
    records: Sequence[RunRecord],
    value_fn,
    percentiles: Sequence[int] = DEFAULT_PERCENTILES,
) -> Dict[int, Optional[float]]:
    """Cost needed to synthesize the easiest p% of tasks, for each percentile.

    For each task the *median* cost over its successful runs is used; tasks
    never synthesized have infinite cost.  Entry ``p`` is the maximum cost
    among the cheapest ``p%`` of tasks — i.e. "to synthesize p% of the
    programs, the method needed at most this much" — or ``None`` when
    fewer than ``p%`` of the tasks were ever synthesized, matching the
    dashes in the paper's Tables 3 and 4.
    """
    grouped = _by_task(records)
    if not grouped:
        return {p: None for p in percentiles}
    costs: List[float] = []
    for runs in grouped.values():
        successful = [value_fn(r) for r in runs if r.found]
        costs.append(float(np.median(successful)) if successful else float("inf"))
    costs.sort()
    n_tasks = len(costs)
    curve: Dict[int, Optional[float]] = {}
    for p in percentiles:
        count = int(np.ceil(p / 100.0 * n_tasks))
        count = max(1, min(count, n_tasks))
        value = costs[count - 1]
        curve[p] = None if np.isinf(value) else value
    return curve


def search_space_percentiles(
    records: Sequence[RunRecord], percentiles: Sequence[int] = DEFAULT_PERCENTILES
) -> Dict[int, Optional[float]]:
    """Table 4: fraction of the candidate budget needed per task percentile."""
    return percentile_curve(records, lambda r: r.search_space_fraction, percentiles)


def time_percentiles(
    records: Sequence[RunRecord], percentiles: Sequence[int] = DEFAULT_PERCENTILES
) -> Dict[int, Optional[float]]:
    """Table 3: synthesis time (seconds) needed per task percentile."""
    return percentile_curve(records, lambda r: r.wall_time, percentiles)


def summarize_method(records: Sequence[RunRecord], method: str, length: int) -> MethodSummary:
    """All headline numbers for one (method, length) pair."""
    subset = filter_records(records, method=method, length=length)
    found = [r for r in subset if r.found]
    return MethodSummary(
        method=method,
        length=length,
        n_tasks=len(_by_task(subset)),
        n_runs=len(subset),
        synthesis_percentage=synthesis_percentage(subset),
        mean_candidates_when_found=float(np.mean([r.candidates_used for r in found])) if found else float("nan"),
        mean_time_when_found=float(np.mean([r.wall_time for r in found])) if found else float("nan"),
        search_space_curve=search_space_percentiles(subset),
        time_curve=time_percentiles(subset),
    )


# ---------------------------------------------------------------------------
# breakdowns for Figures 5 and 6
# ---------------------------------------------------------------------------


def singleton_vs_list_breakdown(records: Sequence[RunRecord]) -> Dict[str, float]:
    """Average synthesis rate for singleton-output vs list-output tasks (Fig. 5)."""
    singleton = [r for r in records if r.is_singleton]
    lists = [r for r in records if not r.is_singleton]
    return {
        "singleton": float(np.mean([r.found for r in singleton])) if singleton else float("nan"),
        "list": float(np.mean([r.found for r in lists])) if lists else float("nan"),
    }


def per_function_synthesis_rate(records: Sequence[RunRecord], n_functions: int = 41) -> np.ndarray:
    """Average synthesis rate of tasks containing each DSL function (Fig. 6).

    Entry ``k`` (0-based) is the mean success rate over all runs whose
    target program contains function ``k+1``; NaN when no task uses it.
    """
    sums = np.zeros(n_functions)
    counts = np.zeros(n_functions)
    for record in records:
        for fid in set(record.target_function_ids):
            index = fid - 1
            if 0 <= index < n_functions:
                sums[index] += 1.0 if record.found else 0.0
                counts[index] += 1.0
    with np.errstate(invalid="ignore"):
        rates = np.where(counts > 0, sums / np.maximum(counts, 1.0), np.nan)
    return rates
