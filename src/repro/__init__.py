"""NetSyn reproduction: learned fitness functions for GA-based program synthesis.

This package reproduces *"Learning Fitness Functions for Machine
Programming"* (MLSys 2021).  The public API is organised as:

* :mod:`repro.dsl` — the 41-function list DSL, interpreter, traces, DCE.
* :mod:`repro.nn` — a from-scratch numpy neural-network substrate
  (embedding, LSTM, dense layers, Adam) used by the learned fitness models.
* :mod:`repro.fitness` — ideal fitness metrics (CF/LCS/FP/edit/oracle) and
  the neural-network fitness functions trained to predict them.
* :mod:`repro.ga` — the genetic algorithm: selection, crossover, mutation,
  elitism, and restricted local neighborhood search.
* :mod:`repro.core` — the NetSyn synthesizer facade (Phase 1 training +
  Phase 2 search) and search-budget accounting.
* :mod:`repro.baselines` — DeepCoder-, PCCoder-, RobustFill-, PushGP-like
  baselines plus edit-distance and oracle GAs, under one interface.
* :mod:`repro.data` — corpus and benchmark-suite generation.
* :mod:`repro.evaluation` — metrics, tables and figure series for every
  experiment in the paper's evaluation section.

Quickstart::

    from repro import NetSyn, NetSynConfig
    from repro.data import make_synthesis_task

    task = make_synthesis_task(length=4, seed=7)
    netsyn = NetSyn(NetSynConfig.small())
    netsyn.fit()                            # Phase 1: train the NN fitness function
    result = netsyn.synthesize(task.io_set) # Phase 2: GA search
    print(result.found, result.program)

The top-level names below are resolved lazily so that ``import repro``
stays cheap and subpackages can be imported independently.
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "DSLConfig",
    "GAConfig",
    "NeighborhoodConfig",
    "NNConfig",
    "TrainingConfig",
    "NetSynConfig",
    "ExperimentConfig",
    "NetSyn",
    "SynthesisResult",
    "SearchBudget",
]

_CONFIG_NAMES = {
    "DSLConfig",
    "GAConfig",
    "NeighborhoodConfig",
    "NNConfig",
    "TrainingConfig",
    "NetSynConfig",
    "ExperimentConfig",
}
_CORE_NAMES = {"NetSyn", "SynthesisResult", "SearchBudget"}


def __getattr__(name: str):
    if name in _CONFIG_NAMES:
        import repro.config as _config

        return getattr(_config, name)
    if name in _CORE_NAMES:
        import repro.core as _core

        return getattr(_core, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
