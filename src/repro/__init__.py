"""NetSyn reproduction: learned fitness functions for GA-based program synthesis.

This package reproduces *"Learning Fitness Functions for Machine
Programming"* (MLSys 2021).  The public API is organised as:

* :mod:`repro.dsl` — the 41-function list DSL, interpreter, traces, DCE.
* :mod:`repro.nn` — a from-scratch numpy neural-network substrate
  (embedding, LSTM, dense layers, Adam) used by the learned fitness models.
* :mod:`repro.fitness` — ideal fitness metrics (CF/LCS/FP/edit/oracle) and
  the neural-network fitness functions trained to predict them.
* :mod:`repro.ga` — the genetic algorithm: selection, crossover, mutation,
  elitism, and restricted local neighborhood search.
* :mod:`repro.core` — the NetSyn synthesizer facade (Phase 1 training +
  Phase 2 search) and search-budget accounting.
* :mod:`repro.baselines` — DeepCoder-, PCCoder-, RobustFill-, PushGP-like
  baselines plus edit-distance and oracle GAs, under one interface.
* :mod:`repro.data` — corpus and benchmark-suite generation.
* :mod:`repro.evaluation` — metrics, tables and figure series for every
  experiment in the paper's evaluation section.

Quickstart::

    from repro import NetSynConfig, SynthesisService
    from repro.data import make_synthesis_task

    task = make_synthesis_task(length=4, seed=7)
    service = SynthesisService(NetSynConfig.small())
    session = service.open_session(methods=("netsyn_cf",))  # Phase 1 (once)
    result = session.solve(task)                            # Phase 2: GA search
    print(result.found, result.program)

(The pre-service ``NetSyn(config).fit().synthesize(io_set)`` facade still
works and produces bit-identical results; see ``docs/api.md`` for the
migration path.)

The top-level names below are resolved lazily so that ``import repro``
stays cheap and subpackages can be imported independently.
"""

from repro.version import __version__

__all__ = [
    "__version__",
    "DSLConfig",
    "GAConfig",
    "NeighborhoodConfig",
    "NNConfig",
    "TrainingConfig",
    "NetSynConfig",
    "ExperimentConfig",
    "ServiceConfig",
    "NetSyn",
    "NetSynBackend",
    "SynthesisBackend",
    "SynthesisResult",
    "SearchBudget",
    "ArtifactStore",
    "SynthesisService",
    "SynthesisSession",
    "SynthesisJob",
    "JobState",
    "ProgressEvent",
    "EventLog",
    "JobCancelled",
]

_CONFIG_NAMES = {
    "DSLConfig",
    "GAConfig",
    "NeighborhoodConfig",
    "NNConfig",
    "TrainingConfig",
    "NetSynConfig",
    "ExperimentConfig",
    "ServiceConfig",
}
_CORE_NAMES = {
    "NetSyn",
    "NetSynBackend",
    "SynthesisBackend",
    "SynthesisResult",
    "SearchBudget",
    "ArtifactStore",
    "SynthesisService",
    "SynthesisSession",
    "SynthesisJob",
    "JobState",
}
_EVENT_NAMES = {"ProgressEvent", "EventLog", "JobCancelled"}


def __getattr__(name: str):
    if name in _CONFIG_NAMES:
        import repro.config as _config

        return getattr(_config, name)
    if name in _CORE_NAMES:
        import repro.core as _core

        return getattr(_core, name)
    if name in _EVENT_NAMES:
        import repro.events as _events

        return getattr(_events, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
