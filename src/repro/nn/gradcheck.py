"""Numerical gradient checking used to validate the autograd engine."""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Parameter


def numerical_gradient(
    loss_fn: Callable[[], Tensor], parameter: Parameter, epsilon: float = 1e-5
) -> np.ndarray:
    """Central-difference estimate of ``d loss / d parameter``."""
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        loss_plus = loss_fn().item()
        flat[index] = original - epsilon
        loss_minus = loss_fn().item()
        flat[index] = original
        grad_flat[index] = (loss_plus - loss_minus) / (2 * epsilon)
    return grad


def check_gradients(
    loss_fn: Callable[[], Tensor],
    parameters: Sequence[Parameter],
    epsilon: float = 1e-5,
    tolerance: float = 1e-4,
) -> Dict[int, float]:
    """Compare analytic and numerical gradients for every parameter.

    Returns a mapping from parameter index to the maximum relative error.
    Raises ``AssertionError`` when any error exceeds ``tolerance``.
    """
    # analytic gradients
    for parameter in parameters:
        parameter.zero_grad()
    loss = loss_fn()
    loss.backward()
    analytic = [None if p.grad is None else p.grad.copy() for p in parameters]

    errors: Dict[int, float] = {}
    for index, parameter in enumerate(parameters):
        numeric = numerical_gradient(loss_fn, parameter, epsilon=epsilon)
        a = analytic[index] if analytic[index] is not None else np.zeros_like(numeric)
        denominator = np.maximum(np.abs(a) + np.abs(numeric), 1e-8)
        relative = np.abs(a - numeric) / denominator
        # ignore entries where both gradients are essentially zero
        significant = (np.abs(a) + np.abs(numeric)) > 1e-7
        error = float(relative[significant].max()) if significant.any() else 0.0
        errors[index] = error
        if error > tolerance:
            raise AssertionError(
                f"gradient check failed for parameter {index}: max relative error {error:.2e}"
            )
    return errors
