"""A minimal reverse-mode automatic differentiation engine over numpy.

Only the operations required by the NN-FF models are implemented:
element-wise arithmetic with broadcasting, matrix multiplication,
tanh/sigmoid/relu/exp/log, reductions, reshaping, slicing, concatenation,
stacking and embedding lookups.  Gradients are accumulated into
``Tensor.grad`` by calling :meth:`Tensor.backward` on a scalar loss.

The engine favours clarity over speed — models in this reproduction are
small — but all heavy lifting is vectorized numpy, per the project's
performance guidelines.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Tensor", "concat", "stack", "embedding_lookup", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """True when operations record the backward graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (the inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # sum over leading broadcast dimensions
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum over axes that were of size 1 in the original shape
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus the bookkeeping for reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make numpy defer to Tensor's operators

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # -- constructors ----------------------------------------------------
    @classmethod
    def zeros(cls, shape, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape), requires_grad=requires_grad)

    @classmethod
    def ones(cls, shape, requires_grad: bool = False) -> "Tensor":
        return cls(np.ones(shape), requires_grad=requires_grad)

    # -- basics -----------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph construction ------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must be supplied for non-scalar roots.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)

        # topological order of the graph rooted at self
        order: List[Tensor] = []
        visited = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)

        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._parents == () or node._backward is None:
                node._accumulate(node_grad)
                continue
            node._accumulate(node_grad)
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = _unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
                if id(parent) in grads:
                    grads[id(parent)] += pgrad
                else:
                    grads[id(parent)] = pgrad

    # -- arithmetic ---------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad):
            return grad, grad

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad):
            return grad, -grad

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        a, b = self, other

        def backward(grad):
            return grad * b.data, grad * a.data

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        a, b = self, other

        def backward(grad):
            return grad / b.data, -grad * a.data / (b.data**2)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data
        a, b = self, other

        def backward(grad):
            grad_a = grad @ b.data.swapaxes(-1, -2)
            grad_b = a.data.swapaxes(-1, -2) @ grad
            return grad_a, grad_b

        return Tensor._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent
        a = self

        def backward(grad):
            return (grad * exponent * a.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # -- nonlinearities -------------------------------------------------------
    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data**2),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        a = self

        def backward(grad):
            return (grad / a.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    # -- reductions and reshaping ---------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        a = self

        def backward(grad):
            grad = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(grad, a.data.shape).copy(),)
            if not keepdims:
                grad = np.expand_dims(grad, axis)
            return (np.broadcast_to(grad, a.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(a.data.shape),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        a = self
        data = self.data[key]

        def backward(grad):
            full = np.zeros_like(a.data)
            np.add.at(full, key, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad):
        return tuple(np.split(grad, np.cumsum(sizes)[:-1], axis=axis))

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [Tensor._coerce(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tensors, backward)


def embedding_lookup(weights: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weights[indices]`` with scatter-add backward."""
    indices = np.asarray(indices, dtype=np.int64)
    data = weights.data[indices]

    def backward(grad):
        full = np.zeros_like(weights.data)
        np.add.at(full, indices.reshape(-1), grad.reshape(-1, weights.data.shape[-1]))
        return (full,)

    return Tensor._make(data, (weights,), backward)
