"""Mini-batch training loop shared by all learned fitness models.

The loop is deliberately generic: a *dataset* is any object exposing
``__len__`` and ``get_batch(indices)``, and a *model* is any
:class:`~repro.nn.module.Module` exposing
``compute_loss(batch) -> (loss_tensor, metrics_dict)``.  The fitness
models in :mod:`repro.fitness` implement exactly that pair of hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.module import Module
from repro.nn.optimizers import Optimizer
from repro.utils.logging import get_logger

logger = get_logger("nn.training")


class BatchDataset(Protocol):
    """Anything the trainer can draw mini-batches from."""

    def __len__(self) -> int: ...

    def get_batch(self, indices: np.ndarray): ...


class TrainableModel(Protocol):
    """A module the trainer knows how to optimize."""

    def compute_loss(self, batch) -> Tuple[Tensor, Dict[str, float]]: ...

    def parameters(self): ...

    def zero_grad(self) -> None: ...


def iterate_minibatches(
    n_items: int, batch_size: int, rng: Optional[np.random.Generator] = None, shuffle: bool = True
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n_items)`` in batches."""
    if n_items <= 0:
        return
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = np.arange(n_items)
    if shuffle:
        rng = rng or np.random.default_rng()
        rng.shuffle(order)
    for start in range(0, n_items, batch_size):
        yield order[start : start + batch_size]


@dataclass
class TrainingHistory:
    """Per-epoch training and validation metrics."""

    train_loss: List[float] = field(default_factory=list)
    train_metrics: List[Dict[str, float]] = field(default_factory=list)
    val_metrics: List[Dict[str, float]] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    def last(self) -> Dict[str, float]:
        """Flat summary of the most recent epoch."""
        summary: Dict[str, float] = {}
        if self.train_loss:
            summary["train_loss"] = self.train_loss[-1]
        if self.train_metrics:
            summary.update({f"train_{k}": v for k, v in self.train_metrics[-1].items()})
        if self.val_metrics:
            summary.update({f"val_{k}": v for k, v in self.val_metrics[-1].items()})
        return summary

    def metric_series(self, name: str, split: str = "val") -> List[float]:
        """Time series of one metric, e.g. accuracy over epochs (Figure 7c)."""
        records = self.val_metrics if split == "val" else self.train_metrics
        return [float(r.get(name, float("nan"))) for r in records]


class Trainer:
    """Runs epochs of mini-batch optimization over a dataset."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        max_grad_norm: float = 5.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.max_grad_norm = max_grad_norm
        self.rng = rng or np.random.default_rng(0)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: BatchDataset,
        epochs: int,
        batch_size: int,
        validation: Optional[BatchDataset] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` epochs; returns the accumulated history."""
        for epoch in range(epochs):
            self.model.train()
            epoch_losses: List[float] = []
            metric_sums: Dict[str, float] = {}
            metric_counts: Dict[str, int] = {}
            for indices in iterate_minibatches(len(dataset), batch_size, rng=self.rng):
                batch = dataset.get_batch(indices)
                self.model.zero_grad()
                loss, metrics = self.model.compute_loss(batch)
                loss.backward()
                if self.max_grad_norm:
                    self.optimizer.clip_gradients(self.max_grad_norm)
                self.optimizer.step()
                epoch_losses.append(loss.item())
                for key, value in metrics.items():
                    metric_sums[key] = metric_sums.get(key, 0.0) + float(value)
                    metric_counts[key] = metric_counts.get(key, 0) + 1

            train_metrics = {
                key: metric_sums[key] / metric_counts[key] for key in metric_sums
            }
            self.history.train_loss.append(float(np.mean(epoch_losses)) if epoch_losses else 0.0)
            self.history.train_metrics.append(train_metrics)

            if validation is not None and len(validation) > 0:
                val_metrics = self.evaluate(validation, batch_size)
                self.history.val_metrics.append(val_metrics)
            else:
                self.history.val_metrics.append({})

            if verbose:  # pragma: no cover - logging only
                logger.info(
                    "epoch %d/%d: loss=%.4f %s",
                    epoch + 1,
                    epochs,
                    self.history.train_loss[-1],
                    self.history.last(),
                )
        return self.history

    # ------------------------------------------------------------------
    def evaluate(self, dataset: BatchDataset, batch_size: int) -> Dict[str, float]:
        """Average the model's metrics over ``dataset`` without optimizing."""
        self.model.eval()
        metric_sums: Dict[str, float] = {}
        metric_counts: Dict[str, int] = {}
        total_loss = 0.0
        n_batches = 0
        from repro.nn.autograd import no_grad

        with no_grad():
            for indices in iterate_minibatches(
                len(dataset), batch_size, rng=self.rng, shuffle=False
            ):
                batch = dataset.get_batch(indices)
                loss, metrics = self.model.compute_loss(batch)
                total_loss += loss.item()
                n_batches += 1
                for key, value in metrics.items():
                    metric_sums[key] = metric_sums.get(key, 0.0) + float(value)
                    metric_counts[key] = metric_counts.get(key, 0) + 1
        result = {key: metric_sums[key] / metric_counts[key] for key in metric_sums}
        if n_batches:
            result["loss"] = total_loss / n_batches
        self.model.train()
        return result
