"""Sequence encoders used by the neural fitness models.

Both encoders map a padded batch of integer token sequences
``(batch, time)`` plus a boolean mask to a fixed-size vector per sequence:

* :class:`LSTMSequenceEncoder` — embedding followed by an LSTM, as in the
  paper's Figure 2.
* :class:`MeanPoolEncoder` — embedding followed by a masked mean and a
  dense projection; a much faster drop-in used for quick experiments and
  as an ablation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.layers import Dense, Embedding, active_length
from repro.nn.lstm import LSTM
from repro.nn.module import Module


def _trim_padding(tokens: np.ndarray, mask: Optional[np.ndarray]):
    """Drop trailing all-masked columns from a padded (tokens, mask) pair.

    The feature encoder may pad every batch to a fixed width so encoded
    arrays are batch-shape-invariant; the trailing all-padding region is
    an exact no-op for both encoders (masked LSTM steps keep their state,
    masked mean weights are zero), so it is sliced off before any work is
    done on it.
    """
    if mask is None:
        return tokens, mask
    width = active_length(mask, tokens.shape[1])
    if width < tokens.shape[1]:
        return tokens[:, :width], mask[:, :width]
    return tokens, mask


class LSTMSequenceEncoder(Module):
    """Embedding + LSTM encoder producing the final hidden state."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.lstm = LSTM(embedding_dim, hidden_dim, rng=rng)
        self.output_dim = hidden_dim

    def forward(self, tokens: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must be (batch, time)")
        tokens, mask = _trim_padding(tokens, mask)
        embedded = self.embedding(tokens)  # (batch, time, embedding_dim)
        return self.lstm(embedded, mask=mask)


class MeanPoolEncoder(Module):
    """Embedding + masked mean pooling + dense projection."""

    def __init__(
        self,
        vocab_size: int,
        embedding_dim: int,
        hidden_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.projection = Dense(embedding_dim, hidden_dim, activation="tanh", rng=rng)
        self.output_dim = hidden_dim

    def forward(self, tokens: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError("tokens must be (batch, time)")
        tokens, mask = _trim_padding(tokens, mask)
        batch, time = tokens.shape
        embedded = self.embedding(tokens)  # (batch, time, embedding_dim)
        if mask is None:
            mask = np.ones((batch, time), dtype=np.float64)
        else:
            mask = np.asarray(mask, dtype=np.float64)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (batch, 1)
        weights = mask / counts  # per-token averaging weights
        pooled = (embedded * Tensor(weights[:, :, None])).sum(axis=1)
        return self.projection(pooled)


def make_sequence_encoder(
    kind: str,
    vocab_size: int,
    embedding_dim: int,
    hidden_dim: int,
    rng: Optional[np.random.Generator] = None,
) -> Module:
    """Factory selecting between the LSTM and pooled encoders."""
    if kind == "lstm":
        return LSTMSequenceEncoder(vocab_size, embedding_dim, hidden_dim, rng=rng)
    if kind == "pooled":
        return MeanPoolEncoder(vocab_size, embedding_dim, hidden_dim, rng=rng)
    raise ValueError(f"unknown encoder kind {kind!r}")
