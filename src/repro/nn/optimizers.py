"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / (1 - self.beta1**self._t)
            v_hat = self._v[index] / (1 - self.beta2**self._t)
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
