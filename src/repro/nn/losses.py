"""Loss functions: softmax cross-entropy, sigmoid BCE and mean squared error.

All losses take raw logits (no activation applied) and return a scalar
:class:`~repro.nn.autograd.Tensor` averaged over the batch, so they can be
passed straight to ``backward()``.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def softmax_probabilities(logits: Tensor) -> np.ndarray:
    """Numerically stable softmax of the logits (returns a plain array)."""
    z = logits.data - logits.data.max(axis=-1, keepdims=True)
    exp = np.exp(z)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``softmax(logits)`` and integer ``labels``.

    The gradient is implemented analytically (``softmax - one_hot``) rather
    than through ``exp``/``log`` nodes, which is both faster and more
    numerically stable.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, n_classes)")
    batch, n_classes = logits.shape
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {batch}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ValueError("labels out of range")

    probs = softmax_probabilities(logits)
    nll = -np.log(np.clip(probs[np.arange(batch), labels], 1e-12, None))
    loss_value = nll.mean()

    def backward(grad):
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(batch), labels] = 1.0
        return ((probs - one_hot) * (grad / batch),)

    return Tensor._make(np.asarray(loss_value), (logits,), backward)


def sigmoid_binary_cross_entropy(
    logits: Tensor, targets: np.ndarray, pos_weight: float = 1.0
) -> Tensor:
    """Mean element-wise binary cross-entropy on ``sigmoid(logits)``.

    Used by the function-probability (FP) model, a multi-label classifier
    over the 41 DSL functions.  ``pos_weight`` scales the loss of positive
    targets, compensating for the heavy class imbalance (a length-5
    program contains at most 5 of the 41 functions).
    """
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    if pos_weight <= 0:
        raise ValueError("pos_weight must be positive")
    x = logits.data
    weights = np.where(targets >= 0.5, pos_weight, 1.0)
    # log(1 + exp(-|x|)) formulation for numerical stability
    loss_matrix = weights * (np.maximum(x, 0.0) - x * targets + np.log1p(np.exp(-np.abs(x))))
    loss_value = loss_matrix.mean()
    count = loss_matrix.size

    def backward(grad):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        return (weights * (sig - targets) * (grad / count),)

    return Tensor._make(np.asarray(loss_value), (logits,), backward)


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error (used by the regression-head ablation)."""
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != predictions.shape:
        targets = targets.reshape(predictions.shape)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()
