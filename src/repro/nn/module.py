"""Parameter and Module abstractions on top of the autograd engine."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)
        # Parameters must track gradients even when created inside no_grad()
        self.requires_grad = True


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` discovers them recursively.  A module is
    callable and delegates to :meth:`forward`.
    """

    def __init__(self) -> None:
        self._training = True

    # -- parameter discovery ------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_count(self) -> int:
        """Total number of scalar weights."""
        return int(sum(p.size for p in self.parameters()))

    # -- train / eval mode ----------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        """Put this module (and children) in training mode."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Put this module (and children) in evaluation mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self._training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)

    # -- state (de)serialization ----------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], copy: bool = True) -> None:
        """Load parameter values produced by :meth:`state_dict`.

        With ``copy=False`` the parameters *alias* the provided arrays
        instead of copying them — this is how shared-memory model serving
        attaches mmap-backed weights so N worker processes share one set
        of physical pages.  Aliased parameters may be read-only; such a
        module serves inference but cannot be trained in place.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.copy() if copy else value

    # -- forward ----------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
