"""LSTM cell and layer with backpropagation through time.

The recurrence is expressed entirely in autograd operations, so gradients
through arbitrarily long (but finite) sequences come from the engine in
:mod:`repro.nn.autograd`.  Sequences are processed as padded batches with
an explicit mask so variable-length inputs (IO lists and execution traces
have different lengths) are handled correctly: masked timesteps leave the
hidden and cell states unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.autograd import Tensor, concat
from repro.nn.layers import _glorot, active_length
from repro.nn.module import Module, Parameter


class LSTMCell(Module):
    """A single LSTM step.

    Gates follow the standard formulation: input ``i``, forget ``f``,
    candidate ``g`` and output ``o``; the forget-gate bias is initialised
    to 1 to ease gradient flow early in training.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        gate_dim = 4 * hidden_dim
        self.weight_x = Parameter(_glorot(rng, input_dim, gate_dim, (input_dim, gate_dim)))
        self.weight_h = Parameter(_glorot(rng, hidden_dim, gate_dim, (hidden_dim, gate_dim)))
        bias = np.zeros(gate_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget gate bias
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]) -> Tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(batch, input_dim)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        gates = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        H = self.hidden_dim
        i = gates[:, 0:H].sigmoid()
        f = gates[:, H : 2 * H].sigmoid()
        g = gates[:, 2 * H : 3 * H].tanh()
        o = gates[:, 3 * H : 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        """Zero hidden and cell states for a batch."""
        zeros = Tensor(np.zeros((batch_size, self.hidden_dim)))
        return zeros, Tensor(np.zeros((batch_size, self.hidden_dim)))


class LSTM(Module):
    """An LSTM layer over padded batched sequences.

    ``forward`` consumes ``(batch, time, input_dim)`` inputs with an
    optional boolean mask ``(batch, time)`` marking real timesteps, and
    returns the final hidden state ``(batch, hidden_dim)`` (and optionally
    the full hidden sequence).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim

    def forward(
        self,
        inputs: Tensor,
        mask: Optional[np.ndarray] = None,
        return_sequence: bool = False,
    ):
        if inputs.ndim != 3:
            raise ValueError(f"expected (batch, time, features), got shape {inputs.shape}")
        batch, time, _ = inputs.shape
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != (batch, time):
                raise ValueError(f"mask shape {mask.shape} does not match inputs {(batch, time)}")
            # Trailing all-masked timesteps leave (h, c) untouched; skip
            # them so fixed-width padded batches cost no extra steps.
            # (Not applicable when the full sequence is returned — the
            # caller expects one output per input timestep.)
            if not return_sequence:
                time = active_length(mask, time)

        h, c = self.cell.initial_state(batch)
        outputs = []
        for t in range(time):
            x_t = inputs[:, t, :]
            h_new, c_new = self.cell(x_t, (h, c))
            if mask is not None:
                m = Tensor(mask[:, t : t + 1])
                keep = Tensor(1.0 - mask[:, t : t + 1])
                h = h_new * m + h * keep
                c = c_new * m + c * keep
            else:
                h, c = h_new, c_new
            if return_sequence:
                outputs.append(h)
        if return_sequence:
            from repro.nn.autograd import stack

            return stack(outputs, axis=1), h
        return h
