"""A from-scratch neural-network substrate built on numpy.

The paper trains its fitness models with TensorFlow; no deep-learning
framework is available in this offline reproduction, so this package
provides the minimum substrate the NN-FF architecture (Figure 2) needs:

* :mod:`repro.nn.autograd` — a small reverse-mode automatic
  differentiation engine over numpy arrays (:class:`Tensor`).
* :mod:`repro.nn.layers` — Dense, Embedding, Dropout and activations.
* :mod:`repro.nn.lstm` — an LSTM cell and layer with full backpropagation
  through time.
* :mod:`repro.nn.encoders` — sequence encoders (LSTM and mean-pooled)
  for lists of integers and for step sequences.
* :mod:`repro.nn.losses` — softmax cross-entropy, sigmoid BCE, MSE.
* :mod:`repro.nn.optimizers` — SGD (with momentum) and Adam.
* :mod:`repro.nn.training` — a mini-batch training loop with history.
* :mod:`repro.nn.gradcheck` — numerical gradient checking used in tests.
"""

from repro.nn.autograd import Tensor, concat, stack, no_grad
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Dense, Dropout, Embedding, ReLU, Sigmoid, Tanh
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.encoders import MeanPoolEncoder, LSTMSequenceEncoder, make_sequence_encoder
from repro.nn.losses import (
    mse_loss,
    sigmoid_binary_cross_entropy,
    softmax_cross_entropy,
    softmax_probabilities,
)
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.training import TrainingHistory, Trainer, iterate_minibatches
from repro.nn.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "Module",
    "Parameter",
    "Sequential",
    "Dense",
    "Dropout",
    "Embedding",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LSTM",
    "LSTMCell",
    "MeanPoolEncoder",
    "LSTMSequenceEncoder",
    "make_sequence_encoder",
    "mse_loss",
    "sigmoid_binary_cross_entropy",
    "softmax_cross_entropy",
    "softmax_probabilities",
    "SGD",
    "Adam",
    "Optimizer",
    "TrainingHistory",
    "Trainer",
    "iterate_minibatches",
    "numerical_gradient",
    "check_gradients",
]
