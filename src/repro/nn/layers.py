"""Basic layers: Dense, Embedding, Dropout and activation modules."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor, embedding_lookup
from repro.nn.module import Module, Parameter


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int, shape) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def active_length(mask: Optional[np.ndarray], time: int) -> int:
    """Number of leading timesteps that carry at least one unmasked row.

    Sequence layers use this to skip trailing all-padding columns: a
    fully-masked timestep leaves LSTM states untouched and contributes
    exact zeros to masked means, so dropping the trailing all-masked
    region never changes the result — which is what lets the feature
    encoder pad every batch to a fixed, batch-independent width for free.
    Always at least 1 so degenerate all-masked batches keep a well-defined
    time dimension.
    """
    if mask is None:
        return time
    mask = np.asarray(mask)
    active = np.flatnonzero(mask.any(axis=0))
    return int(active[-1]) + 1 if active.size else 1


class Dense(Module):
    """A fully connected layer ``y = x W + b`` with optional activation.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    activation:
        One of ``None``, ``"tanh"``, ``"sigmoid"``, ``"relu"``.
    rng:
        Generator used for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        if activation not in (None, "tanh", "sigmoid", "relu"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Parameter(_glorot(rng, in_features, out_features, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight + self.bias
        if self.activation == "tanh":
            out = out.tanh()
        elif self.activation == "sigmoid":
            out = out.sigmoid()
        elif self.activation == "relu":
            out = out.relu()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dense({self.in_features}, {self.out_features}, activation={self.activation})"


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    Used for DSL integer values (shifted into ``[0, vocab)``) and for
    function identifiers.
    """

    def __init__(
        self, vocab_size: int, embedding_dim: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if vocab_size <= 0 or embedding_dim <= 0:
            raise ValueError("vocab_size and embedding_dim must be positive")
        rng = rng or np.random.default_rng(0)
        self.vocab_size = vocab_size
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.1, size=(vocab_size, embedding_dim)))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.vocab_size):
            raise IndexError(
                f"embedding indices out of range [0, {self.vocab_size}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Embedding({self.vocab_size}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class Tanh(Module):
    """Element-wise tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Element-wise sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ReLU(Module):
    """Element-wise ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()
