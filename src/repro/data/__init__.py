"""Data generation: training corpora and benchmark suites.

Phase 1 of NetSyn needs a corpus of random example programs with IO
examples and labelled candidate programs (:mod:`repro.data.corpus`);
the evaluation needs suites of held-out test programs split into
singleton-output and list-output programs (:mod:`repro.data.tasks`).
"""

from repro.data.corpus import (
    CorpusBuilder,
    build_fp_training_data,
    build_trace_training_samples,
)
from repro.data.tasks import (
    BenchmarkSuite,
    SynthesisTask,
    make_benchmark_suite,
    make_synthesis_task,
)

__all__ = [
    "CorpusBuilder",
    "build_fp_training_data",
    "build_trace_training_samples",
    "BenchmarkSuite",
    "SynthesisTask",
    "make_benchmark_suite",
    "make_synthesis_task",
]
