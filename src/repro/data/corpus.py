"""Training-corpus generation for the neural fitness models (Phase 1).

For the trace-based CF/LCS models, each training sample pairs a randomly
generated *target* program ``Pe`` (whose IO examples play the role of the
specification) with a *candidate* program ``Pr``; the label is the ideal
fitness ``CF(Pr, Pe)`` or ``LCS(Pr, Pe)``.  The paper generates its corpus
so that every possible label value 0..L is equally represented; the
:class:`CorpusBuilder` reproduces that balancing by constructing
candidates that share a controlled number of functions with the target
and bucketing samples by their true label.

For the function-probability model, each sample is simply the IO set of a
random program paired with its function-membership vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import TrainingConfig, DSLConfig
from repro.dsl.dce import has_dead_code
from repro.dsl.equivalence import IOSet, make_io_set
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.generator import InputGenerator, ProgramGenerator
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.features import FitnessSample, sample_from_execution
from repro.fitness.ideal import common_functions, function_membership, lcs_length
from repro.utils.logging import get_logger
from repro.utils.rng import RngFactory

logger = get_logger("data.corpus")


@dataclass
class CorpusBuilder:
    """Generates balanced training data for the fitness models."""

    training: TrainingConfig = field(default_factory=TrainingConfig)
    dsl: DSLConfig = field(default_factory=DSLConfig)
    registry: FunctionRegistry = field(default_factory=lambda: REGISTRY)

    def __post_init__(self) -> None:
        self.training.validate()
        self.dsl.validate()
        self._factory = RngFactory(self.training.seed)
        self._interpreter = Interpreter()
        self._program_generator = ProgramGenerator(
            registry=self.registry, rng=self._factory.get("corpus-programs")
        )
        self._input_generator = InputGenerator(
            min_length=self.dsl.min_input_length,
            max_length=self.dsl.max_input_length,
            min_value=self.dsl.min_input_value,
            max_value=self.dsl.max_input_value,
            rng=self._factory.get("corpus-inputs"),
        )
        self._candidate_rng = self._factory.get("corpus-candidates")

    # ------------------------------------------------------------------
    def _target_with_io(self) -> Tuple[Program, IOSet]:
        """One random target program with its IO specification."""
        target, inputs, _ = self._program_generator.interesting_program(
            self.training.program_length,
            self._input_generator,
            n_probe_inputs=self.training.n_io_examples,
        )
        io_set = make_io_set(target, inputs, self._interpreter)
        return target, io_set

    # ------------------------------------------------------------------
    def _candidate_with_overlap(self, target: Program, desired: int) -> Program:
        """A candidate sharing roughly ``desired`` positions with ``target``.

        Candidate construction keeps ``desired`` randomly chosen positions
        of the target and replaces the remaining positions with functions
        that do not occur in the target, which concentrates both the CF
        and LCS labels around ``desired``.  The true label is recomputed
        by the caller, so the construction only needs to be approximate.
        """
        length = len(target)
        desired = int(np.clip(desired, 0, length))
        rng = self._candidate_rng
        target_set = set(target.function_ids)
        non_target = [fid for fid in self.registry.ids if fid not in target_set]
        for _ in range(25):
            keep = set(rng.choice(length, size=desired, replace=False)) if desired else set()
            ids = []
            for position in range(length):
                if position in keep:
                    ids.append(target.function_ids[position])
                else:
                    pool = non_target if non_target else list(self.registry.ids)
                    ids.append(int(rng.choice(pool)))
            candidate = Program(ids, self.registry)
            if not has_dead_code(candidate):
                return candidate
        return candidate

    # ------------------------------------------------------------------
    def build_trace_samples(self, kind: str = "cf", count: Optional[int] = None) -> List[FitnessSample]:
        """Balanced training samples for the CF or LCS trace model."""
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        total = count if count is not None else self.training.corpus_size
        length = self.training.program_length
        n_labels = length + 1
        metric = common_functions if kind == "cf" else lcs_length

        per_label_target = max(1, total // n_labels) if self.training.balance_labels else None
        buckets: Dict[int, int] = {label: 0 for label in range(n_labels)}
        samples: List[FitnessSample] = []
        attempts = 0
        max_attempts = total * 30
        desired_cycle = 0

        while len(samples) < total and attempts < max_attempts:
            attempts += 1
            target, io_set = self._target_with_io()
            desired = desired_cycle % n_labels
            desired_cycle += 1
            candidate = self._candidate_with_overlap(target, desired)
            label = int(metric(candidate, target))
            if self.training.balance_labels and per_label_target is not None:
                if buckets[label] >= per_label_target and len(samples) < total - 1:
                    continue
            traces = [self._interpreter.run(candidate, example.inputs) for example in io_set]
            samples.append(sample_from_execution(candidate, io_set, traces, label=label))
            buckets[label] += 1

        if len(samples) < total:
            logger.warning(
                "corpus builder produced %d/%d samples (label balance too strict)",
                len(samples),
                total,
            )
        return samples

    # ------------------------------------------------------------------
    def build_fp_data(self, count: Optional[int] = None) -> Tuple[List[IOSet], np.ndarray]:
        """IO sets and function-membership vectors for the FP model."""
        total = count if count is not None else self.training.corpus_size
        io_sets: List[IOSet] = []
        memberships: List[np.ndarray] = []
        for _ in range(total):
            target, io_set = self._target_with_io()
            io_sets.append(io_set)
            memberships.append(function_membership(target, self.registry))
        return io_sets, np.asarray(memberships)


# ---------------------------------------------------------------------------
# Convenience functions
# ---------------------------------------------------------------------------


def build_trace_training_samples(
    kind: str = "cf",
    training: Optional[TrainingConfig] = None,
    dsl: Optional[DSLConfig] = None,
) -> List[FitnessSample]:
    """One-call construction of balanced CF/LCS training samples."""
    builder = CorpusBuilder(training=training or TrainingConfig(), dsl=dsl or DSLConfig())
    return builder.build_trace_samples(kind=kind)


def build_fp_training_data(
    training: Optional[TrainingConfig] = None,
    dsl: Optional[DSLConfig] = None,
) -> Tuple[List[IOSet], np.ndarray]:
    """One-call construction of FP-model training data."""
    builder = CorpusBuilder(training=training or TrainingConfig(), dsl=dsl or DSLConfig())
    return builder.build_fp_data()
