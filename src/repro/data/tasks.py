"""Synthesis tasks and benchmark suites.

A :class:`SynthesisTask` is what a synthesizer receives: an IO
specification (the target program is kept only for oracle baselines and
for reporting).  A :class:`BenchmarkSuite` is the paper's test set: for
each program length, half the programs produce a singleton integer
("singleton programs") and half produce a list ("list programs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.config import DSLConfig
from repro.dsl.equivalence import IOSet, make_io_set
from repro.dsl.generator import InputGenerator, ProgramGenerator
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.dsl.types import INT, LIST
from repro.utils.rng import RngFactory


@dataclass(frozen=True)
class SynthesisTask:
    """One program-synthesis problem instance.

    Attributes
    ----------
    target:
        The hidden target program (available to oracle baselines and used
        to compute per-function statistics for Figures 5 and 6).
    io_set:
        The input-output examples given to the synthesizer.
    length:
        Nominal length of the target program.
    is_singleton:
        True when the target's final output is a single integer.
    task_id:
        Stable identifier within its suite.
    """

    target: Program
    io_set: IOSet
    length: int
    is_singleton: bool
    task_id: str = ""

    @property
    def n_examples(self) -> int:
        return len(self.io_set)


@dataclass
class BenchmarkSuite:
    """A collection of synthesis tasks of one program length."""

    length: int
    tasks: List[SynthesisTask] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[SynthesisTask]:
        return iter(self.tasks)

    def __getitem__(self, index: int) -> SynthesisTask:
        return self.tasks[index]

    @property
    def singleton_tasks(self) -> List[SynthesisTask]:
        """Tasks whose target produces a single integer."""
        return [t for t in self.tasks if t.is_singleton]

    @property
    def list_tasks(self) -> List[SynthesisTask]:
        """Tasks whose target produces a list of integers."""
        return [t for t in self.tasks if not t.is_singleton]


def make_synthesis_task(
    length: int = 5,
    seed: int = 0,
    dsl_config: Optional[DSLConfig] = None,
    singleton: Optional[bool] = None,
    task_id: str = "",
) -> SynthesisTask:
    """Generate one random synthesis task.

    Parameters
    ----------
    length:
        Target program length.
    seed:
        Seed controlling the target program and its IO examples.
    dsl_config:
        Input-generation parameters (defaults to :class:`DSLConfig`).
    singleton:
        Force a singleton-output (True) or list-output (False) target;
        None leaves the output type unconstrained.
    """
    config = dsl_config or DSLConfig()
    config.validate()
    factory = RngFactory(seed)
    program_generator = ProgramGenerator(rng=factory.get("task-program"))
    input_generator = InputGenerator(
        min_length=config.min_input_length,
        max_length=config.max_input_length,
        min_value=config.min_input_value,
        max_value=config.max_input_value,
        rng=factory.get("task-input"),
    )
    output_type = None if singleton is None else (INT if singleton else LIST)
    target, inputs, _ = program_generator.interesting_program(
        length, input_generator, n_probe_inputs=config.n_io_examples, output_type=output_type
    )
    io_set = make_io_set(target, inputs, Interpreter(trace=False))
    return SynthesisTask(
        target=target,
        io_set=io_set,
        length=length,
        is_singleton=target.produces_singleton(),
        task_id=task_id or f"len{length}-seed{seed}",
    )


def make_benchmark_suite(
    length: int,
    n_programs: int,
    seed: int = 0,
    dsl_config: Optional[DSLConfig] = None,
    singleton_fraction: float = 0.5,
) -> BenchmarkSuite:
    """Generate the paper-style test suite for one program length.

    The first ``singleton_fraction`` of the programs produce a singleton
    integer output and the remainder produce a list, mirroring the paper's
    50/50 split of its 100 test programs per length.
    """
    if n_programs <= 0:
        raise ValueError("n_programs must be positive")
    if not 0.0 <= singleton_fraction <= 1.0:
        raise ValueError("singleton_fraction must be in [0, 1]")
    n_singleton = int(round(n_programs * singleton_fraction))
    suite = BenchmarkSuite(length=length)
    for index in range(n_programs):
        singleton = index < n_singleton
        task = make_synthesis_task(
            length=length,
            seed=seed * 100_003 + index,
            dsl_config=dsl_config,
            singleton=singleton,
            task_id=f"len{length}-{'singleton' if singleton else 'list'}-{index}",
        )
        suite.tasks.append(task)
    return suite
