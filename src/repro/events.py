"""Progress events streamed out of Phase-2 synthesis runs.

Every :class:`~repro.core.backend.SynthesisBackend` accepts an optional
*listener* — any callable taking one :class:`ProgressEvent` — and emits a
stream of events while it searches:

``"started"``
    Once, before the first candidate is examined.
``"generation"``
    After each GA generation is scored (GA-based backends only): the
    generation index, mean/best population fitness, candidates consumed
    and the execution engine's cache counters.
``"neighborhood"``
    When the restricted local neighborhood search triggers.
``"candidates"``
    Periodically (every ``progress_every`` budget charges) for every
    backend, including the enumerative baselines that have no notion of
    a generation.
``"finished"``
    Once, with the outcome (``found`` / ``found_by``).

Supervised parallel runs additionally emit **supervision events** (never
part of a job's per-generation stream, so serial/parallel stream parity
is unaffected): ``"heartbeat"`` (one per worker per heartbeat interval),
``"worker_restarted"`` (a dead or hung worker was replaced),
``"job_retry"`` (a crashed job was requeued with backoff),
``"job_quarantined"`` (a job exhausted its retries and ends ``failed``),
``"deadline_exceeded"`` (a job hit its wall-clock deadline),
``"degraded_serial"`` (the pool crashed too often and the run fell back
to serial execution), ``"cache_segment_skipped"`` (a corrupt/truncated
L3 cache-log segment was skipped on load), and a synthesized ``"failed"``
terminal event that settles the stream of a job whose worker died before
flushing its own.  Supervision events carry ``worker_id`` / ``attempt`` /
``reason`` where applicable.

The serving layer adds **durability events**, likewise outside every
job's own stream: ``"journal_record_skipped"`` (a torn or corrupt job
journal record was skipped during recovery), ``"server_recovered"``
(server-side: a restarted server finished re-admitting journaled jobs —
carries the counts in ``reason``; client-side: an interrupted event
stream successfully resumed after a reconnect).

Listeners observe; they never steer the search — with one deliberate
exception: a listener may raise :class:`JobCancelled` to abandon the run,
which is how :class:`~repro.core.service.SynthesisJob` implements
cooperative cancellation.  Because events are emitted outside every
random-number draw, attaching a listener never changes the result of a
seeded run.

This module is intentionally dependency-free (dataclasses only) so any
layer — GA engine, budget accounting, baselines, service — can import it
without cycles.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field, fields
from typing import Callable, List, Optional


class JobCancelled(Exception):
    """Raised (by a listener) to abandon a synthesis run cooperatively."""


#: version of the serialized :class:`ProgressEvent` form.  Bump when a
#: field is renamed or its meaning changes; *adding* fields does not need
#: a bump because :meth:`ProgressEvent.from_dict` deterministically drops
#: keys it does not know (forward compatibility for wire-streamed events:
#: an old reader fed a newer event keeps every field it understands).
EVENT_SCHEMA_VERSION = 1


@dataclass
class ProgressEvent:
    """One observation of a running synthesis job.

    Fields default to the "unknown/not applicable" value so each emitter
    fills only what it can see; the backend enriches engine-level events
    with ``method``/``task_id``/``job_id`` before forwarding them.
    """

    kind: str
    method: str = ""
    task_id: str = ""
    job_id: str = ""
    #: GA generation index (1-based; 0 for non-generation events)
    generation: int = 0
    mean_fitness: Optional[float] = None
    best_fitness: Optional[float] = None
    candidates_used: int = 0
    budget_limit: int = 0
    #: execution-engine cache counters at emission time
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    #: L2 shared-score-table counters (zero unless a parallel session
    #: enabled ``ServiceConfig.shared_score_table``); ``shared_cross_hits``
    #: counts hits on entries another worker process computed
    shared_hits: int = 0
    shared_cross_hits: int = 0
    #: L4 remote-score-tier hits (zero unless a remote cache server is
    #: attached — see ``repro.serving``); every remote hit is also an
    #: L1/L2 miss, mirroring how ``shared_hits`` relate to ``cache_hits``
    remote_hits: int = 0
    #: kernel dispatches this job shared with concurrent same-inputs
    #: jobs so far (zero unless ``fuse_jobs`` is on — see
    #: ``repro.execution.fusion``); cumulative, not per-generation
    fused_dispatches: int = 0
    #: outcome fields ("finished" events only)
    found: Optional[bool] = None
    found_by: str = ""
    #: supervision fields (heartbeat / restart / retry / quarantine /
    #: deadline / degradation events only; -1 / 0 / "" otherwise)
    worker_id: int = -1
    attempt: int = 0
    reason: str = ""

    def to_dict(self) -> dict:
        """JSON-friendly form (for logs and persisted event streams).

        Carries the schema version under ``"v"`` so wire consumers can
        tell what vintage of event they are reading; :meth:`from_dict`
        accepts any version and keeps the fields it understands.
        """
        return {
            "v": EVENT_SCHEMA_VERSION,
            "kind": self.kind,
            "method": self.method,
            "task_id": self.task_id,
            "job_id": self.job_id,
            "generation": self.generation,
            "mean_fitness": self.mean_fitness,
            "best_fitness": self.best_fitness,
            "candidates_used": self.candidates_used,
            "budget_limit": self.budget_limit,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "shared_hits": self.shared_hits,
            "shared_cross_hits": self.shared_cross_hits,
            "remote_hits": self.remote_hits,
            "fused_dispatches": self.fused_dispatches,
            "found": self.found,
            "found_by": self.found_by,
            "worker_id": self.worker_id,
            "attempt": self.attempt,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProgressEvent":
        """Rebuild an event from :meth:`to_dict` output.

        Deterministically tolerant of other schema vintages: the version
        marker (``"v"``) and any keys this build does not know — e.g.
        fields added by a *newer* writer on the other end of a wire
        stream — are dropped, never an error; fields this build knows but
        the writer did not carry keep their defaults.  A record missing
        ``kind`` entirely deserializes as an ``"unknown"`` event rather
        than raising, so one foreign record cannot poison a whole log.
        """
        known = {f.name for f in fields(cls)}
        kept = {key: value for key, value in data.items() if key in known}
        kept.setdefault("kind", "unknown")
        return cls(**kept)


#: anything that consumes progress events
ProgressListener = Callable[[ProgressEvent], None]


class EventLog:
    """A listener that records every event (the default test/CLI consumer)."""

    def __init__(self) -> None:
        self.events: List[ProgressEvent] = []
        #: set by :meth:`load` when the persisted file was cut mid-record
        #: and only the valid prefix could be recovered
        self.truncated: bool = False

    def __call__(self, event: ProgressEvent) -> None:
        self.events.append(event)

    def extend(self, events: List[ProgressEvent]) -> None:
        """Record a coalesced batch in one call, at list-extend cost.

        For consumers that drain event batches directly off a queue
        (e.g. ``benchmarks/bench_event_throughput.py``); a log attached
        via ``session.add_listener`` is still called once per event.
        """
        self.events.extend(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def kinds(self) -> List[str]:
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[ProgressEvent]:
        return [event for event in self.events if event.kind == kind]

    @property
    def last(self) -> Optional[ProgressEvent]:
        return self.events[-1] if self.events else None

    def for_job(self, job_id: str) -> List[ProgressEvent]:
        """Events of one session job, in arrival order.

        Events from one job always arrive in the order they were emitted
        — also across process boundaries, where a single worker produces
        them sequentially into the streaming queue — so this sub-sequence
        is deterministic even when several jobs interleave.
        """
        return [event for event in self.events if event.job_id == job_id]

    def save(self, path) -> None:
        """Persist the log as a JSON array of event dicts."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump([event.to_dict() for event in self.events], handle, indent=2)

    @classmethod
    def load(cls, path) -> "EventLog":
        """Reload a log persisted by :meth:`save`.

        Tolerates a truncated or tail-corrupted file (e.g. the writing
        process was killed mid-:meth:`save`): the valid prefix of event
        records is recovered and the returned log's ``truncated`` flag is
        set, instead of the whole load raising.  A file whose very first
        record is unreadable loads as an empty, truncated log.
        """
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            records = json.loads(text)
            if not isinstance(records, list):
                records, log.truncated = [], True
        except ValueError:
            records, log.truncated = cls._recover_prefix(text), True
        for data in records:
            if isinstance(data, dict):
                log.events.append(ProgressEvent.from_dict(data))
        return log

    @staticmethod
    def _recover_prefix(text: str) -> List[dict]:
        """Every complete event record before the corruption point."""
        decoder = json.JSONDecoder()
        index = text.find("[")
        if index < 0:
            return []
        index += 1
        records: List[dict] = []
        length = len(text)
        while index < length:
            while index < length and text[index] in " \t\r\n,":
                index += 1
            if index >= length or text[index] == "]":
                break
            try:
                record, index = decoder.raw_decode(text, index)
            except ValueError:
                break
            records.append(record)
        return records
