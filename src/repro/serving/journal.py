"""The crash-safe write-ahead job journal of the synthesis server.

Every job the server admits is appended here *before* the client sees
``submitted``, and every terminal outcome is appended when the job
settles — so a server killed at any instant can be restarted on the same
journal directory and lose nothing: unfinished jobs are re-admitted
under their original ids, settled jobs answer idempotent resubmits from
their journaled results, and a cancellation requested for a queued job
survives the crash too.

Record framing (one append-only file, ``journal.log``)::

    MAGIC ("NSJL1\\0") | length:u32 | crc32:u32 | payload (UTF-8 JSON)

the same discipline as the L3 cache-log segments in
:mod:`repro.core.artifacts`: a writer killed mid-append leaves a torn
tail the reader skips with a warning, and a flipped bit mid-file fails
its record's CRC — the reader resynchronizes on the next magic marker,
so one bad record costs itself, never the rest of the journal.  Payloads
are JSON (the wire forms of :mod:`repro.serving.protocol`), so a journal
is debuggable with ``strings`` and a JSON pretty-printer.

Record kinds:

``admit``
    Full task payload (wire form), method, budget, seed, program length
    and the client-supplied idempotency key.  Present for every admitted
    job; a job with *only* an admit record is unfinished.
``result``
    The settled job's full wire form (state, result, FailureReport,
    error) plus the admission's idempotency key.  Marks the job
    settled; kept through compaction — including the key, so idempotent
    resubmits after a restart answer from the journal even when the
    ``admit`` record was compacted away.
``cancel``
    A cancellation was requested.  An unfinished job with a ``cancel``
    record recovers as ``cancelled`` instead of being re-run.

Durability: appends are flushed to the OS on every record, so the
journal survives the server process being SIGKILLed.  ``fsync=True``
additionally survives a machine crash, at a per-record fsync cost (off
by default — the threat model here is process death, not power loss).

Compaction: past ``compact_bytes`` the journal is rewritten to one
``admit`` record per unfinished job and one ``result`` record per
settled job (most recent ``max_settled`` kept), via write-temp +
``os.replace`` so a crash mid-compaction leaves either the old journal
or the new one, never a hybrid.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.utils.logging import get_logger

logger = get_logger("serving.journal")

#: journal file name inside the journal directory
JOURNAL_FILE = "journal.log"

_MAGIC = b"NSJL1\0"
_HEADER = struct.Struct("<II")

#: default size past which :meth:`JobJournal.maybe_compact` folds the log
DEFAULT_COMPACT_BYTES = 4 * 1024 * 1024

#: settled results kept through compaction (newest first); older settled
#: jobs lose idempotent-replay after a restart, nothing else
DEFAULT_MAX_SETTLED = 10_000


@dataclass
class JournalState:
    """What a journal replay recovers."""

    #: unfinished jobs: job_id -> the ``admit`` payload, admission order
    pending: Dict[str, dict] = field(default_factory=dict)
    #: settled jobs: job_id -> the journaled job wire form
    settled: Dict[str, dict] = field(default_factory=dict)
    #: idempotency dedup map: client key -> job_id
    key_to_job: Dict[str, str] = field(default_factory=dict)
    #: settled job -> its idempotency key (None when it had none); lets
    #: compaction re-emit result records that keep the dedup mapping
    settled_keys: Dict[str, Optional[str]] = field(default_factory=dict)
    #: unfinished jobs whose cancellation was journaled before the crash
    cancelled: List[str] = field(default_factory=list)
    #: records lost to torn tails / CRC failures (already warned about)
    skipped: int = 0


class JobJournal:
    """Append-only journal of one server's job lifecycle (thread-safe)."""

    def __init__(
        self,
        directory,
        compact_bytes: int = DEFAULT_COMPACT_BYTES,
        max_settled: int = DEFAULT_MAX_SETTLED,
        fsync: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / JOURNAL_FILE
        self.compact_bytes = int(compact_bytes)
        self.max_settled = int(max_settled)
        self.fsync = bool(fsync)
        self._lock = threading.RLock()
        self._handle = self.path.open("ab")
        #: appended records since open (read by the health frame / tests)
        self.appends = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # appends

    @staticmethod
    def _frame(payload: dict) -> bytes:
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return _MAGIC + _HEADER.pack(len(data), zlib.crc32(data)) + data

    def _append(self, payload: dict) -> None:
        with self._lock:
            if self._handle.closed:  # journal closed mid-shutdown: drop
                return
            self._handle.write(self._frame(payload))
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            self.appends += 1

    def admit(
        self,
        job_id: str,
        task_wire: dict,
        method: str,
        budget: int,
        seed: int,
        program_length: Optional[int] = None,
        idempotency_key: Optional[str] = None,
    ) -> None:
        """Journal one admission (call *before* acknowledging the client)."""
        self._append(
            {
                "record": "admit",
                "job_id": job_id,
                "task": task_wire,
                "method": method,
                "budget": int(budget),
                "seed": int(seed),
                "program_length": program_length,
                "idempotency_key": idempotency_key,
            }
        )

    def settle(
        self, job_id: str, job_wire: dict, idempotency_key: Optional[str] = None
    ) -> None:
        """Journal a job's terminal state (its full wire form).

        The admission's ``idempotency_key`` rides along so the dedup
        mapping survives compaction dropping the ``admit`` record.
        """
        self._append(
            {
                "record": "result",
                "job_id": job_id,
                "job": job_wire,
                "idempotency_key": idempotency_key,
            }
        )

    def cancel(self, job_id: str) -> None:
        """Journal a cancellation request for an admitted job."""
        self._append({"record": "cancel", "job_id": job_id})

    # ------------------------------------------------------------------
    # replay

    def replay(
        self, on_skip: Optional[Callable[[str], None]] = None
    ) -> JournalState:
        """Recover the journal's state, skipping (never raising on) damage.

        ``on_skip(reason)`` is called once per unreadable record — a torn
        tail left by a crash mid-append, or a CRC-failing record mid-file
        (the scan resynchronizes on the next magic marker).  An empty or
        absent journal replays to an empty state with no warnings.
        """
        state = JournalState()
        try:
            data = self.path.read_bytes()
        except OSError:
            return state

        def skip(reason: str) -> None:
            state.skipped += 1
            logger.warning("journal: skipped record (%s)", reason)
            if on_skip is not None:
                on_skip(reason)

        pos = 0
        size = len(data)
        while pos < size:
            if not data.startswith(_MAGIC, pos):
                nxt = data.find(_MAGIC, pos + 1)
                if nxt < 0:
                    skip(f"unframed trailing bytes at offset {pos}")
                    break
                skip(f"unframed bytes at offset {pos}")
                pos = nxt
                continue
            header_end = pos + len(_MAGIC) + _HEADER.size
            if size < header_end:
                skip(f"torn record header at offset {pos}")
                break
            length, crc = _HEADER.unpack(data[pos + len(_MAGIC) : header_end])
            payload = data[header_end : header_end + length]
            if len(payload) < length:
                skip(f"torn record tail at offset {pos}")
                break
            if zlib.crc32(payload) != crc:
                skip(f"CRC mismatch at offset {pos}")
                nxt = data.find(_MAGIC, pos + 1)
                if nxt < 0:
                    break
                pos = nxt
                continue
            try:
                record = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                # a CRC-valid but undecodable record means the writer was
                # broken, not the disk; skip it the same way
                skip(f"undecodable record at offset {pos}")
                pos = header_end + length
                continue
            if isinstance(record, dict):
                self._apply(state, record)
            pos = header_end + length
        return state

    @staticmethod
    def _apply(state: JournalState, record: dict) -> None:
        kind = record.get("record")
        job_id = str(record.get("job_id", ""))
        if not job_id:
            return
        key = record.get("idempotency_key")
        if kind == "admit":
            state.pending[job_id] = record
            if key:
                state.key_to_job[str(key)] = job_id
        elif kind == "result":
            job = record.get("job")
            if isinstance(job, dict):
                state.settled[job_id] = job
            if key:
                state.key_to_job[str(key)] = job_id
            state.settled_keys[job_id] = str(key) if key else None
            state.pending.pop(job_id, None)
            if job_id in state.cancelled:
                state.cancelled.remove(job_id)
        elif kind == "cancel":
            if job_id in state.pending and job_id not in state.cancelled:
                state.cancelled.append(job_id)

    # ------------------------------------------------------------------
    # compaction

    def size(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def maybe_compact(self) -> bool:
        """Compact when the journal outgrew ``compact_bytes`` (False if not)."""
        with self._lock:
            if self.size() <= self.compact_bytes:
                return False
            self.compact()
            return True

    def compact(self, state: Optional[JournalState] = None) -> None:
        """Fold the journal to its live state (atomic swap, crash-safe).

        Keeps one ``admit`` per unfinished job (plus its journaled
        ``cancel`` when one was recorded) and the most recent
        ``max_settled`` ``result`` records; everything superseded is
        dropped.  The rewrite lands via write-temp + ``os.replace``.
        """
        with self._lock:
            if state is None:
                self._handle.flush()
                state = self.replay()
            settled_ids = list(state.settled)[-self.max_settled :]
            tmp = self.path.with_name(f".{JOURNAL_FILE}.{os.getpid()}.tmp")
            with tmp.open("wb") as handle:
                for job_id, admit in state.pending.items():
                    handle.write(self._frame(admit))
                    if job_id in state.cancelled:
                        handle.write(
                            self._frame({"record": "cancel", "job_id": job_id})
                        )
                for job_id in settled_ids:
                    handle.write(
                        self._frame(
                            {
                                "record": "result",
                                "job_id": job_id,
                                "job": state.settled[job_id],
                                "idempotency_key": state.settled_keys.get(job_id),
                            }
                        )
                    )
                handle.flush()
                os.fsync(handle.fileno())
            self._handle.close()
            os.replace(tmp, self.path)
            self._handle = self.path.open("ab")
            self.compactions += 1
            logger.info(
                "journal compacted to %d pending + %d settled record(s) (%d bytes)",
                len(state.pending), len(settled_ids), self.size(),
            )

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
