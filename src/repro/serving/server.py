"""The asyncio synthesis server: one warm session, many connections.

Architecture (three kinds of thread, one asyncio loop)::

    asyncio loop (netsyn-serving-loop)
        accepts connections, parses frames, answers control requests,
        writes event streams.  Never runs synthesis.
    scheduler thread (netsyn-serving-scheduler)
        drains the admission queue, micro-batches submissions inside
        ``batch_window`` so concurrent clients coalesce into one
        parallel ``session.run``, then settles each job's stream.
    the session's own machinery
        the supervised worker pool, event pump and cache tiers of
        :class:`~repro.core.service.SynthesisSession` — unchanged; the
        server is a network shell around it.

Event routing: the server registers one session listener.  Every event
carries its ``job_id``; the listener appends it (in emission order) to
that job's stream buffer and wakes any subscribed connections through
``loop.call_soon_threadsafe``.  Because the buffer holds the complete
ordered stream, a client may subscribe before, during or after the run —
late subscribers replay the backlog first, so the observed per-job
stream is identical regardless of timing, and a disconnected client can
reconnect and resume from any sequence number.

Backpressure is rejection, not stalling: a ``submit`` beyond
``max_pending_jobs`` unsettled jobs is answered with an
``over_capacity`` error carrying ``retry_after`` — the accept loop and
running jobs are never blocked by an overeager client.

The server's own session publishes every score it computes into the
served :class:`~repro.serving.cache_tier.ScorePool` (attached as its
remote tier), so clients mounting the pool as their L4 tier are warmed
by the server's work — and by each other's pushed-back scores.
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.config import ServingConfig
from repro.core.service import JobState, SynthesisJob, SynthesisSession
from repro.events import ProgressEvent
from repro.serving import protocol
from repro.serving.cache_tier import LocalPoolTier, ScorePool
from repro.utils.logging import get_logger

logger = get_logger("serving.server")


class _JobStream:
    """The buffered, subscribable event stream of one job."""

    __slots__ = ("lock", "frames", "subscribers", "terminal")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: ordered ``event`` frames (wire form), seq == index
        self.frames: List[dict] = []
        #: live consumers: (loop, queue) pairs fed via call_soon_threadsafe
        self.subscribers: List[Tuple[asyncio.AbstractEventLoop, "asyncio.Queue[dict]"]] = []
        #: the ``end`` frame once the job settled (None while running)
        self.terminal: Optional[dict] = None


class SynthesisServer:
    """Serve one :class:`SynthesisSession` to concurrent network clients."""

    def __init__(
        self,
        session: SynthesisSession,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.session = session
        self.config = config or ServingConfig()
        self.pool = ScorePool(table=getattr(session, "_score_table", None))
        # the server's own work becomes servable: scores the session
        # computes solving jobs go straight into the pool, and its own
        # misses are answered from what clients pushed back
        session.attach_remote_score_tier(LocalPoolTier(self.pool))
        session.add_listener(self._on_event)
        self._jobs: Dict[str, SynthesisJob] = {}
        self._streams: Dict[str, _JobStream] = {}
        self._registry_lock = threading.Lock()
        #: admitted-but-unsettled job count (the admission bound)
        self._active = 0
        self._admission_lock = threading.Lock()
        self._queue: "queue.Queue[Optional[SynthesisJob]]" = queue.Queue()
        self._stopping = threading.Event()
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._main_task: Optional["asyncio.Task[None]"] = None
        self._scheduler: Optional[threading.Thread] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "SynthesisServer":
        """Bind and start serving on the current asyncio loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="netsyn-serving-scheduler", daemon=True
        )
        self._scheduler.start()
        self._started.set()
        logger.info("synthesis server listening on %s:%d", self.config.host, self.port)
        return self

    async def _serve_forever(self) -> None:
        self._main_task = asyncio.current_task()
        await self.start()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    def start_background(self) -> "SynthesisServer":
        """Run the server on a daemon thread; returns once it listens."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve_forever()),
            name="netsyn-serving-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("synthesis server failed to start")
        return self

    @property
    def address(self) -> str:
        """The ``host:port`` clients connect to (after :meth:`start`)."""
        if self.port is None:
            raise RuntimeError("server not started")
        return f"{self.config.host}:{self.port}"

    def _request_stop(self) -> None:
        """Initiate shutdown without joining (safe from any thread)."""
        self._stopping.set()
        self._queue.put(None)
        if self._loop is not None and self._main_task is not None:
            try:
                self._loop.call_soon_threadsafe(self._main_task.cancel)
            except RuntimeError:  # loop already closed
                pass

    def stop(self) -> None:
        """Shut down the server and join its threads (idempotent)."""
        self._request_stop()
        if self._scheduler is not None and self._scheduler is not threading.current_thread():
            self._scheduler.join(timeout=30.0)
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "SynthesisServer":
        return self.start_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # event routing (called on the session's pump/scheduler threads)

    def _on_event(self, event: ProgressEvent) -> None:
        stream = self._streams.get(event.job_id)
        if stream is None:  # session-scope events (startup recovery etc.)
            return
        frame = {"type": "event", "seq": 0, "event": protocol.event_to_wire(event)}
        with stream.lock:
            frame["seq"] = len(stream.frames)
            stream.frames.append(frame)
            subscribers = list(stream.subscribers)
        for loop, q in subscribers:
            try:
                loop.call_soon_threadsafe(q.put_nowait, frame)
            except RuntimeError:  # that connection's loop is gone
                pass

    def _settle(self, job: SynthesisJob) -> None:
        """Publish a job's terminal frame and release its admission slot."""
        stream = self._streams.get(job.job_id)
        end = {"type": "end", "job": protocol.job_to_wire(job)}
        if stream is not None:
            with stream.lock:
                stream.terminal = end
                subscribers = list(stream.subscribers)
            for loop, q in subscribers:
                try:
                    loop.call_soon_threadsafe(q.put_nowait, end)
                except RuntimeError:
                    pass
        with self._admission_lock:
            self._active -= 1

    # ------------------------------------------------------------------
    # scheduling (the scheduler thread)

    def _schedule_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                first = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if first is None:
                break
            batch = [first]
            deadline = time.monotonic() + self.config.batch_window
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    self._stopping.set()
                    break
                batch.append(item)
            self._run_batch(batch)
        # settle anything still queued so no client hangs on shutdown
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            if not job.done:
                job.state = JobState.CANCELLED
            self._settle(job)

    def _run_batch(self, batch: List[SynthesisJob]) -> None:
        try:
            self.session.run(batch, n_workers=self.config.n_workers)
        except Exception as error:  # noqa: BLE001 - server must survive a bad batch
            logger.exception("batch of %d job(s) failed", len(batch))
            for job in batch:
                if not job.done:
                    job.state = JobState.FAILED
                    job.error = f"{type(error).__name__}: {error}"
        for job in batch:
            self._settle(job)

    # ------------------------------------------------------------------
    # connections (the asyncio loop)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_bytes = self.config.max_frame_bytes
        try:
            while True:
                try:
                    frame = await protocol.read_frame(reader, max_bytes)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client went away between frames: normal
                except protocol.ProtocolError as error:
                    # answer loudly, then drop the connection: after a
                    # malformed frame the byte stream cannot be trusted
                    await protocol.write_frame(
                        writer, protocol.error_frame("bad_frame", str(error)), max_bytes
                    )
                    break
                if await self._dispatch(frame, writer):
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # mid-write disconnect or server shutdown: nothing to save
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # a shutdown-time cancel landing inside this close is
                # absorbed so the task ends cleanly (asyncio's stream
                # callback logs spurious errors for cancelled tasks)
                pass

    async def _dispatch(self, frame: dict, writer: asyncio.StreamWriter) -> bool:
        """Handle one request frame; True closes the connection."""
        max_bytes = self.config.max_frame_bytes
        kind = frame.get("type")
        if kind == "submit":
            await protocol.write_frame(writer, self._handle_submit(frame), max_bytes)
        elif kind == "status":
            await protocol.write_frame(writer, self._job_frame(frame, cancel=False), max_bytes)
        elif kind == "cancel":
            await protocol.write_frame(writer, self._job_frame(frame, cancel=True), max_bytes)
        elif kind == "events":
            await self._handle_events(frame, writer)
        elif kind == "cache_get":
            key = frame.get("key")
            if not isinstance(key, int):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "cache_get needs an int key"), max_bytes
                )
                return True
            self._refresh_pool_table()
            await protocol.write_frame(
                writer, {"type": "cache_value", "value": self.pool.get(key)}, max_bytes
            )
        elif kind == "cache_put":
            entries = frame.get("entries")
            if not isinstance(entries, list):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "cache_put needs an entries list"), max_bytes
                )
                return True
            try:
                count = self.pool.put_many((int(k), float(v)) for k, v in entries)
            except (TypeError, ValueError):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "entries must be [key, value] pairs"), max_bytes
                )
                return True
            await protocol.write_frame(writer, {"type": "cache_ok", "count": count}, max_bytes)
        elif kind == "ping":
            with self._admission_lock:
                active = self._active
            await protocol.write_frame(
                writer,
                {
                    "type": "pong",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "active_jobs": active,
                    "pool": self.pool.stats(),
                },
                max_bytes,
            )
        elif kind == "shutdown":
            if not self.config.allow_remote_shutdown:
                await protocol.write_frame(
                    writer, protocol.error_frame("forbidden", "remote shutdown is disabled"), max_bytes
                )
                return True
            await protocol.write_frame(writer, {"type": "bye"}, max_bytes)
            self._request_stop()
            return True
        else:
            await protocol.write_frame(
                writer, protocol.error_frame("unknown_type", f"unknown frame type {kind!r}"), max_bytes
            )
        return False

    def _refresh_pool_table(self) -> None:
        """Back the pool by the session's L2 table once one exists (the
        table is created lazily at the session's first parallel run)."""
        table = getattr(self.session, "_score_table", None)
        if table is not None:
            self.pool.attach_table(table)

    # -- submit ---------------------------------------------------------

    def _handle_submit(self, frame: dict) -> dict:
        with self._admission_lock:
            if self._active >= self.config.max_pending_jobs:
                return protocol.error_frame(
                    "over_capacity",
                    f"{self._active} unsettled job(s) at the {self.config.max_pending_jobs}-job bound",
                    retry_after=self.config.retry_after,
                )
            self._active += 1
        try:
            task = protocol.task_from_wire(frame.get("task") or {})
            budget = frame.get("budget")
            program_length = frame.get("program_length")
            job = self.session.submit(
                task,
                method=frame.get("method") or None,
                budget=int(budget) if budget is not None else None,
                seed=int(frame.get("seed", 0)),
                program_length=int(program_length) if program_length is not None else None,
            )
        except (protocol.ProtocolError, KeyError, TypeError, ValueError) as error:
            with self._admission_lock:
                self._active -= 1
            return protocol.error_frame("bad_frame", f"rejected submit: {error}")
        with self._registry_lock:
            self._jobs[job.job_id] = job
            self._streams[job.job_id] = _JobStream()
        self._queue.put(job)
        return {"type": "submitted", "job_id": job.job_id, "method": job.method}

    # -- status / cancel ------------------------------------------------

    def _job_frame(self, frame: dict, cancel: bool) -> dict:
        job = self._jobs.get(str(frame.get("job_id")))
        if job is None:
            return protocol.error_frame("unknown_job", f"no job {frame.get('job_id')!r}")
        response = {"type": "job", "job": None}
        if cancel:
            response["accepted"] = job.cancel()
        response["job"] = protocol.job_to_wire(job)
        return response

    # -- event streaming ------------------------------------------------

    async def _handle_events(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        max_bytes = self.config.max_frame_bytes
        job_id = str(frame.get("job_id"))
        stream = self._streams.get(job_id)
        if stream is None:
            await protocol.write_frame(
                writer, protocol.error_frame("unknown_job", f"no job {job_id!r}"), max_bytes
            )
            return
        since = frame.get("since", 0)
        since = since if isinstance(since, int) and since >= 0 else 0
        loop = asyncio.get_running_loop()
        live: "asyncio.Queue[dict]" = asyncio.Queue()
        subscription = (loop, live)
        # snapshot + subscribe atomically: everything before the snapshot
        # is replayed from the buffer, everything after arrives on the
        # queue — no gap, no duplicate, regardless of subscribe timing
        with stream.lock:
            backlog = stream.frames[since:]
            terminal = stream.terminal
            if terminal is None:
                stream.subscribers.append(subscription)
        try:
            for event_frame in backlog:
                await protocol.write_frame(writer, event_frame, max_bytes)
            if terminal is not None:
                await protocol.write_frame(writer, terminal, max_bytes)
                return
            while True:
                event_frame = await live.get()
                await protocol.write_frame(writer, event_frame, max_bytes)
                if event_frame.get("type") == "end":
                    return
        finally:
            with stream.lock:
                if subscription in stream.subscribers:
                    stream.subscribers.remove(subscription)
