"""The asyncio synthesis server: one warm session, many connections.

Architecture (three kinds of thread, one asyncio loop)::

    asyncio loop (netsyn-serving-loop)
        accepts connections, parses frames, answers control requests,
        writes event streams.  Never runs synthesis.
    scheduler thread (netsyn-serving-scheduler)
        drains the admission queue, micro-batches submissions inside
        ``batch_window`` so concurrent clients coalesce into one
        parallel ``session.run``, then settles each job's stream.
    the session's own machinery
        the supervised worker pool, event pump and cache tiers of
        :class:`~repro.core.service.SynthesisSession` — unchanged; the
        server is a network shell around it.

Event routing: the server registers one session listener.  Every event
carries its ``job_id``; the listener appends it (in emission order) to
that job's stream buffer and wakes any subscribed connections through
``loop.call_soon_threadsafe``.  Because the buffer holds the complete
ordered stream, a client may subscribe before, during or after the run —
late subscribers replay the backlog first, so the observed per-job
stream is identical regardless of timing, and a disconnected client can
reconnect and resume from any sequence number.

Backpressure is rejection, not stalling: a ``submit`` beyond
``max_pending_jobs`` unsettled jobs is answered with an
``over_capacity`` error carrying ``retry_after`` — the accept loop and
running jobs are never blocked by an overeager client.

The server's own session publishes every score it computes into the
served :class:`~repro.serving.cache_tier.ScorePool` (attached as its
remote tier), so clients mounting the pool as their L4 tier are warmed
by the server's work — and by each other's pushed-back scores.

Durability (``ServingConfig.journal_dir``): every admission is appended
to a crash-safe :class:`~repro.serving.journal.JobJournal` *before* the
client sees ``submitted``, and every terminal outcome (and cancellation)
is journaled when it happens.  A server killed at any instant — SIGKILL
included — restarts on the same journal directory with nothing lost:
unfinished jobs are re-admitted into the warm session under their
original job ids and re-run (seeded synthesis is deterministic, so the
regenerated event stream is the one the client was reading), settled
jobs answer ``status``/``events``/idempotent resubmits straight from
their journaled results, and a client that retries a ``submit`` under
the same idempotency key after an ambiguous failure is deduplicated
instead of double-running the task.  SIGTERM (via
:meth:`install_sigterm_handler`) triggers a graceful drain: admissions
stop (``server_draining`` errors), running jobs finish, and queued
leftovers stay journaled for the next server run.
"""

from __future__ import annotations

import asyncio
import queue
import signal
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.config import ServingConfig
from repro.core.service import JobState, SynthesisJob, SynthesisSession
from repro.events import ProgressEvent
from repro.serving import protocol
from repro.serving.cache_tier import LocalPoolTier, ScorePool
from repro.serving.journal import JobJournal
from repro.utils.logging import get_logger

logger = get_logger("serving.server")


class _JobStream:
    """The buffered, subscribable event stream of one job."""

    __slots__ = ("lock", "frames", "subscribers", "terminal")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        #: ordered ``event`` frames (wire form), seq == index
        self.frames: List[dict] = []
        #: live consumers: (loop, queue) pairs fed via call_soon_threadsafe
        self.subscribers: List[Tuple[asyncio.AbstractEventLoop, "asyncio.Queue[dict]"]] = []
        #: the ``end`` frame once the job settled (None while running)
        self.terminal: Optional[dict] = None


class SynthesisServer:
    """Serve one :class:`SynthesisSession` to concurrent network clients."""

    def __init__(
        self,
        session: SynthesisSession,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.session = session
        self.config = config or ServingConfig()
        self.pool = ScorePool(table=getattr(session, "_score_table", None))
        # the server's own work becomes servable: scores the session
        # computes solving jobs go straight into the pool, and its own
        # misses are answered from what clients pushed back
        session.attach_remote_score_tier(LocalPoolTier(self.pool))
        session.add_listener(self._on_event)
        if self.config.fuse_jobs:
            # co-admitted same-inputs jobs share kernel dispatches; the
            # session-level knob is what run() branches on
            session.service_config.fuse_jobs = True
        self._jobs: Dict[str, SynthesisJob] = {}
        self._streams: Dict[str, _JobStream] = {}
        self._registry_lock = threading.Lock()
        #: admitted-but-unsettled job count (the admission bound)
        self._active = 0
        self._admission_lock = threading.Lock()
        self._queue: "queue.Queue[Optional[SynthesisJob]]" = queue.Queue()
        self._stopping = threading.Event()
        #: set while draining: admissions and side requests answer
        #: ``server_draining``; event streams of running jobs keep flowing
        self._draining = threading.Event()
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._main_task: Optional["asyncio.Task[None]"] = None
        self._scheduler: Optional[threading.Thread] = None
        self._thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None
        self._started_at = time.monotonic()
        #: count of quick (non-stream) dispatches currently answering;
        #: shutdown waits briefly for this to reach zero so in-flight
        #: side requests settle with a frame instead of a reset
        self._busy = 0
        # -- durability state (all journal-backed, empty without one) --
        #: settled jobs answerable from the journal: job_id -> wire form
        self._settled_wire: Dict[str, dict] = {}
        #: idempotency dedup: client key -> job_id (live or settled)
        self._key_to_job: Dict[str, str] = {}
        #: live job_id -> its idempotency key (to journal the settle)
        self._job_keys: Dict[str, Optional[str]] = {}
        #: admitted-but-unsettled job ids present in the journal
        self._journal_pending: set = set()
        #: job ids re-admitted from the journal at startup
        self.recovered_jobs: List[str] = []
        #: recovery-time events (``server_recovered``,
        #: ``journal_record_skipped``) — also appended to the session's
        #: ``startup_events`` so attached listeners see them at next run
        self.recovery_events: List[ProgressEvent] = []
        self._journal: Optional[JobJournal] = None
        if self.config.journal_dir:
            self._journal = JobJournal(
                self.config.journal_dir,
                compact_bytes=self.config.journal_compact_bytes,
                fsync=self.config.journal_fsync,
            )
            self._recover()

    # ------------------------------------------------------------------
    # journal recovery (runs in __init__, before the server listens)

    def _record_recovery_event(self, event: ProgressEvent) -> None:
        self.recovery_events.append(event)
        # session.startup_events flush to attached listeners at the next
        # run, so server-side logs record the recovery too
        self.session.startup_events.append(event)

    def _recover(self) -> None:
        """Replay the journal: re-admit unfinished jobs, index settled ones."""
        assert self._journal is not None

        def on_skip(reason: str) -> None:
            self._record_recovery_event(
                ProgressEvent(kind="journal_record_skipped", reason=reason)
            )

        state = self._journal.replay(on_skip=on_skip)
        self._settled_wire = dict(state.settled)
        self._key_to_job = dict(state.key_to_job)
        for job_id, key in state.settled_keys.items():
            self._job_keys.setdefault(job_id, key)
        for job_id, admit in state.pending.items():
            try:
                task = protocol.task_from_wire(admit.get("task") or {})
                job = self.session.submit(
                    task,
                    method=admit.get("method") or None,
                    budget=admit.get("budget"),
                    seed=int(admit.get("seed", 0)),
                    program_length=admit.get("program_length"),
                    job_id=job_id,
                )
            except (protocol.ProtocolError, KeyError, TypeError, ValueError) as error:
                # an unfinished job whose admit record no longer parses is
                # damage, not work: skip it like a torn record
                on_skip(f"unrecoverable admit record for {job_id}: {error}")
                continue
            key = admit.get("idempotency_key")
            self._job_keys[job.job_id] = str(key) if key else None
            self._jobs[job.job_id] = job
            self._streams[job.job_id] = _JobStream()
            self._journal_pending.add(job.job_id)
            self.recovered_jobs.append(job.job_id)
            with self._admission_lock:
                self._active += 1
            if job_id in state.cancelled:
                # the cancellation was journaled before the crash: honor
                # it without re-running (pending jobs cancel immediately)
                job.cancel()
                self._settle(job)
            else:
                self._queue.put(job)
        if self.recovered_jobs or state.skipped:
            self._record_recovery_event(
                ProgressEvent(
                    kind="server_recovered",
                    reason=(
                        f"re-admitted {len(self.recovered_jobs)} unfinished job(s), "
                        f"{len(self._settled_wire)} settled job(s) answerable from "
                        f"the journal, {state.skipped} record(s) skipped"
                    ),
                )
            )
            logger.info("journal recovery: %s", self.recovery_events[-1].reason)

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> "SynthesisServer":
        """Bind and start serving on the current asyncio loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="netsyn-serving-scheduler", daemon=True
        )
        self._scheduler.start()
        self._started.set()
        logger.info("synthesis server listening on %s:%d", self.config.host, self.port)
        return self

    async def _serve_forever(self) -> None:
        self._main_task = asyncio.current_task()
        await self.start()
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    def start_background(self) -> "SynthesisServer":
        """Run the server on a daemon thread; returns once it listens."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._serve_forever()),
            name="netsyn-serving-loop",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("synthesis server failed to start")
        return self

    @property
    def address(self) -> str:
        """The ``host:port`` clients connect to (after :meth:`start`)."""
        if self.port is None:
            raise RuntimeError("server not started")
        return f"{self.config.host}:{self.port}"

    def _request_stop(self) -> None:
        """Initiate shutdown without joining (safe from any thread)."""
        self._draining.set()  # in-flight side requests answer server_draining
        self._stopping.set()
        self._queue.put(None)
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._schedule_graceful_shutdown)
            except RuntimeError:  # loop already closed
                pass

    def _schedule_graceful_shutdown(self) -> None:
        asyncio.ensure_future(self._graceful_shutdown())

    async def _graceful_shutdown(self) -> None:
        """Stop accepting, let in-flight quick dispatches answer, then die.

        Side requests (``status``/``cancel``/``submit``) caught mid-flight
        by the shutdown settle with a ``server_draining`` frame instead
        of a bare connection reset; streams blocked waiting for events
        are cancelled with the loop (their clients reconnect).
        """
        if self._server is not None:
            self._server.close()
        for _ in range(50):
            if not self._busy:
                break
            await asyncio.sleep(0.01)
        if self._main_task is not None:
            self._main_task.cancel()

    def request_drain(self) -> None:
        """Begin a graceful drain (safe from any thread, idempotent).

        Admissions and side requests start answering ``server_draining``;
        the scheduler finishes the batch it is running and exits; queued
        jobs that never ran stay journaled for the next server run (with
        no journal they are settled as cancelled so no client hangs).
        """
        if self._draining.is_set():
            return
        self._draining.set()
        logger.info("drain requested: admissions stopped, running jobs finishing")
        self._queue.put(None)

    def drain_and_stop(self) -> None:
        """Graceful SIGTERM path: drain, bounded wait, then stop.

        Waits up to ``ServingConfig.drain_timeout`` for running jobs to
        finish; whatever is still unfinished past that stays journaled
        and the server stops anyway.
        """
        self.request_drain()
        if self._scheduler is not None and self._scheduler is not threading.current_thread():
            self._scheduler.join(timeout=self.config.drain_timeout)
            if self._scheduler.is_alive():
                logger.warning(
                    "drain timed out after %.1fs; unfinished jobs stay journaled",
                    self.config.drain_timeout,
                )
        self.stop()

    def install_sigterm_handler(self) -> bool:
        """Route SIGTERM to :meth:`drain_and_stop` (main thread only).

        Returns False (and changes nothing) when not called from the
        main thread — signal handlers can only be installed there.
        """

        def handler(signum: int, _frame: Any) -> None:
            logger.info("SIGTERM: draining before shutdown")
            # the drain blocks on running jobs; do it off the handler so
            # the signal returns immediately
            threading.Thread(
                target=self.drain_and_stop, name="netsyn-serving-drain", daemon=True
            ).start()

        try:
            signal.signal(signal.SIGTERM, handler)
        except ValueError:  # not the main thread
            return False
        return True

    def stop(self) -> None:
        """Shut down the server and join its threads (idempotent).

        Jobs still queued at the stop are settled as cancelled when the
        server has no journal (so no client hangs); with one they stay
        journaled as pending and the next server run re-admits them.
        Use :meth:`drain_and_stop` to finish running jobs first.
        """
        self._request_stop()
        if self._scheduler is not None and self._scheduler is not threading.current_thread():
            self._scheduler.join(timeout=30.0)
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=30.0)
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "SynthesisServer":
        return self.start_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # event routing (called on the session's pump/scheduler threads)

    def _on_event(self, event: ProgressEvent) -> None:
        stream = self._streams.get(event.job_id)
        if stream is None:  # session-scope events (startup recovery etc.)
            return
        frame = {"type": "event", "seq": 0, "event": protocol.event_to_wire(event)}
        with stream.lock:
            frame["seq"] = len(stream.frames)
            stream.frames.append(frame)
            subscribers = list(stream.subscribers)
        for loop, q in subscribers:
            try:
                loop.call_soon_threadsafe(q.put_nowait, frame)
            except RuntimeError:  # that connection's loop is gone
                pass

    def _settle(self, job: SynthesisJob) -> None:
        """Publish a job's terminal frame and release its admission slot.

        With a journal, the terminal outcome is made durable *before*
        subscribers see the end frame — a crash between the two costs a
        re-delivery (the journaled result answers the resumed stream),
        never a lost result.
        """
        stream = self._streams.get(job.job_id)
        end = {"type": "end", "job": protocol.job_to_wire(job)}
        if self._journal is not None:
            try:
                self._journal.settle(
                    job.job_id, end["job"], idempotency_key=self._job_keys.get(job.job_id)
                )
            except OSError as error:  # journal on a full/broken disk:
                logger.warning("journal settle of %s failed: %s", job.job_id, error)
            self._settled_wire[job.job_id] = end["job"]
            self._journal_pending.discard(job.job_id)
            try:
                self._journal.maybe_compact()
            except OSError as error:
                logger.warning("journal compaction failed: %s", error)
        if stream is not None:
            with stream.lock:
                stream.terminal = end
                subscribers = list(stream.subscribers)
            for loop, q in subscribers:
                try:
                    loop.call_soon_threadsafe(q.put_nowait, end)
                except RuntimeError:
                    pass
        with self._admission_lock:
            self._active -= 1

    # ------------------------------------------------------------------
    # scheduling (the scheduler thread)

    def _schedule_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                first = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if first is None:
                break
            batch = [first]
            deadline = time.monotonic() + self.config.batch_window
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is None:
                    self._stopping.set()
                    break
                batch.append(item)
            self._run_batch(batch)
        # leftovers still queued: with a journal they stay pending on
        # disk — the next server run re-admits them — so their work is
        # never discarded; without one they are settled as cancelled so
        # no client hangs on a stream that will never end
        leftover = 0
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            if self._journal is not None and not job.done:
                leftover += 1
                continue
            if not job.done:
                job.state = JobState.CANCELLED
            self._settle(job)
        if leftover:
            logger.info(
                "%d queued job(s) left journaled for the next server run", leftover
            )

    def _run_batch(self, batch: List[SynthesisJob]) -> None:
        try:
            self.session.run(batch, n_workers=self.config.n_workers)
        except Exception as error:  # noqa: BLE001 - server must survive a bad batch
            logger.exception("batch of %d job(s) failed", len(batch))
            for job in batch:
                if not job.done:
                    job.state = JobState.FAILED
                    job.error = f"{type(error).__name__}: {error}"
        for job in batch:
            self._settle(job)

    # ------------------------------------------------------------------
    # connections (the asyncio loop)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_bytes = self.config.max_frame_bytes
        try:
            while True:
                try:
                    frame = await protocol.read_frame(reader, max_bytes)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # client went away between frames: normal
                except protocol.ProtocolError as error:
                    # answer loudly, then drop the connection: after a
                    # malformed frame the byte stream cannot be trusted
                    await protocol.write_frame(
                        writer, protocol.error_frame("bad_frame", str(error)), max_bytes
                    )
                    break
                if await self._dispatch(frame, writer):
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # mid-write disconnect or server shutdown: nothing to save
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # a shutdown-time cancel landing inside this close is
                # absorbed so the task ends cleanly (asyncio's stream
                # callback logs spurious errors for cancelled tasks)
                pass

    async def _dispatch(self, frame: dict, writer: asyncio.StreamWriter) -> bool:
        """Handle one request frame; True closes the connection."""
        kind = frame.get("type")
        if kind == "events":
            # streams run long and must keep flowing during a drain so
            # clients can finish reading their running jobs
            await self._handle_events(frame, writer)
            return False
        self._busy += 1  # loop-thread only; shutdown waits for zero
        try:
            return await self._dispatch_quick(kind, frame, writer)
        finally:
            self._busy -= 1

    async def _dispatch_quick(
        self, kind: Any, frame: dict, writer: asyncio.StreamWriter
    ) -> bool:
        max_bytes = self.config.max_frame_bytes
        if kind in ("submit", "status", "cancel") and (
            self._draining.is_set() or self._stopping.is_set()
        ):
            # a draining server settles side requests with a structured
            # answer, never a bare connection reset; clients retry
            # against the restarted server (the journal keeps their jobs)
            await protocol.write_frame(
                writer,
                protocol.error_frame(
                    "server_draining",
                    "server is draining; running jobs finish, queued jobs stay journaled",
                    retry_after=self.config.retry_after,
                ),
                max_bytes,
            )
            return False
        if kind == "submit":
            await protocol.write_frame(writer, self._handle_submit(frame), max_bytes)
        elif kind == "health":
            await protocol.write_frame(writer, self._health_frame(), max_bytes)
        elif kind == "status":
            await protocol.write_frame(writer, self._job_frame(frame, cancel=False), max_bytes)
        elif kind == "cancel":
            await protocol.write_frame(writer, self._job_frame(frame, cancel=True), max_bytes)
        elif kind == "cache_get":
            key = frame.get("key")
            if not isinstance(key, int):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "cache_get needs an int key"), max_bytes
                )
                return True
            self._refresh_pool_table()
            await protocol.write_frame(
                writer, {"type": "cache_value", "value": self.pool.get(key)}, max_bytes
            )
        elif kind == "cache_put":
            entries = frame.get("entries")
            if not isinstance(entries, list):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "cache_put needs an entries list"), max_bytes
                )
                return True
            try:
                count = self.pool.put_many((int(k), float(v)) for k, v in entries)
            except (TypeError, ValueError):
                await protocol.write_frame(
                    writer, protocol.error_frame("bad_frame", "entries must be [key, value] pairs"), max_bytes
                )
                return True
            await protocol.write_frame(writer, {"type": "cache_ok", "count": count}, max_bytes)
        elif kind == "ping":
            with self._admission_lock:
                active = self._active
            await protocol.write_frame(
                writer,
                {
                    "type": "pong",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "active_jobs": active,
                    "pool": self.pool.stats(),
                },
                max_bytes,
            )
        elif kind == "shutdown":
            if not self.config.allow_remote_shutdown:
                await protocol.write_frame(
                    writer, protocol.error_frame("forbidden", "remote shutdown is disabled"), max_bytes
                )
                return True
            await protocol.write_frame(writer, {"type": "bye"}, max_bytes)
            self._request_stop()
            return True
        else:
            await protocol.write_frame(
                writer, protocol.error_frame("unknown_type", f"unknown frame type {kind!r}"), max_bytes
            )
        return False

    def _health_frame(self) -> dict:
        """The ``health`` answer: one frame summarizing server vitals."""
        with self._admission_lock:
            active = self._active
        if self._stopping.is_set():
            state = "stopping"
        elif self._draining.is_set():
            state = "draining"
        else:
            state = "serving"
        journal = None
        if self._journal is not None:
            journal = {
                "appends": self._journal.appends,
                "compactions": self._journal.compactions,
                "bytes": self._journal.size(),
            }
        return {
            "type": "health",
            "state": state,
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime": time.monotonic() - self._started_at,
            "active_jobs": active,
            "queue_depth": self._queue.qsize(),
            "journaled_pending": len(self._journal_pending),
            "settled_jobs": len(self._settled_wire),
            "recovered_jobs": len(self.recovered_jobs),
            "methods": list(self.session.methods),
            "journal": journal,
        }

    def _refresh_pool_table(self) -> None:
        """Back the pool by the session's L2 table once one exists (the
        table is created lazily at the session's first parallel run)."""
        table = getattr(self.session, "_score_table", None)
        if table is not None:
            self.pool.attach_table(table)

    # -- submit ---------------------------------------------------------

    def _handle_submit(self, frame: dict) -> dict:
        key = frame.get("idempotency_key")
        key = str(key) if key else None
        if key is not None:
            # dedup BEFORE the admission bound: answering for work the
            # server already owns costs nothing and must never be
            # rejected, or a retrying client could double-run its task
            with self._registry_lock:
                existing = self._key_to_job.get(key)
            if existing is not None:
                live = self._jobs.get(existing)
                settled = self._settled_wire.get(existing)
                method = live.method if live is not None else (settled or {}).get("method", "")
                if live is not None or settled is not None:
                    return {
                        "type": "submitted",
                        "job_id": existing,
                        "method": method,
                        "duplicate": True,
                    }
        with self._admission_lock:
            if self._active >= self.config.max_pending_jobs:
                return protocol.error_frame(
                    "over_capacity",
                    f"{self._active} unsettled job(s) at the {self.config.max_pending_jobs}-job bound",
                    retry_after=self.config.retry_after,
                )
            self._active += 1
        try:
            task_wire = frame.get("task") or {}
            task = protocol.task_from_wire(task_wire)
            budget = frame.get("budget")
            program_length = frame.get("program_length")
            job = self.session.submit(
                task,
                method=frame.get("method") or None,
                budget=int(budget) if budget is not None else None,
                seed=int(frame.get("seed", 0)),
                program_length=int(program_length) if program_length is not None else None,
            )
            if self._journal is not None:
                # durable before acknowledged: once the client sees
                # ``submitted``, no crash may lose the admission
                self._journal.admit(
                    job.job_id,
                    task_wire,
                    method=job.method,
                    budget=job.budget_limit,
                    seed=job.seed,
                    program_length=job.program_length,
                    idempotency_key=key,
                )
                self._journal_pending.add(job.job_id)
        except (protocol.ProtocolError, KeyError, TypeError, ValueError, OSError) as error:
            with self._admission_lock:
                self._active -= 1
            return protocol.error_frame("bad_frame", f"rejected submit: {error}")
        with self._registry_lock:
            self._jobs[job.job_id] = job
            self._streams[job.job_id] = _JobStream()
            self._job_keys[job.job_id] = key
            if key is not None:
                self._key_to_job[key] = job.job_id
        self._queue.put(job)
        return {"type": "submitted", "job_id": job.job_id, "method": job.method}

    # -- status / cancel ------------------------------------------------

    def _job_frame(self, frame: dict, cancel: bool) -> dict:
        job_id = str(frame.get("job_id"))
        job = self._jobs.get(job_id)
        if job is None:
            # a job settled before a restart is still answerable — its
            # terminal wire form was journaled with the settle
            settled = self._settled_wire.get(job_id)
            if settled is not None:
                response = {"type": "job", "job": settled}
                if cancel:
                    response["accepted"] = settled.get("state") == JobState.CANCELLED.value
                return response
            return protocol.error_frame("unknown_job", f"no job {job_id!r}")
        response = {"type": "job", "job": None}
        if cancel:
            was_terminal = job.done
            response["accepted"] = job.cancel()
            if self._journal is not None and not was_terminal and not job.done:
                # the job is live and now carries a cancel request: make
                # the request durable so a crash before it lands still
                # recovers the job as cancelled (terminal transitions
                # are journaled by the settle itself)
                try:
                    self._journal.cancel(job.job_id)
                except OSError as error:
                    logger.warning("journal cancel of %s failed: %s", job.job_id, error)
        response["job"] = protocol.job_to_wire(job)
        return response

    # -- event streaming ------------------------------------------------

    async def _handle_events(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        max_bytes = self.config.max_frame_bytes
        job_id = str(frame.get("job_id"))
        stream = self._streams.get(job_id)
        if stream is None:
            # a job that settled before a restart has no live stream, but
            # its journaled terminal form still ends the client's wait
            # (the intermediate events are not journaled — resuming after
            # the settle yields the outcome, not a replay)
            settled = self._settled_wire.get(job_id)
            if settled is not None:
                await protocol.write_frame(writer, {"type": "end", "job": settled}, max_bytes)
                return
            await protocol.write_frame(
                writer, protocol.error_frame("unknown_job", f"no job {job_id!r}"), max_bytes
            )
            return
        since = frame.get("since", 0)
        since = since if isinstance(since, int) and since >= 0 else 0
        loop = asyncio.get_running_loop()
        live: "asyncio.Queue[dict]" = asyncio.Queue()
        subscription = (loop, live)
        # snapshot + subscribe atomically: everything before the snapshot
        # is replayed from the buffer, everything after arrives on the
        # queue — no gap, no duplicate, regardless of subscribe timing
        with stream.lock:
            backlog = stream.frames[since:]
            terminal = stream.terminal
            if terminal is None:
                stream.subscribers.append(subscription)
        try:
            for event_frame in backlog:
                await protocol.write_frame(writer, event_frame, max_bytes)
            if terminal is not None:
                await protocol.write_frame(writer, terminal, max_bytes)
                return
            while True:
                event_frame = await live.get()
                # a recovered job's re-run regenerates its stream from
                # seq 0; a client resuming with since= from before the
                # crash must not be re-sent events it already has —
                # deliver only from its resume point (the regenerated
                # events are identical: seeded synthesis is deterministic)
                if event_frame.get("type") == "event" and event_frame.get("seq", 0) < since:
                    continue
                await protocol.write_frame(writer, event_frame, max_bytes)
                if event_frame.get("type") == "end":
                    return
        finally:
            with stream.lock:
                if subscription in stream.subscribers:
                    stream.subscribers.remove(subscription)
