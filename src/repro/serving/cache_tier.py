"""The L4 network score tier: a served score pool and its client tier.

Three small pieces complete the cache hierarchy across host boundaries:

:class:`ScorePool`
    The server-side store: a locked dict of ``key64 -> score`` (the same
    64-bit structural keys the L2 shared table uses, so one key space
    spans every tier).  Optionally backed by the serving session's own
    L2 table — a pool miss consults the table before answering, so
    scores computed by the server's workers are served without ever
    being copied into the pool.

:class:`LocalPoolTier`
    The in-process adapter the *server's own session* attaches as its
    remote tier: gets and puts go straight into the pool, so every score
    the server computes while solving jobs becomes servable to clients.

:class:`RemoteScoreTier`
    The client-side tier a :class:`~repro.execution.score_cache.TieredScoreCache`
    falls through to after L1-L3 miss.  ``get`` is one synchronous
    request/response on a dedicated connection; ``put`` never blocks the
    search — entries are queued and a background thread flushes them as
    batched ``cache_put`` frames.  Network failures trip a half-open
    circuit breaker: calls become cheap no-ops for a (doubling) cooldown,
    then a single probe rechecks the server and a success re-enables the
    tier — a dead cache server slows clients down and a restarted one is
    picked back up, neither ever breaks a search.

Determinism: cached scores are pure functions of ``(model, program,
io_set)`` and the key64 space is namespaced per fitness kind, so serving
a score from any tier — including this one — cannot change results, only
skip recomputation.  Mixing *different* models against one pool is the
caller's error, exactly as it is for the on-disk tiers (servers are
deployed one-per-trained-model; the cache log guards with a model hash).
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.config import parse_address
from repro.serving import protocol
from repro.utils.logging import get_logger

logger = get_logger("serving.cache_tier")


class ScorePool:
    """Server-side ``key64 -> score`` store shared by every connection."""

    def __init__(self, table: Any = None) -> None:
        self._store: Dict[int, float] = {}
        self._lock = threading.Lock()
        #: optional L2 shared score table consulted on pool misses
        self._table = table
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def __len__(self) -> int:
        return len(self._store)

    def attach_table(self, table: Any) -> None:
        """Back pool misses by an L2 shared score table (same key space)."""
        self._table = table

    def get(self, key64: int) -> Optional[float]:
        with self._lock:
            value = self._store.get(key64)
            if value is None and self._table is not None:
                entry = self._table.get(key64)
                if entry is not None:
                    value = entry[0]
                    self._store[key64] = value
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key64: int, value: float) -> None:
        with self._lock:
            self._store[int(key64)] = float(value)
            self.puts += 1

    def put_many(self, entries) -> int:
        """Bulk insert ``(key64, value)`` pairs; returns how many landed."""
        count = 0
        with self._lock:
            for key64, value in entries:
                self._store[int(key64)] = float(value)
                count += 1
            self.puts += count
        return count

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._store),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
            }


class LocalPoolTier:
    """The server session's remote tier: a direct view of its own pool."""

    def __init__(self, pool: ScorePool) -> None:
        self.pool = pool

    def get(self, key64: int) -> Optional[float]:
        return self.pool.get(key64)

    def put(self, key64: int, value: float) -> None:
        self.pool.put(key64, value)


class RemoteScoreTier:
    """Client-side L4 tier speaking ``cache_get``/``cache_put`` frames.

    Contract (what :meth:`TieredScoreCache.attach_remote` documents):
    ``get`` is synchronous and returns None on a miss *or on any network
    trouble*; ``put`` enqueues and returns immediately — a background
    pusher thread batches entries into ``cache_put`` frames, flushing
    when ``push_batch_size`` entries are queued or the oldest entry is
    ``push_interval`` seconds old.

    Failures trip a **half-open circuit breaker** instead of killing the
    tier forever: after a failure the breaker opens and every call is a
    cheap no-op for ``breaker_cooldown`` seconds, then exactly one probe
    request is let through (half-open).  A successful probe closes the
    breaker — the tier is fully live again, surviving a cache-server
    restart.  A failed probe re-opens it with the cooldown doubled (up
    to ``breaker_cooldown_cap``), so a permanently-dead server costs one
    cheap failed probe per cooldown, never a stalled search.
    """

    def __init__(
        self,
        address: str,
        timeout: float = 5.0,
        push_batch_size: int = 128,
        push_interval: float = 0.25,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        breaker_cooldown: float = 1.0,
        breaker_cooldown_cap: float = 30.0,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = float(timeout)
        self.push_batch_size = int(push_batch_size)
        self.push_interval = float(push_interval)
        self.max_frame_bytes = int(max_frame_bytes)
        self.breaker_cooldown = max(0.01, float(breaker_cooldown))
        self.breaker_cooldown_cap = max(self.breaker_cooldown, float(breaker_cooldown_cap))
        self._sock: Optional[socket.socket] = None
        #: one lock serializes every request/response exchange — gets from
        #: the search thread and batched puts from the pusher share one
        #: connection, and frames must not interleave mid-exchange
        self._io_lock = threading.Lock()
        self._queue: List[Tuple[int, float]] = []
        self._queue_lock = threading.Lock()
        self._queued_at: Optional[float] = None
        self._closed = False
        self._wake = threading.Event()
        self._pusher: Optional[threading.Thread] = None
        # circuit breaker (all fields guarded by _breaker_lock)
        self._breaker_lock = threading.Lock()
        self._open = False
        self._probing = False
        self._cooldown = self.breaker_cooldown
        self._retry_at = 0.0
        # stats (read by tests and the benchmark)
        self.gets = 0
        self.hits = 0
        self.puts_queued = 0
        self.puts_sent = 0
        self.breaker_opens = 0
        self.breaker_closes = 0

    # ------------------------------------------------------------------
    # circuit breaker

    @property
    def dead(self) -> bool:
        """True while the breaker is open (unlike the name's history, no
        longer permanent — a recovered server closes it again)."""
        return self._open

    @property
    def breaker_state(self) -> str:
        with self._breaker_lock:
            if not self._open:
                return "closed"
            if self._probing or time.monotonic() >= self._retry_at:
                return "half-open"
            return "open"

    def _admit(self) -> bool:
        """May a request go out?  Closed: yes.  Open: only the single
        half-open probe once the cooldown elapsed."""
        with self._breaker_lock:
            if not self._open:
                return True
            if self._probing or time.monotonic() < self._retry_at:
                return False
            self._probing = True
            return True

    def _trip(self, error: Exception) -> None:
        """A request failed: open (or re-open, doubling the cooldown)."""
        with self._breaker_lock:
            self._probing = False
            if not self._open:
                self.breaker_opens += 1
                logger.warning(
                    "remote score tier %s:%d breaker opened (%.2fs cooldown): %s",
                    self.host, self.port, self._cooldown, error,
                )
            self._open = True
            self._retry_at = time.monotonic() + self._cooldown
            self._cooldown = min(self._cooldown * 2.0, self.breaker_cooldown_cap)
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reset(self) -> None:
        """A request succeeded: close the breaker, restore the cooldown."""
        with self._breaker_lock:
            self._probing = False
            if self._open:
                self._open = False
                self._cooldown = self.breaker_cooldown
                self.breaker_closes += 1
                logger.info(
                    "remote score tier %s:%d breaker closed (server back)",
                    self.host, self.port,
                )

    def _connection(self) -> socket.socket:
        """The lazily-opened dedicated cache connection (io_lock held)."""
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
        return self._sock

    def _exchange(self, request: dict, want: str) -> Optional[dict]:
        """One request/response round trip; None (and a tripped breaker)
        on failure, None (cheaply) while the breaker holds requests."""
        if self._closed or not self._admit():
            return None
        with self._io_lock:
            try:
                sock = self._connection()
                protocol.send_frame(sock, request, self.max_frame_bytes)
                response = protocol.recv_frame(sock, self.max_frame_bytes)
            except (OSError, protocol.ProtocolError) as error:
                self._trip(error)
                return None
        if response.get("type") != want:
            self._trip(protocol.ProtocolError(f"expected {want!r}, got {response.get('type')!r}"))
            return None
        self._reset()
        return response

    # ------------------------------------------------------------------
    def get(self, key64: int) -> Optional[float]:
        """Synchronous pool lookup (None on miss, trouble, or dead tier)."""
        self.gets += 1
        response = self._exchange({"type": "cache_get", "key": int(key64)}, "cache_value")
        if response is None:
            return None
        value = response.get("value")
        if value is None:
            return None
        self.hits += 1
        return float(value)

    def put(self, key64: int, value: float) -> None:
        """Queue one entry for the background pusher (never blocks).
        Dropped while the breaker is open — puts are best-effort."""
        if self._open or self._closed:
            return
        with self._queue_lock:
            self._queue.append((int(key64), float(value)))
            self.puts_queued += 1
            if self._queued_at is None:
                self._queued_at = time.monotonic()
            full = len(self._queue) >= self.push_batch_size
        self._ensure_pusher()
        if full:
            self._wake.set()

    def _ensure_pusher(self) -> None:
        if self._pusher is None or not self._pusher.is_alive():
            self._pusher = threading.Thread(
                target=self._push_loop, name="netsyn-l4-pusher", daemon=True
            )
            self._pusher.start()

    def _drain(self) -> List[Tuple[int, float]]:
        with self._queue_lock:
            batch, self._queue = self._queue, []
            self._queued_at = None
        return batch

    def _push_loop(self) -> None:
        while not self._closed:
            self._wake.wait(timeout=self.push_interval / 2)
            self._wake.clear()
            with self._queue_lock:
                oldest = self._queued_at
                size = len(self._queue)
            if not size:
                continue
            if size < self.push_batch_size and (
                oldest is None or time.monotonic() - oldest < self.push_interval
            ):
                continue
            self.flush()

    def flush(self) -> None:
        """Push every queued entry now (also called by :meth:`close`)."""
        batch = self._drain()
        if not batch or self._closed:
            return
        response = self._exchange(
            {"type": "cache_put", "entries": [[k, v] for k, v in batch]}, "cache_ok"
        )
        if response is not None:
            self.puts_sent += len(batch)

    def close(self) -> None:
        """Flush pending pushes and drop the connection (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._wake.set()
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteScoreTier":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
