"""The network synthesis service (server, client, wire protocol, L4 tier).

One :class:`~repro.serving.server.SynthesisServer` owns a warm
:class:`~repro.core.service.SynthesisSession` and serves many concurrent
clients over a small length-prefixed JSON protocol: job submission with
bounded admission, live wire-streamed progress events, cancellation, and
a shared score pool other processes mount as their **L4 cache tier**.

The cache hierarchy this completes::

    L1  per-process LRU            (execution/score_cache.py)
    L2  shared mmap table          (execution/shared_table.py)
    L3  append-only cache log      (core/artifacts.py)
    L4  network score pool         (serving/cache_tier.py)   <- this package

Typical topology: one server process per trained model, N client
processes (interactive sessions, evaluation runners) that submit jobs
and/or mount the server's score pool so one client's NN forwards warm
every other client.

Durability (configure ``ServingConfig.journal_dir``): every admission
and terminal outcome is appended to a crash-safe write-ahead
:class:`~repro.serving.journal.JobJournal`; a killed server restarted on
the same journal re-admits unfinished jobs under their original ids and
answers idempotent resubmits from journaled results, while the
self-healing client reconnects with backoff and resumes event streams
gap-free via the ``since=`` cursor.

Everything here is standard-library only (asyncio + sockets + json);
importing ``repro.serving`` never pulls optional dependencies.
"""

from repro.serving.cache_tier import LocalPoolTier, RemoteScoreTier, ScorePool
from repro.serving.client import (
    RemoteError,
    RemoteJob,
    RemoteSynthesisSession,
    ServerOverloaded,
    StreamTimeout,
)
from repro.serving.journal import JobJournal, JournalState
from repro.serving.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serving.server import SynthesisServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ScorePool",
    "LocalPoolTier",
    "RemoteScoreTier",
    "RemoteError",
    "RemoteJob",
    "RemoteSynthesisSession",
    "ServerOverloaded",
    "StreamTimeout",
    "JobJournal",
    "JournalState",
    "SynthesisServer",
]
