"""Run a synthesis server from the command line.

``python -m repro.serving --port 7777 --journal-dir ./journal`` starts a
:class:`~repro.serving.server.SynthesisServer` over a warm session and
serves until stopped.  SIGTERM triggers the graceful drain (admissions
stop, running jobs finish, queued leftovers stay journaled); SIGKILL is
survivable too when a journal directory is configured — restart on the
same ``--journal-dir`` and the unfinished jobs are re-admitted under
their original ids.

This is the entry point the durability tests, the chaos example and
``benchmarks/bench_serving_recovery.py`` use to get a real server
*process* they can kill; it is equally the shape of a production
deployment (one process per trained model, supervised by systemd or a
container runtime that restarts it on the same journal volume).

``--fitness edit`` (the default) serves the artifact-free edit-distance
backend — no training, ready in milliseconds.  ``--fitness cf`` trains
(or warm-starts from ``--artifact-dir``) the small CF model first.

The line ``SERVING host:port`` is printed to stdout once the socket
listens, so a parent process can wait for readiness by reading it.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import NetSynConfig, ServiceConfig, ServingConfig
from repro.core.artifacts import ArtifactStore
from repro.core.service import SynthesisService, SynthesisSession
from repro.serving.server import SynthesisServer


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving", description="Run a network synthesis server."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    parser.add_argument(
        "--fitness", choices=("edit", "cf"), default="edit",
        help="edit = artifact-free (instant); cf = train/warm-start the small CF model",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--artifact-dir", default=None, help="persisted Phase-1 artifacts (cf only)"
    )
    parser.add_argument(
        "--journal-dir", default=None,
        help="crash-safe job journal directory (enables durability)",
    )
    parser.add_argument("--journal-fsync", action="store_true")
    parser.add_argument("--n-workers", type=int, default=1)
    parser.add_argument("--batch-window", type=float, default=0.05)
    parser.add_argument("--max-pending-jobs", type=int, default=64)
    parser.add_argument("--drain-timeout", type=float, default=30.0)
    parser.add_argument("--allow-remote-shutdown", action="store_true")
    return parser


def open_session(args: argparse.Namespace) -> SynthesisSession:
    if args.fitness == "edit":
        config = NetSynConfig.small().replace(
            fitness_kind="edit", fp_guided_mutation=False, seed=args.seed
        )
        return SynthesisSession(
            config,
            ArtifactStore(),
            methods=("edit",),
            service_config=ServiceConfig(persist_caches=False),
        )
    config = NetSynConfig.small(fitness_kind="cf", seed=args.seed)
    service = SynthesisService(
        config, service_config=ServiceConfig(artifact_dir=args.artifact_dir)
    )
    return service.open_session(methods=("netsyn_cf",))


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    session = open_session(args)
    server = SynthesisServer(
        session,
        ServingConfig(
            host=args.host,
            port=args.port,
            n_workers=args.n_workers,
            batch_window=args.batch_window,
            max_pending_jobs=args.max_pending_jobs,
            journal_dir=args.journal_dir,
            journal_fsync=args.journal_fsync,
            drain_timeout=args.drain_timeout,
            allow_remote_shutdown=args.allow_remote_shutdown,
        ),
    )
    server.start_background()
    server.install_sigterm_handler()
    print(f"SERVING {server.address}", flush=True)
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=0.5)
    except KeyboardInterrupt:
        server.drain_and_stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
