"""The blocking client: a remote session mirroring the local session API.

:class:`RemoteSynthesisSession` exposes the same surface the in-process
:class:`~repro.core.service.SynthesisSession` does — ``submit`` /
``run`` / ``run_job`` / ``add_listener`` / job objects with ``state``,
``result``, ``events`` and ``cancel()`` — so code written against a
local session (the evaluation runner, the examples) targets a server
with a one-line change: point it at ``host:port`` instead of opening a
session.

``run`` subscribes to each job's wire-streamed events in submission
order and replays them through the attached listeners as they arrive;
per-job event order is byte-identical to a local run (the server buffers
the complete ordered stream, so subscribe timing cannot reorder it).  A
listener raising :class:`~repro.events.JobCancelled` cancels the job on
the server, exactly like the local session's cooperative cancellation.

Control requests that must not wait behind a long event stream
(``cancel``, ``status``) travel on short-lived side connections — the
server handles every connection concurrently, so a cancel lands while
the stream is still flowing.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

from repro.config import parse_address
from repro.core.result import SynthesisResult
from repro.core.service import JobState
from repro.core.supervisor import FailureReport
from repro.data.tasks import SynthesisTask
from repro.events import JobCancelled, ProgressEvent, ProgressListener
from repro.serving import protocol
from repro.utils.logging import get_logger

logger = get_logger("serving.client")


class RemoteError(RuntimeError):
    """The server answered with an ``error`` frame."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ServerOverloaded(RemoteError):
    """Submit rejected at the admission bound; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__("over_capacity", message)
        self.retry_after = float(retry_after)


def _raise_on_error(frame: dict) -> dict:
    if frame.get("type") == "error":
        code = str(frame.get("code", "error"))
        message = str(frame.get("message", ""))
        if code == "over_capacity":
            raise ServerOverloaded(message, retry_after=frame.get("retry_after", 0.0))
        raise RemoteError(code, message)
    return frame


@dataclass
class RemoteJob:
    """Client-side mirror of one server job (same observable surface)."""

    job_id: str
    method: str
    task: SynthesisTask
    seed: int
    budget_limit: int
    program_length: Optional[int] = None
    state: JobState = JobState.PENDING
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    failure: Optional[FailureReport] = None
    events: List[ProgressEvent] = field(default_factory=list)
    _session: Any = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        """Cancel on the server (idempotent; safe mid-stream — travels on
        a side connection, see the module docstring)."""
        if self.state.terminal:
            return self.state is JobState.CANCELLED
        if self._session is None:
            raise RuntimeError("job is not bound to a session")
        return self._session._cancel_remote(self)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "method": self.method,
            "task_id": self.task.task_id,
            "seed": self.seed,
            "budget_limit": self.budget_limit,
            "state": self.state.value,
            "error": self.error,
            "failure": self.failure.to_dict() if self.failure is not None else None,
            "result": self.result.to_dict() if self.result is not None else None,
            "n_events": len(self.events),
        }


class RemoteSynthesisSession:
    """A synthesis session living in a server process, driven over TCP.

    Parameters
    ----------
    address:
        ``host:port`` of a running :class:`~repro.serving.server.SynthesisServer`.
    timeout:
        Socket timeout (seconds) for control exchanges; event streams use
        ``stream_timeout`` between frames (None = wait forever, the
        default — generations can legitimately be slow).
    """

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        stream_timeout: Optional[float] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = float(timeout)
        self.stream_timeout = stream_timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self.jobs: List[RemoteJob] = []
        self._listeners: List[ProgressListener] = []
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    # plumbing

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        return self._sock

    def _request(self, frame: dict) -> dict:
        """One request/response on the main connection."""
        sock = self._connection()
        sock.settimeout(self.timeout)
        protocol.send_frame(sock, frame, self.max_frame_bytes)
        return _raise_on_error(protocol.recv_frame(sock, self.max_frame_bytes))

    def _side_request(self, frame: dict) -> dict:
        """One request/response on a short-lived side connection."""
        with socket.create_connection((self.host, self.port), timeout=self.timeout) as sock:
            protocol.send_frame(sock, frame, self.max_frame_bytes)
            return _raise_on_error(protocol.recv_frame(sock, self.max_frame_bytes))

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteSynthesisSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the session surface

    def add_listener(self, listener: ProgressListener) -> None:
        """Attach a session-wide progress-event consumer."""
        self._listeners.append(listener)

    def ping(self) -> dict:
        """Server liveness + score-pool statistics."""
        return self._request({"type": "ping"})

    def submit(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[int, Any, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
    ) -> RemoteJob:
        """Enqueue one job on the server (mirrors ``SynthesisSession.submit``).

        Raises :class:`ServerOverloaded` (with ``retry_after``) when the
        server is at its admission bound.
        """
        limit = budget.limit if hasattr(budget, "limit") else budget
        response = self._request(
            {
                "type": "submit",
                "task": protocol.task_to_wire(task),
                "method": method,
                "budget": int(limit) if limit is not None else None,
                "seed": int(seed),
                "program_length": program_length,
            }
        )
        job = RemoteJob(
            job_id=str(response["job_id"]),
            method=str(response.get("method") or method or ""),
            task=task,
            seed=int(seed),
            budget_limit=int(limit) if limit is not None else 0,
            program_length=program_length,
            _session=self,
        )
        self.jobs.append(job)
        return job

    def run(self, jobs: Optional[Sequence[RemoteJob]] = None) -> List[RemoteJob]:
        """Stream every pending job to its terminal state, in order.

        Events are replayed through the attached listeners as they
        arrive; each job's stream is consumed completely (through its
        ``end`` frame) before the next job's begins, so listener-observed
        per-job order matches a local serial run.
        """
        pending = [job for job in (jobs if jobs is not None else self.jobs) if not job.done]
        for job in pending:
            self._stream_job(job)
        return pending

    def run_job(self, job: RemoteJob) -> RemoteJob:
        """Stream one job to its terminal state (mirrors the local API)."""
        if not job.done:
            self._stream_job(job)
        return job

    def status(self, job: RemoteJob) -> RemoteJob:
        """Refresh a job's state from the server without streaming."""
        response = self._side_request({"type": "status", "job_id": job.job_id})
        self._apply_job_frame(job, response["job"])
        return job

    # ------------------------------------------------------------------
    # internals

    def _cancel_remote(self, job: RemoteJob) -> bool:
        response = self._side_request({"type": "cancel", "job_id": job.job_id})
        # don't overwrite local state mid-stream: the authoritative
        # terminal state arrives with the stream's own end frame
        return bool(response.get("accepted", False))

    def _apply_job_frame(self, job: RemoteJob, data: dict) -> None:
        job.state = JobState(data["state"])
        job.error = data.get("error")
        job.failure = protocol.failure_from_wire(data.get("failure"))
        job.result = protocol.result_from_wire(data.get("result"))

    def _stream_job(self, job: RemoteJob) -> None:
        if job.state is JobState.PENDING:
            job.state = JobState.RUNNING
        sock = self._connection()
        sock.settimeout(self.timeout)
        protocol.send_frame(
            sock,
            {"type": "events", "job_id": job.job_id, "since": len(job.events)},
            self.max_frame_bytes,
        )
        sock.settimeout(self.stream_timeout)
        while True:
            frame = _raise_on_error(protocol.recv_frame(sock, self.max_frame_bytes))
            kind = frame.get("type")
            if kind == "event":
                event = protocol.event_from_wire(frame.get("event"))
                job.events.append(event)
                for listener in self._listeners:
                    try:
                        listener(event)
                    except JobCancelled:
                        job.cancel()
                    except Exception:  # noqa: BLE001 - mirror the pump's tolerance
                        logger.exception("session listener failed on %s", event.kind)
            elif kind == "end":
                self._apply_job_frame(job, frame["job"])
                return
            else:
                raise RemoteError("bad_frame", f"unexpected frame {kind!r} in event stream")

    # ------------------------------------------------------------------
    # conveniences

    def solve(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[int, Any, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
    ) -> RemoteJob:
        """Submit one task and stream it to completion."""
        return self.run_job(
            self.submit(task, method=method, budget=budget, seed=seed, program_length=program_length)
        )

    def shutdown_server(self) -> bool:
        """Ask the server to stop (requires ``allow_remote_shutdown``)."""
        try:
            response = self._side_request({"type": "shutdown"})
        except RemoteError as error:
            if error.code == "forbidden":
                return False
            raise
        return response.get("type") == "bye"
