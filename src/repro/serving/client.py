"""The blocking client: a self-healing remote session mirroring the local API.

:class:`RemoteSynthesisSession` exposes the same surface the in-process
:class:`~repro.core.service.SynthesisSession` does — ``submit`` /
``run`` / ``run_job`` / ``add_listener`` / job objects with ``state``,
``result``, ``events`` and ``cancel()`` — so code written against a
local session (the evaluation runner, the examples) targets a server
with a one-line change: point it at ``host:port`` instead of opening a
session.

``run`` subscribes to each job's wire-streamed events in submission
order and replays them through the attached listeners as they arrive;
per-job event order is byte-identical to a local run (the server buffers
the complete ordered stream, so subscribe timing cannot reorder it).  A
listener raising :class:`~repro.events.JobCancelled` cancels the job on
the server, exactly like the local session's cooperative cancellation.

Control requests that must not wait behind a long event stream
(``cancel``, ``status``, ``health``) travel on short-lived side
connections — the server handles every connection concurrently, so a
cancel lands while the stream is still flowing.

Self-healing
------------
The session survives the server it talks to dying and coming back:

* Every connection loss triggers reconnection with seeded exponential
  backoff plus jitter (``backoff_base`` doubling up to ``backoff_cap``,
  at most ``reconnect_attempts`` tries per operation).  The jitter RNG
  is seeded (``reconnect_seed``) so retry schedules are reproducible.
* Event streams resume via the protocol's ``since=`` cursor at
  ``len(job.events)`` — the events already consumed — so a stream
  interrupted by a server restart continues **gap-free and
  duplicate-free**: against a journalling server the recovered job
  regenerates the identical deterministic stream and the client picks it
  up exactly where it left off.  After a successful resume the session
  emits a synthetic ``server_recovered`` event to its listeners (never
  into ``job.events``, which stays byte-identical to an uninterrupted
  run).
* Submits carry an idempotency key (auto-generated unless supplied), so
  retrying a submit whose ack was lost cannot double-admit the job; the
  server answers the retry with the original job id.  ``submit`` also
  honours ``over_capacity``/``server_draining`` rejections by waiting
  the server-suggested ``retry_after`` and resubmitting, up to
  ``submit_attempts`` total tries.
* An idle event stream is kept honest with keepalive pings: instead of
  blocking forever on a read, the client wakes every
  ``keepalive_interval`` seconds, pings the server on a side connection,
  and tears the stream down for a reconnect when the ping fails — a
  silently dead server is detected in bounded time.
"""

from __future__ import annotations

import socket
import time
import uuid
from dataclasses import dataclass, field
from random import Random
from typing import Any, List, Optional, Sequence, Union

from repro.config import parse_address
from repro.core.result import SynthesisResult
from repro.core.service import JobState
from repro.core.supervisor import FailureReport
from repro.data.tasks import SynthesisTask
from repro.events import JobCancelled, ProgressEvent, ProgressListener
from repro.serving import protocol
from repro.utils.logging import get_logger

logger = get_logger("serving.client")


class RemoteError(RuntimeError):
    """The server answered with an ``error`` frame."""

    def __init__(self, code: str, message: str, retry_after: float = 0.0) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = float(retry_after)


class ServerOverloaded(RemoteError):
    """Submit rejected at the admission bound; retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__("over_capacity", message, retry_after=retry_after)


class StreamTimeout(RemoteError):
    """No stream frame arrived within ``stream_timeout`` (server alive but
    silent — distinct from a dead connection, which reconnects instead)."""

    def __init__(self, message: str) -> None:
        super().__init__("stream_timeout", message)


def _raise_on_error(frame: dict) -> dict:
    if frame.get("type") == "error":
        code = str(frame.get("code", "error"))
        message = str(frame.get("message", ""))
        retry_after = float(frame.get("retry_after", 0.0) or 0.0)
        if code == "over_capacity":
            raise ServerOverloaded(message, retry_after=retry_after)
        raise RemoteError(code, message, retry_after=retry_after)
    return frame


@dataclass
class RemoteJob:
    """Client-side mirror of one server job (same observable surface)."""

    job_id: str
    method: str
    task: SynthesisTask
    seed: int
    budget_limit: int
    program_length: Optional[int] = None
    state: JobState = JobState.PENDING
    result: Optional[SynthesisResult] = None
    error: Optional[str] = None
    failure: Optional[FailureReport] = None
    events: List[ProgressEvent] = field(default_factory=list)
    #: the submit's idempotency key (resubmitting it is always safe)
    idempotency_key: Optional[str] = None
    #: True when the server answered this submit from an earlier admission
    duplicate: bool = False
    _session: Any = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        return self.state.terminal

    def cancel(self) -> bool:
        """Cancel on the server (idempotent; safe mid-stream — travels on
        a side connection, see the module docstring)."""
        if self.state.terminal:
            return self.state is JobState.CANCELLED
        if self._session is None:
            raise RuntimeError("job is not bound to a session")
        return self._session._cancel_remote(self)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "method": self.method,
            "task_id": self.task.task_id,
            "seed": self.seed,
            "budget_limit": self.budget_limit,
            "state": self.state.value,
            "error": self.error,
            "failure": self.failure.to_dict() if self.failure is not None else None,
            "result": self.result.to_dict() if self.result is not None else None,
            "n_events": len(self.events),
        }


class RemoteSynthesisSession:
    """A synthesis session living in a server process, driven over TCP.

    Parameters
    ----------
    address:
        ``host:port`` of a running :class:`~repro.serving.server.SynthesisServer`.
    timeout:
        Socket timeout (seconds) for control exchanges; event streams use
        ``stream_timeout`` between frames (None = wait forever, the
        default — generations can legitimately be slow; keepalive pings
        still detect a *dead* server, see below).
    submit_attempts:
        Total tries ``submit`` makes when the server answers
        ``over_capacity`` or ``server_draining`` (waiting the suggested
        ``retry_after`` between tries).  1 disables the retry loop and
        restores raise-on-first-rejection.
    reconnect_attempts:
        Reconnections attempted per operation after a connection loss
        before giving up with ``ConnectionError``.
    backoff_base / backoff_cap / reconnect_seed:
        Reconnect delay schedule: ``base * 2**attempt`` capped at
        ``cap``, each scaled by seeded jitter in [0.5, 1.0).
    keepalive_interval:
        How often an *idle* event stream verifies the server is alive
        with a side-connection ping.  None disables keepalives (an idle
        stream then blocks until ``stream_timeout``, possibly forever).
    """

    def __init__(
        self,
        address: str,
        timeout: float = 30.0,
        stream_timeout: Optional[float] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        submit_attempts: int = 6,
        reconnect_attempts: int = 8,
        backoff_base: float = 0.2,
        backoff_cap: float = 5.0,
        reconnect_seed: int = 0,
        keepalive_interval: Optional[float] = 15.0,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = float(timeout)
        self.stream_timeout = stream_timeout
        self.max_frame_bytes = int(max_frame_bytes)
        self.submit_attempts = max(1, int(submit_attempts))
        self.reconnect_attempts = max(0, int(reconnect_attempts))
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.keepalive_interval = (
            None if keepalive_interval is None else max(0.05, float(keepalive_interval))
        )
        self._rng = Random(reconnect_seed)
        self.jobs: List[RemoteJob] = []
        #: successful stream resumes after a connection loss (telemetry)
        self.reconnects = 0
        self._listeners: List[ProgressListener] = []
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    # plumbing

    def _backoff(self, attempt: int) -> float:
        """Delay before reconnect ``attempt`` (0-based): seeded, jittered,
        exponential, capped."""
        base = min(self.backoff_base * (2.0**attempt), self.backoff_cap)
        return base * (0.5 + 0.5 * self._rng.random())

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        return self._sock

    def _request(self, frame: dict) -> dict:
        """One request/response on the main connection, reconnecting with
        backoff on connection loss.  Safe to retry for every frame the
        session sends here: submits are idempotent under their key, and
        the rest are reads or idempotent controls."""
        attempt = 0
        while True:
            try:
                sock = self._connection()
                sock.settimeout(self.timeout)
                protocol.send_frame(sock, dict(frame), self.max_frame_bytes)
                return _raise_on_error(protocol.recv_frame(sock, self.max_frame_bytes))
            except (ConnectionError, OSError) as error:
                self.close()
                if attempt >= self.reconnect_attempts:
                    raise ConnectionError(
                        f"server {self.host}:{self.port} unreachable after "
                        f"{attempt + 1} attempt(s): {error}"
                    ) from error
                time.sleep(self._backoff(attempt))
                attempt += 1

    def _side_request(self, frame: dict) -> dict:
        """One request/response on a short-lived side connection (same
        reconnect-with-backoff discipline as ``_request``)."""
        attempt = 0
        while True:
            try:
                with socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                ) as sock:
                    protocol.send_frame(sock, dict(frame), self.max_frame_bytes)
                    return _raise_on_error(protocol.recv_frame(sock, self.max_frame_bytes))
            except (ConnectionError, OSError) as error:
                if attempt >= self.reconnect_attempts:
                    raise ConnectionError(
                        f"server {self.host}:{self.port} unreachable after "
                        f"{attempt + 1} attempt(s): {error}"
                    ) from error
                time.sleep(self._backoff(attempt))
                attempt += 1

    def _server_alive(self) -> bool:
        """Keepalive probe: one ping on a fresh connection, no retries."""
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                protocol.send_frame(sock, {"type": "ping"}, self.max_frame_bytes)
                protocol.recv_frame(sock, self.max_frame_bytes)
            return True
        except (ConnectionError, OSError, protocol.ProtocolError):
            return False

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteSynthesisSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the session surface

    def add_listener(self, listener: ProgressListener) -> None:
        """Attach a session-wide progress-event consumer."""
        self._listeners.append(listener)

    def ping(self) -> dict:
        """Server liveness + score-pool statistics."""
        return self._request({"type": "ping"})

    def health(self) -> dict:
        """The server's health frame: lifecycle state, queue depth,
        journaled-pending count, uptime, journal counters."""
        return self._side_request({"type": "health"})

    def submit(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[int, Any, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
        idempotency_key: Optional[str] = None,
    ) -> RemoteJob:
        """Enqueue one job on the server (mirrors ``SynthesisSession.submit``).

        The submit travels under ``idempotency_key`` (auto-generated when
        not supplied) so connection-loss retries cannot double-admit.
        ``over_capacity`` / ``server_draining`` rejections are retried up
        to ``submit_attempts`` times, honouring the server's
        ``retry_after``; :class:`ServerOverloaded` (or the draining
        :class:`RemoteError`) is raised once tries are exhausted.
        """
        limit = budget.limit if hasattr(budget, "limit") else budget
        key = idempotency_key or f"c-{uuid.uuid4().hex}"
        frame = {
            "type": "submit",
            "task": protocol.task_to_wire(task),
            "method": method,
            "budget": int(limit) if limit is not None else None,
            "seed": int(seed),
            "program_length": program_length,
            "idempotency_key": key,
        }
        attempt = 0
        while True:
            try:
                response = self._request(frame)
                break
            except ServerOverloaded as error:
                attempt += 1
                if attempt >= self.submit_attempts:
                    raise
                delay = error.retry_after if error.retry_after > 0 else self._backoff(attempt - 1)
                logger.info(
                    "submit rejected (%s), retrying in %.2fs (%d/%d)",
                    error.code, delay, attempt + 1, self.submit_attempts,
                )
                time.sleep(delay)
            except RemoteError as error:
                if error.code != "server_draining":
                    raise
                attempt += 1
                if attempt >= self.submit_attempts:
                    raise
                delay = max(error.retry_after, self._backoff(attempt - 1))
                logger.info(
                    "submit rejected (server draining), retrying in %.2fs (%d/%d)",
                    delay, attempt + 1, self.submit_attempts,
                )
                time.sleep(delay)
        job = RemoteJob(
            job_id=str(response["job_id"]),
            method=str(response.get("method") or method or ""),
            task=task,
            seed=int(seed),
            budget_limit=int(limit) if limit is not None else 0,
            program_length=program_length,
            idempotency_key=key,
            duplicate=bool(response.get("duplicate", False)),
            _session=self,
        )
        self.jobs.append(job)
        return job

    def run(self, jobs: Optional[Sequence[RemoteJob]] = None) -> List[RemoteJob]:
        """Stream every pending job to its terminal state, in order.

        Events are replayed through the attached listeners as they
        arrive; each job's stream is consumed completely (through its
        ``end`` frame) before the next job's begins, so listener-observed
        per-job order matches a local serial run.
        """
        pending = [job for job in (jobs if jobs is not None else self.jobs) if not job.done]
        for job in pending:
            self._stream_job(job)
        return pending

    def run_job(self, job: RemoteJob) -> RemoteJob:
        """Stream one job to its terminal state (mirrors the local API)."""
        if not job.done:
            self._stream_job(job)
        return job

    def status(self, job: RemoteJob) -> RemoteJob:
        """Refresh a job's state from the server without streaming."""
        response = self._side_request({"type": "status", "job_id": job.job_id})
        self._apply_job_frame(job, response["job"])
        return job

    # ------------------------------------------------------------------
    # internals

    def _cancel_remote(self, job: RemoteJob) -> bool:
        response = self._side_request({"type": "cancel", "job_id": job.job_id})
        # don't overwrite local state mid-stream: the authoritative
        # terminal state arrives with the stream's own end frame
        return bool(response.get("accepted", False))

    def _apply_job_frame(self, job: RemoteJob, data: dict) -> None:
        job.state = JobState(data["state"])
        job.error = data.get("error")
        job.failure = protocol.failure_from_wire(data.get("failure"))
        job.result = protocol.result_from_wire(data.get("result"))

    def _emit(self, event: ProgressEvent, job: Optional[RemoteJob] = None) -> None:
        for listener in self._listeners:
            try:
                listener(event)
            except JobCancelled:
                if job is not None:
                    job.cancel()
            except Exception:  # noqa: BLE001 - mirror the pump's tolerance
                logger.exception("session listener failed on %s", event.kind)

    def _recv_stream_frame(self, sock: socket.socket) -> dict:
        """One stream frame, with keepalive: instead of blocking on the
        read forever, wake every ``keepalive_interval`` and ping the
        server on a side connection.  A failed ping means the server is
        gone — raise ``ConnectionError`` so the stream loop reconnects.
        ``stream_timeout`` (server alive but silent too long) raises
        :class:`StreamTimeout` instead, which is terminal."""
        deadline = (
            None if self.stream_timeout is None else time.monotonic() + self.stream_timeout
        )
        while True:
            wait = self.keepalive_interval
            if deadline is not None:
                remaining = max(deadline - time.monotonic(), 0.001)
                wait = remaining if wait is None else min(wait, remaining)
            sock.settimeout(wait)
            try:
                first = sock.recv(1)
            except socket.timeout:
                if deadline is not None and time.monotonic() >= deadline:
                    raise StreamTimeout(
                        f"no stream frame within stream_timeout={self.stream_timeout}s"
                    ) from None
                if not self._server_alive():
                    raise ConnectionError("keepalive ping failed on idle stream") from None
                continue
            if not first:
                raise ConnectionError("connection closed mid-stream")
            # the frame started arriving: read the rest under the control
            # timeout (a server stalling *mid-frame* counts as dead)
            sock.settimeout(self.timeout)
            try:
                return protocol.recv_frame(sock, self.max_frame_bytes, prefix=first)
            except socket.timeout as error:
                raise ConnectionError(f"server stalled mid-frame: {error}") from error

    def _stream_job(self, job: RemoteJob) -> None:
        """Stream ``job`` to its terminal state, transparently resuming
        across connection losses (see the module docstring)."""
        if job.state is JobState.PENDING:
            job.state = JobState.RUNNING
        attempt = 0
        interrupted = False
        while True:
            try:
                sock = self._connection()
                sock.settimeout(self.timeout)
                protocol.send_frame(
                    sock,
                    {"type": "events", "job_id": job.job_id, "since": len(job.events)},
                    self.max_frame_bytes,
                )
                while True:
                    frame = _raise_on_error(self._recv_stream_frame(sock))
                    if interrupted:
                        # the resumed stream is flowing again: surface the
                        # outage to listeners without touching job.events
                        interrupted = False
                        attempt = 0
                        self.reconnects += 1
                        self._emit(
                            ProgressEvent(
                                kind="server_recovered",
                                method=job.method,
                                task_id=job.task.task_id,
                                job_id=job.job_id,
                                reason=f"stream resumed at event {len(job.events)}",
                            )
                        )
                    kind = frame.get("type")
                    if kind == "event":
                        event = protocol.event_from_wire(frame.get("event"))
                        job.events.append(event)
                        self._emit(event, job)
                    elif kind == "end":
                        self._apply_job_frame(job, frame["job"])
                        return
                    else:
                        raise RemoteError(
                            "bad_frame", f"unexpected frame {kind!r} in event stream"
                        )
            except StreamTimeout:
                raise
            except (ConnectionError, OSError) as error:
                self.close()
                if attempt >= self.reconnect_attempts:
                    raise ConnectionError(
                        f"lost the event stream of {job.job_id} and could not "
                        f"reconnect after {attempt + 1} attempt(s): {error}"
                    ) from error
                interrupted = True
                delay = self._backoff(attempt)
                logger.info(
                    "stream of %s interrupted (%s); reconnecting in %.2fs (%d/%d)",
                    job.job_id, error, delay, attempt + 1, self.reconnect_attempts + 1,
                )
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # conveniences

    def solve(
        self,
        task: SynthesisTask,
        method: Optional[str] = None,
        budget: Union[int, Any, None] = None,
        seed: int = 0,
        program_length: Optional[int] = None,
    ) -> RemoteJob:
        """Submit one task and stream it to completion."""
        return self.run_job(
            self.submit(task, method=method, budget=budget, seed=seed, program_length=program_length)
        )

    def shutdown_server(self) -> bool:
        """Ask the server to stop (requires ``allow_remote_shutdown``)."""
        try:
            response = self._side_request({"type": "shutdown"})
        except RemoteError as error:
            if error.code == "forbidden":
                return False
            raise
        return response.get("type") == "bye"
