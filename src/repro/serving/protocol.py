"""The synthesis service's wire protocol: length-prefixed JSON frames.

A **frame** is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object with a ``"type"`` key.  The
format is deliberately boring: debuggable with ``nc`` and a JSON
pretty-printer, no schema compiler, and forward-compatible the same way
the event log is — readers drop keys they do not know.

Request frames (client -> server)
---------------------------------
``submit``     task + method/budget/seed/program_length -> ``submitted``
``status``     job_id -> ``job``
``cancel``     job_id -> ``job`` (the post-cancel state)
``events``     job_id [+ since] -> ``event``* then ``end`` (a stream)
``cache_get``  key (int64) -> ``cache_value``
``cache_put``  entries [[key, value], ...] -> ``cache_ok``
``ping``       -> ``pong``
``health``     -> ``health`` (lifecycle state, queue depth, journal stats)
``shutdown``   -> ``bye`` (honoured only with ``allow_remote_shutdown``)

``submit`` optionally carries an ``idempotency_key``: resubmitting the
same key returns the original job (``submitted`` with ``duplicate``
true) instead of admitting a second copy — on a journalling server the
dedup survives restarts, so a client that lost the ack to a crash can
safely retry.

Response frames (server -> client)
----------------------------------
``submitted``    job_id the server assigned
``job``          full job state (:func:`job_to_wire`)
``event``        one ProgressEvent + its per-job sequence number
``end``          terminal frame of an event stream (carries the job)
``cache_value``  score pool answer (``value`` is null on a miss)
``cache_ok``     count of accepted cache entries
``health``       lifecycle state (``serving``/``draining``/``stopping``),
                 uptime, queue depth, journaled-pending count, journal
                 append/compaction counters
``error``        code (``bad_frame`` | ``unknown_job`` | ``over_capacity``
                 | ``unknown_type`` | ``forbidden`` | ``server_draining``)
                 + message; ``over_capacity`` and ``server_draining``
                 errors carry ``retry_after`` seconds
``pong`` / ``bye``

Every frame carries the protocol version under ``"v"`` on the wire;
mismatched *major* versions are rejected loudly rather than guessed at.

Serialization helpers for the domain objects (tasks, results, events,
failures, jobs) live here too, so server and client cannot drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, List, Optional

from repro.core.result import SynthesisResult
from repro.core.supervisor import FailureReport
from repro.data.tasks import SynthesisTask
from repro.dsl.equivalence import IOExample
from repro.dsl.program import Program
from repro.events import ProgressEvent

#: version of the frame layout and the frame vocabulary above.  Bump on
#: an incompatible change (renamed/retyped keys, changed framing); adding
#: frame types or optional keys does not need a bump.
PROTOCOL_VERSION = 1

#: default hard bound on one frame; servers and clients may configure
#: their own (ServingConfig.max_frame_bytes)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct("!I")


class ProtocolError(Exception):
    """A malformed, oversized or version-incompatible frame."""


# ---------------------------------------------------------------------------
# framing


def encode_frame(message: Dict[str, Any], max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame (length prefix + JSON payload)."""
    message.setdefault("v", PROTOCOL_VERSION)
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the {max_frame_bytes}-byte bound")
    return _LENGTH.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse a frame payload, validating shape and protocol version."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame must be a JSON object with a 'type' key")
    version = message.get("v", PROTOCOL_VERSION)
    if not isinstance(version, int) or version < 1 or version > PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r}")
    return message


# -- blocking-socket side (the client) --------------------------------------


def send_frame(sock: socket.socket, message: Dict[str, Any],
               max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    sock.sendall(encode_frame(message, max_frame_bytes))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, max_frame_bytes: int = MAX_FRAME_BYTES,
               prefix: bytes = b"") -> Dict[str, Any]:
    """Receive one frame.  ``prefix`` holds bytes the caller already read
    off the socket (a keepalive-timeout peek, see the client's idle-stream
    handling) — they are consumed as the frame's leading bytes so framing
    stays intact."""
    header = prefix
    if len(header) < _LENGTH.size:
        header += _recv_exact(sock, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header[: _LENGTH.size])
    if length > max_frame_bytes:
        raise ProtocolError(f"incoming frame of {length} bytes exceeds the {max_frame_bytes}-byte bound")
    payload = header[_LENGTH.size :]
    if len(payload) < length:
        payload += _recv_exact(sock, length - len(payload))
    return decode_payload(payload[:length])


# -- asyncio side (the server) ----------------------------------------------


async def read_frame(reader: asyncio.StreamReader,
                     max_frame_bytes: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    header = await reader.readexactly(_LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > max_frame_bytes:
        raise ProtocolError(f"incoming frame of {length} bytes exceeds the {max_frame_bytes}-byte bound")
    return decode_payload(await reader.readexactly(length))


async def write_frame(writer: asyncio.StreamWriter, message: Dict[str, Any],
                      max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    writer.write(encode_frame(message, max_frame_bytes))
    await writer.drain()


# ---------------------------------------------------------------------------
# domain-object serialization


def task_to_wire(task: SynthesisTask) -> dict:
    return {
        "target": list(task.target.function_ids),
        "io_set": [
            {"inputs": list(example.inputs), "output": example.output}
            for example in task.io_set
        ],
        "length": task.length,
        "is_singleton": task.is_singleton,
        "task_id": task.task_id,
    }


def task_from_wire(data: dict) -> SynthesisTask:
    try:
        return SynthesisTask(
            target=Program(data["target"]),
            io_set=[
                IOExample(inputs=tuple(example["inputs"]), output=example["output"])
                for example in data["io_set"]
            ],
            length=int(data["length"]),
            is_singleton=bool(data["is_singleton"]),
            task_id=str(data.get("task_id", "")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed task: {error}") from None


def result_to_wire(result: SynthesisResult) -> dict:
    """Full-fidelity result form (unlike ``SynthesisResult.to_dict``,
    the fitness histories ride along so a remote job is as inspectable
    as a local one)."""
    return {
        "found": result.found,
        "program": list(result.program.function_ids) if result.program else None,
        "candidates_used": result.candidates_used,
        "budget_limit": result.budget_limit,
        "generations": result.generations,
        "wall_time_seconds": result.wall_time_seconds,
        "found_by": result.found_by,
        "method": result.method,
        "task_id": result.task_id,
        "neighborhood_invocations": result.neighborhood_invocations,
        "average_fitness_history": list(result.average_fitness_history),
        "best_fitness_history": list(result.best_fitness_history),
    }


def result_from_wire(data: Optional[dict]) -> Optional[SynthesisResult]:
    if data is None:
        return None
    program = data.get("program")
    return SynthesisResult(
        found=bool(data.get("found", False)),
        program=Program(program) if program is not None else None,
        candidates_used=int(data.get("candidates_used", 0)),
        budget_limit=int(data.get("budget_limit", 0)),
        generations=int(data.get("generations", 0)),
        wall_time_seconds=float(data.get("wall_time_seconds", 0.0)),
        found_by=str(data.get("found_by", "none")),
        method=str(data.get("method", "")),
        task_id=str(data.get("task_id", "")),
        neighborhood_invocations=int(data.get("neighborhood_invocations", 0)),
        average_fitness_history=list(data.get("average_fitness_history", [])),
        best_fitness_history=list(data.get("best_fitness_history", [])),
    )


def failure_to_wire(failure: Optional[FailureReport]) -> Optional[dict]:
    return None if failure is None else failure.to_dict()


def failure_from_wire(data: Optional[dict]) -> Optional[FailureReport]:
    if data is None:
        return None
    return FailureReport(
        job_id=str(data.get("job_id", "")),
        kind=str(data.get("kind", "crash")),
        attempts=int(data.get("attempts", 0)),
        message=str(data.get("message", "")),
        worker_ids=tuple(data.get("worker_ids", ())),
        elapsed=float(data.get("elapsed", 0.0)),
    )


def event_to_wire(event: ProgressEvent) -> dict:
    return event.to_dict()


def event_from_wire(data: dict) -> ProgressEvent:
    if not isinstance(data, dict):
        raise ProtocolError("event frames carry a JSON object")
    return ProgressEvent.from_dict(data)


def job_to_wire(job: Any) -> dict:
    """Full job state: identity, terminal fields, result and failure.

    ``job`` is a ``SynthesisJob`` (duck-typed to avoid importing the
    service layer here — protocol stays a leaf module).
    """
    return {
        "job_id": job.job_id,
        "method": job.method,
        "task_id": job.task.task_id,
        "seed": job.seed,
        "budget_limit": job.budget_limit,
        "program_length": job.program_length,
        "state": job.state.value,
        "error": job.error,
        "failure": failure_to_wire(job.failure),
        "result": result_to_wire(job.result) if job.result is not None else None,
        "n_events": len(job.events),
    }


def error_frame(code: str, message: str, **extra: Any) -> dict:
    frame = {"type": "error", "code": code, "message": message}
    frame.update(extra)
    return frame
