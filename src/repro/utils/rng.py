"""Deterministic random-number management.

Every stochastic component (program generation, GA operators, NN weight
initialization, baseline samplers) takes a ``numpy.random.Generator``.
The helpers here make it easy to derive independent, reproducible streams
from a single experiment seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` (seed, generator or None) into a ``Generator``."""
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(int(rng))


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def _stable_hash(*parts: object) -> int:
    """Process-independent hash of the given parts (unlike builtin ``hash``)."""
    import hashlib

    digest = hashlib.sha256("\x1f".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


class RngFactory:
    """Named, reproducible RNG streams derived from one master seed.

    Calling :meth:`get` twice with the same name returns generators seeded
    identically, so components can be re-created deterministically — even
    across processes (the mixing hash does not depend on ``PYTHONHASHSEED``).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str, index: int = 0) -> np.random.Generator:
        """A generator for stream ``name`` (and optional ``index``)."""
        return np.random.default_rng(_stable_hash(self._seed, name, index))

    def child(self, name: str) -> "RngFactory":
        """A derived factory, itself reproducible from the parent seed."""
        return RngFactory(_stable_hash(self._seed, "child", name) & 0x7FFFFFFF)
