"""JSON / NPZ persistence helpers for models, datasets and results."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def _to_jsonable(obj: Any) -> Any:
    """Recursively convert numpy scalars/arrays to plain Python objects."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): _to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_to_jsonable(v) for v in obj]
    return obj


def save_json(path: PathLike, data: Any, indent: int = 2) -> None:
    """Write ``data`` to ``path`` as JSON, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(_to_jsonable(data), handle, indent=indent, sort_keys=True)


def load_json(path: PathLike) -> Any:
    """Read JSON previously written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_npz(path: PathLike, arrays: Mapping[str, np.ndarray]) -> None:
    """Save a mapping of named arrays as a compressed ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in arrays.items()})


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a ``.npz`` archive back into a dict of arrays."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}
