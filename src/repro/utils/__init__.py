"""Shared utilities: seeded RNG management, timing, serialization, logging."""

from repro.utils.rng import RngFactory, ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, format_seconds
from repro.utils.serialization import (
    load_json,
    save_json,
    load_npz,
    save_npz,
)
from repro.utils.logging import get_logger

__all__ = [
    "RngFactory",
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "format_seconds",
    "load_json",
    "save_json",
    "load_npz",
    "save_npz",
    "get_logger",
]
