"""Small timing helpers used by the evaluation harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Context-manager stopwatch measuring wall-clock seconds."""

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self._elapsed += time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Seconds accumulated so far (including a running interval)."""
        running = 0.0
        if self._start is not None:
            running = time.perf_counter() - self._start
        return self._elapsed + running


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's Table 3 does (``"<1s"``, ``"65s"``)."""
    if seconds < 1.0:
        return "<1s"
    if seconds < 120.0:
        return f"{seconds:.0f}s"
    minutes = seconds / 60.0
    if minutes < 120.0:
        return f"{minutes:.1f}m"
    return f"{minutes / 60.0:.1f}h"
