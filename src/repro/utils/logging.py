"""Logging configuration shared across the library."""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"
_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger, configuring the root handler once.

    The log level defaults to WARNING and can be raised via the
    ``NETSYN_LOG_LEVEL`` environment variable (e.g. ``INFO`` or ``DEBUG``).
    """
    global _CONFIGURED
    if not _CONFIGURED:
        level_name = os.environ.get("NETSYN_LOG_LEVEL", "WARNING").upper()
        level = getattr(logging, level_name, logging.WARNING)
        logging.basicConfig(level=level, format=_FORMAT)
        _CONFIGURED = True
    return logging.getLogger(f"repro.{name}" if not name.startswith("repro") else name)
