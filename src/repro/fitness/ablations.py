"""Alternative fitness-model designs discussed in Section 5.3.1.

The paper reports trying (and mostly rejecting) several model variants in
addition to the multiclass CF/LCS classifier.  Each is implemented here so
the ablation benchmark can measure the same comparisons:

* :class:`RegressionFitnessModel` — predicts the fitness value as a scalar
  regression target instead of a class (the paper found it regresses
  towards the median of the training labels).
* :class:`TwoTierFitnessModel` — a first network decides whether the
  fitness is zero; a second network predicts the non-zero value (the paper
  found first-tier mispredictions eliminate good genes).
* :class:`PairwiseRankingModel` — predicts which of two candidates is
  closer to the target (the correctness *ordering* the Roulette Wheel
  actually needs); trained on pairs of samples.
* :class:`BigramMembershipModel` — predicts which ordered pairs of DSL
  functions appear adjacently in the target program (a 41×41 multi-label
  output, over 99% of which is zero).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import NNConfig
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.program import Program
from repro.fitness.features import FeatureEncoder, FitnessSample, value_vocabulary_size
from repro.fitness.models import TraceFitnessModel
from repro.nn.autograd import Tensor, concat, no_grad
from repro.nn.layers import Dense
from repro.nn.losses import mse_loss, sigmoid_binary_cross_entropy, softmax_cross_entropy
from repro.nn.module import Module
from repro.nn.encoders import make_sequence_encoder


class RegressionFitnessModel(TraceFitnessModel):
    """Trace model with a scalar regression head instead of a classifier.

    Reuses the whole Figure-2 encoder stack from
    :class:`~repro.fitness.models.TraceFitnessModel`; only the output head
    and the loss change.
    """

    def __init__(
        self,
        max_fitness: int,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        # n_classes is irrelevant for the regression head but the parent
        # needs a valid value to build its (unused) classification head.
        super().__init__(n_classes=max_fitness + 1, config=config, registry=registry, rng=rng)
        self.max_fitness = max_fitness
        rng = rng or np.random.default_rng(0)
        self.regression_head = Dense(self.config.fc_dim, 1, rng=rng)

    def _hidden(self, batch: Dict[str, np.ndarray]):
        """The pre-head hidden representation shared with the parent model."""
        b, m, length = (int(x) for x in batch["shape"])
        hidden = self.config.hidden_dim
        enc_input = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        enc_steps = self.value_encoder(batch["step_value_tokens"], batch["step_value_mask"]).reshape(
            b * m, length, hidden
        )
        func_embedded = self.function_embedding(batch["step_functions"])
        step_features = concat([func_embedded, enc_steps], axis=-1)
        from repro.nn.lstm import LSTM

        if isinstance(self.step_encoder, LSTM):
            trace_vec = self.step_encoder(step_features, mask=batch["step_mask"])
        else:
            trace_vec = self.step_encoder(step_features, batch["step_mask"])
        example_vec = self.example_dense(concat([enc_input, enc_output, trace_vec], axis=-1))
        combined = example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)
        return self.hidden_head(combined)

    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:  # type: ignore[override]
        return self.regression_head(self._hidden(batch))

    def compute_loss(self, batch: Dict[str, np.ndarray]):  # type: ignore[override]
        predictions = self.forward(batch)
        labels = batch["labels"].astype(np.float64)
        loss = mse_loss(predictions, labels)
        rounded = np.clip(np.round(predictions.data.reshape(-1)), 0, self.max_fitness)
        accuracy = float((rounded == batch["labels"]).mean())
        return loss, {"accuracy": accuracy, "mae": float(np.abs(predictions.data.reshape(-1) - labels).mean())}

    def predict_fitness(self, batch: Dict[str, np.ndarray]) -> np.ndarray:  # type: ignore[override]
        with no_grad():
            predictions = self.forward(batch)
        return np.clip(predictions.data.reshape(-1), 0.0, float(self.max_fitness))


class TwoTierFitnessModel(Module):
    """Tier 1 predicts "is the fitness zero?"; tier 2 predicts the non-zero value."""

    def __init__(
        self,
        n_classes: int,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        seeds = rng.integers(0, 2**31 - 1, size=2)
        self.zero_detector = TraceFitnessModel(
            n_classes=2, config=config, registry=registry, rng=np.random.default_rng(int(seeds[0]))
        )
        # tier 2 predicts classes 1..n_classes-1 (shifted down by one)
        self.value_predictor = TraceFitnessModel(
            n_classes=max(2, n_classes - 1),
            config=config,
            registry=registry,
            rng=np.random.default_rng(int(seeds[1])),
        )
        self.n_classes = n_classes

    def compute_loss(self, batch: Dict[str, np.ndarray]):
        labels = batch["labels"]
        zero_batch = dict(batch)
        zero_batch["labels"] = (labels > 0).astype(np.int64)
        zero_loss, zero_metrics = self.zero_detector.compute_loss(zero_batch)

        nonzero_mask = labels > 0
        metrics = {"zero_accuracy": zero_metrics["accuracy"]}
        if nonzero_mask.any():
            indices = np.nonzero(nonzero_mask)[0]
            sub_batch = _subset_trace_batch(batch, indices)
            sub_batch["labels"] = labels[indices] - 1
            value_loss, value_metrics = self.value_predictor.compute_loss(sub_batch)
            metrics["value_accuracy"] = value_metrics["accuracy"]
            loss = zero_loss + value_loss
        else:
            loss = zero_loss
        return loss, metrics

    def predict_fitness(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Zero when tier 1 says so, otherwise tier 2's expected value + 1."""
        zero_probabilities = self.zero_detector.predict_probabilities(batch)
        nonzero_probability = zero_probabilities[:, 1]
        values = self.value_predictor.predict_fitness(batch) + 1.0
        return np.where(nonzero_probability >= 0.5, values, 0.0)


def _subset_trace_batch(batch: Dict[str, np.ndarray], indices: np.ndarray) -> Dict[str, np.ndarray]:
    """Select a subset of samples from an encoded trace batch."""
    b, m, length = (int(x) for x in batch["shape"])
    indices = np.asarray(indices, dtype=np.int64)
    example_rows = (indices[:, None] * m + np.arange(m)[None, :]).reshape(-1)
    step_rows = (example_rows[:, None] * length + np.arange(length)[None, :]).reshape(-1)
    subset = {
        "input_tokens": batch["input_tokens"][example_rows],
        "input_mask": batch["input_mask"][example_rows],
        "output_tokens": batch["output_tokens"][example_rows],
        "output_mask": batch["output_mask"][example_rows],
        "step_functions": batch["step_functions"][example_rows],
        "step_mask": batch["step_mask"][example_rows],
        "step_value_tokens": batch["step_value_tokens"][step_rows],
        "step_value_mask": batch["step_value_mask"][step_rows],
        "shape": np.array([len(indices), m, length], dtype=np.int64),
    }
    if "labels" in batch:
        subset["labels"] = batch["labels"][indices]
    return subset


class PairwiseRankingModel(Module):
    """Predicts which of two candidate programs is closer to the target.

    The two candidates share the same IO specification; each is encoded by
    the same trace encoder and a small head classifies "first is better",
    mirroring the relative-ordering experiment in Section 5.3.1.
    """

    def __init__(
        self,
        n_classes: int,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.encoder_model = TraceFitnessModel(
            n_classes=n_classes, config=config, registry=registry, rng=rng
        )
        fc = self.encoder_model.config.fc_dim
        self.comparison_head = Dense(2 * fc, 2, rng=rng)

    def _embed(self, batch: Dict[str, np.ndarray]):
        """Hidden vector (pre output head) of the underlying trace model."""
        model = self.encoder_model
        b, m, length = (int(x) for x in batch["shape"])
        hidden = model.config.hidden_dim
        enc_input = model.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = model.value_encoder(batch["output_tokens"], batch["output_mask"])
        enc_steps = model.value_encoder(batch["step_value_tokens"], batch["step_value_mask"]).reshape(
            b * m, length, hidden
        )
        func_embedded = model.function_embedding(batch["step_functions"])
        step_features = concat([func_embedded, enc_steps], axis=-1)
        from repro.nn.lstm import LSTM

        if isinstance(model.step_encoder, LSTM):
            trace_vec = model.step_encoder(step_features, mask=batch["step_mask"])
        else:
            trace_vec = model.step_encoder(step_features, batch["step_mask"])
        example_vec = model.example_dense(concat([enc_input, enc_output, trace_vec], axis=-1))
        combined = example_vec.reshape(b, m, model.config.fc_dim).mean(axis=1)
        return model.hidden_head(combined)

    def compute_loss(self, batch_pair: Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], np.ndarray]):
        batch_a, batch_b, labels = batch_pair
        hidden = concat([self._embed(batch_a), self._embed(batch_b)], axis=-1)
        logits = self.comparison_head(hidden)
        loss = softmax_cross_entropy(logits, labels)
        accuracy = float((logits.data.argmax(axis=1) == labels).mean())
        return loss, {"accuracy": accuracy}

    def predict_first_better(self, batch_a, batch_b) -> np.ndarray:
        with no_grad():
            hidden = concat([self._embed(batch_a), self._embed(batch_b)], axis=-1)
            logits = self.comparison_head(hidden)
        return logits.data.argmax(axis=1) == 1


class PairwiseRankingDataset:
    """Pairs of trace samples labelled by which has the higher ideal fitness."""

    def __init__(
        self,
        samples: Sequence[FitnessSample],
        rng: np.random.Generator,
        n_pairs: Optional[int] = None,
        encoder: Optional[FeatureEncoder] = None,
    ) -> None:
        labelled = [s for s in samples if s.label is not None]
        if len(labelled) < 2:
            raise ValueError("need at least two labelled samples to build pairs")
        self.encoder = encoder or FeatureEncoder()
        n_pairs = n_pairs or len(labelled)
        self.pairs: List[Tuple[FitnessSample, FitnessSample, int]] = []
        attempts = 0
        while len(self.pairs) < n_pairs and attempts < n_pairs * 50:
            attempts += 1
            a, b = rng.choice(len(labelled), size=2, replace=False)
            sample_a, sample_b = labelled[int(a)], labelled[int(b)]
            if sample_a.label == sample_b.label:
                continue
            self.pairs.append((sample_a, sample_b, int(sample_a.label > sample_b.label)))

    def __len__(self) -> int:
        return len(self.pairs)

    def get_batch(self, indices: np.ndarray):
        chosen = [self.pairs[int(i)] for i in indices]
        batch_a = self.encoder.encode_trace_batch([p[0] for p in chosen])
        batch_b = self.encoder.encode_trace_batch([p[1] for p in chosen])
        labels = np.array([p[2] for p in chosen], dtype=np.int64)
        return batch_a, batch_b, labels


class BigramMembershipModel(Module):
    """Predicts which adjacent function bigrams occur in the target program."""

    def __init__(
        self,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config or NNConfig()
        self.config.validate()
        self.registry = registry
        rng = rng or np.random.default_rng(0)
        emb, hidden, fc = self.config.embedding_dim, self.config.hidden_dim, self.config.fc_dim
        vocab = value_vocabulary_size()
        self.n_functions = len(registry)
        self.value_encoder = make_sequence_encoder(self.config.encoder, vocab, emb, hidden, rng=rng)
        self.example_dense = Dense(2 * hidden, fc, activation="tanh", rng=rng)
        self.hidden_head = Dense(fc, fc, activation="relu", rng=rng)
        self.output_head = Dense(fc, self.n_functions * self.n_functions, rng=rng)

    @staticmethod
    def bigram_target(program: Program, registry: FunctionRegistry = REGISTRY) -> np.ndarray:
        """Flattened 41×41 indicator of adjacent function pairs in ``program``."""
        n = len(registry)
        matrix = np.zeros((n, n), dtype=np.float64)
        ids = program.function_ids
        for first, second in zip(ids, ids[1:]):
            matrix[registry.index_of(first), registry.index_of(second)] = 1.0
        return matrix.reshape(-1)

    def forward(self, batch: Dict[str, np.ndarray]):
        b, m = (int(x) for x in batch["shape"][:2])
        enc_input = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        example_vec = self.example_dense(concat([enc_input, enc_output], axis=-1))
        combined = example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)
        return self.output_head(self.hidden_head(combined))

    def compute_loss(self, batch: Dict[str, np.ndarray]):
        if "bigram_targets" not in batch:
            raise ValueError("batch has no bigram_targets")
        logits = self.forward(batch)
        targets = batch["bigram_targets"]
        positive_fraction = max(float((targets >= 0.5).mean()), 1e-4)
        loss = sigmoid_binary_cross_entropy(
            logits, targets, pos_weight=(1.0 - positive_fraction) / positive_fraction
        )
        probabilities = 1.0 / (1.0 + np.exp(-logits.data))
        positives = targets >= 0.5
        positive_accuracy = float((probabilities[positives] >= 0.5).mean()) if positives.any() else 0.0
        return loss, {"positive_accuracy": positive_accuracy, "sparsity": float(positives.mean())}

    def predict_bigram_map(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        with no_grad():
            logits = self.forward(batch)
        return (1.0 / (1.0 + np.exp(-logits.data))).reshape(-1, self.n_functions, self.n_functions)
