"""Fitness functions: ideal metrics and their learned neural surrogates.

The paper's central idea is to *learn* the GA's fitness function.  This
package contains:

* :mod:`repro.fitness.ideal` — the ideal (oracle-side) metrics: common
  functions (CF), longest common subsequence (LCS), the function
  membership vector behind the function-probability (FP) map, and output
  edit distance.
* :mod:`repro.fitness.features` — encoding of (IO examples, candidate
  program, execution traces) into padded token arrays for the models.
* :mod:`repro.fitness.models` — the neural models: the trace-based
  CF/LCS classifier of Figure 2 and the IO-only function-probability
  model.
* :mod:`repro.fitness.datasets` — array-backed datasets feeding the
  trainer.
* :mod:`repro.fitness.functions` — the :class:`FitnessFunction` objects
  the GA consumes: learned CF/LCS (NN-FF), learned FP, output edit
  distance, and the oracle.
* :mod:`repro.fitness.ablations` — the alternative models discussed in
  Section 5.3.1 (regression head, two-tier, pairwise ranking, bigram).
"""

from repro.fitness.base import FitnessFunction, ScoredProgram
from repro.fitness.ideal import (
    common_functions,
    lcs_length,
    function_membership,
    levenshtein,
    output_edit_distance,
    ideal_fitness,
)
from repro.fitness.features import (
    FitnessSample,
    FeatureEncoder,
    VALUE_PAD,
    value_to_token,
    value_vocabulary_size,
)
from repro.fitness.models import TraceFitnessModel, FunctionProbabilityModel
from repro.fitness.datasets import TraceFitnessDataset, FunctionProbabilityDataset
from repro.fitness.functions import (
    EditDistanceFitness,
    LearnedTraceFitness,
    ProbabilityMapFitness,
    OracleFitness,
)

__all__ = [
    "FitnessFunction",
    "ScoredProgram",
    "common_functions",
    "lcs_length",
    "function_membership",
    "levenshtein",
    "output_edit_distance",
    "ideal_fitness",
    "FitnessSample",
    "FeatureEncoder",
    "VALUE_PAD",
    "value_to_token",
    "value_vocabulary_size",
    "TraceFitnessModel",
    "FunctionProbabilityModel",
    "TraceFitnessDataset",
    "FunctionProbabilityDataset",
    "EditDistanceFitness",
    "LearnedTraceFitness",
    "ProbabilityMapFitness",
    "OracleFitness",
]
