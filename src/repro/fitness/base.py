"""The fitness-function interface consumed by the genetic algorithm."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.dsl.equivalence import IOSet
from repro.dsl.program import Program


@dataclass(frozen=True)
class ScoredProgram:
    """A candidate program together with its fitness score."""

    program: Program
    score: float

    def __lt__(self, other: "ScoredProgram") -> bool:
        return self.score < other.score


class FitnessFunction(abc.ABC):
    """Scores candidate programs against an IO specification.

    Higher scores mean "closer to the target program".  Implementations
    must be *batched* — the GA scores the whole population at once, which
    is where the neural models recover vectorized efficiency.
    """

    #: human-readable name used in experiment reports
    name: str = "fitness"

    #: Whether :meth:`mutation_scores` can return anything but ``None``.
    #: The GA engine skips the call entirely when this is False, saving a
    #: per-mutation round-trip (and, for trace-based implementations, a
    #: wasted trace collection).  Implementations that override
    #: :meth:`mutation_scores` to return real scores must set this True.
    provides_mutation_scores: bool = False

    @abc.abstractmethod
    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        """Fitness of each program in ``programs`` against ``io_set``."""

    # ------------------------------------------------------------------
    def score_one(self, program: Program, io_set: IOSet) -> float:
        """Convenience wrapper scoring a single program."""
        return float(self.score([program], io_set)[0])

    def rank(self, programs: Sequence[Program], io_set: IOSet) -> List[ScoredProgram]:
        """Programs sorted by descending fitness."""
        scores = self.score(programs, io_set)
        scored = [ScoredProgram(p, float(s)) for p, s in zip(programs, scores)]
        return sorted(scored, key=lambda sp: sp.score, reverse=True)

    def cache_stats(self) -> List:
        """Hit/miss counters of any fitness-layer caches this instance owns.

        Returns a list of :class:`~repro.execution.CacheStats`; the GA
        engine folds these into the cache counters of every
        ``generation`` progress event so score/sample memoization is
        observable alongside the execution cache.
        """
        return []

    def probability_map(self, io_set: IOSet) -> Optional[np.ndarray]:
        """Function-probability map for this specification, if the fitness
        function can provide one (used by FP-guided mutation); else None."""
        return None

    def mutation_scores(self, program: Program, io_set: IOSet) -> Optional[np.ndarray]:
        """Optional per-position scores used to bias the mutation point.

        The paper selects the mutation point "based on the same learned
        NN-FF"; implementations may return a vector of length
        ``len(program)`` where *higher* values mean the position is more
        likely to be wrong (and hence a better mutation point).  Returning
        None means the mutation point is chosen uniformly.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
