"""Ideal fitness metrics between a candidate and the target program.

These are the quantities the neural fitness functions are trained to
predict (Section 4.2.1): common functions (CF), longest common
subsequence (LCS) and function membership (the label of the
function-probability model), plus the output edit distance used by the
hand-crafted baseline fitness.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

import numpy as np

from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.program import Program
from repro.dsl.types import Value, type_of, DSLType


def common_functions(candidate: Program, target: Program) -> int:
    """Number of common functions ``|elems(Pζ) ∩ elems(Pt)|`` (multiset).

    For the paper's worked example (candidate shares FILTER, MAP and
    REVERSE with the target) this is 3.
    """
    counter_candidate = Counter(candidate.function_ids)
    counter_target = Counter(target.function_ids)
    overlap = counter_candidate & counter_target
    return int(sum(overlap.values()))


def lcs_length(candidate: Program, target: Program) -> int:
    """Length of the longest common subsequence of the two function sequences."""
    a, b = candidate.function_ids, target.function_ids
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for x in a:
        current = [0] * (len(b) + 1)
        for j, y in enumerate(b, start=1):
            if x == y:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return int(previous[-1])


def function_membership(target: Program, registry: FunctionRegistry = REGISTRY) -> np.ndarray:
    """Binary vector over ``ΣDSL`` marking which functions appear in ``target``.

    This is the training label of the function-probability model: the
    model's prediction approximates ``Prob(op_k ∈ elems(Pt) | S_t)``.
    """
    membership = np.zeros(len(registry), dtype=np.float64)
    for fid in target.function_ids:
        membership[registry.index_of(fid)] = 1.0
    return membership


def fp_score(candidate: Program, probability_map: np.ndarray, registry: FunctionRegistry = REGISTRY) -> float:
    """The FP fitness ``Σ_{k: op_k ∈ elems(Pζ)} p_k`` for a probability map."""
    indices = {registry.index_of(fid) for fid in candidate.function_ids}
    return float(sum(probability_map[i] for i in indices))


def levenshtein(a: Sequence[int], b: Sequence[int]) -> int:
    """Classic edit distance between two integer sequences."""
    if len(a) == 0:
        return len(b)
    if len(b) == 0:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, x in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, y in enumerate(b, start=1):
            cost = 0 if x == y else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
        previous = current
    return int(previous[-1])


def _as_sequence(value: Value) -> List[int]:
    """View a DSL value as an integer sequence for edit-distance purposes."""
    if type_of(value) is DSLType.INT:
        return [int(value)]
    return [int(v) for v in value]


def output_edit_distance(candidate_output: Value, target_output: Value) -> int:
    """Edit distance between two program outputs (singletons viewed as length-1 lists)."""
    return levenshtein(_as_sequence(candidate_output), _as_sequence(target_output))


def ideal_fitness(kind: str, candidate: Program, target: Program) -> float:
    """Dispatch to the ideal metric named by ``kind`` ("cf" or "lcs")."""
    if kind == "cf":
        return float(common_functions(candidate, target))
    if kind == "lcs":
        return float(lcs_length(candidate, target))
    raise ValueError(f"unknown ideal fitness kind {kind!r}")
