"""Feature encoding for the neural fitness models.

The NN-FF (Figure 2) consumes, per IO example, the input list, the output
list, and the candidate program's execution trace (one function id and one
intermediate value per step).  This module turns those structures into
padded integer token arrays that the encoders in :mod:`repro.nn.encoders`
can embed.

Token scheme
------------
DSL integers are saturated to ``[INT_MIN, INT_MAX]`` so every runtime value
maps to a token ``value - INT_MIN + 1``; token 0 is padding.  Function ids
use their own dense 0-based index space (plus a padding slot) for the
function embedding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.equivalence import IOExample, IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import ExecutionTrace
from repro.dsl.program import Program
from repro.dsl.types import DSLType, INT_MAX, INT_MIN, Value, clamp_int, type_of

#: padding token for value sequences
VALUE_PAD = 0


def value_vocabulary_size() -> int:
    """Number of distinct value tokens (all saturated ints plus padding)."""
    return (INT_MAX - INT_MIN + 1) + 1


def value_to_token(value: int) -> int:
    """Map a saturated DSL integer to its embedding token (1-based)."""
    return clamp_int(int(value)) - INT_MIN + 1


def flatten_value(value: Value) -> List[int]:
    """View a DSL value as a flat list of integers (singleton -> length 1)."""
    if type_of(value) is DSLType.INT:
        return [int(value)]
    return [int(v) for v in value]


@dataclass(frozen=True)
class FitnessSample:
    """One training/inference sample for the trace-based fitness model.

    Attributes
    ----------
    function_ids:
        The candidate program's function ids (gene), in execution order.
    io_inputs:
        Per IO example, the tuple of program inputs of the *target*'s
        specification.
    io_outputs:
        Per IO example, the target output.
    traces:
        Per IO example, the candidate's intermediate outputs ``t_1..t_L``
        (one value per program step) obtained by running the candidate on
        that example's input.
    label:
        Optional ideal fitness value (CF or LCS) used for training.
    fp_target:
        Optional function-membership vector used to train the FP model.
    """

    function_ids: Tuple[int, ...]
    io_inputs: Tuple[Tuple[Value, ...], ...]
    io_outputs: Tuple[Value, ...]
    traces: Tuple[Tuple[Value, ...], ...]
    label: Optional[int] = None
    fp_target: Optional[Tuple[float, ...]] = None

    @property
    def n_examples(self) -> int:
        return len(self.io_inputs)

    @property
    def program_length(self) -> int:
        return len(self.function_ids)


def sample_from_execution(
    candidate: Program,
    io_set: IOSet,
    traces: Sequence[ExecutionTrace],
    label: Optional[int] = None,
    fp_target: Optional[np.ndarray] = None,
) -> FitnessSample:
    """Build a :class:`FitnessSample` from a candidate, a spec and its traces."""
    if len(traces) != len(io_set):
        raise ValueError("one trace per IO example is required")
    return FitnessSample(
        function_ids=tuple(candidate.function_ids),
        io_inputs=tuple(tuple(example.inputs) for example in io_set),
        io_outputs=tuple(example.output for example in io_set),
        traces=tuple(tuple(trace.intermediate_outputs) for trace in traces),
        label=None if label is None else int(label),
        fp_target=None if fp_target is None else tuple(float(x) for x in fp_target),
    )


@dataclass
class FeatureEncoder:
    """Encodes batches of :class:`FitnessSample` into padded arrays.

    Parameters
    ----------
    max_value_length:
        Lists longer than this are truncated (keeping the head) before
        being embedded.
    registry:
        DSL function registry; determines the function-index space.
    pad_value_width:
        When set, every token/mask array is padded to exactly this many
        columns instead of the longest sequence in the batch, so the
        encoded arrays — and therefore the model's forward pass — do not
        depend on batch composition.  Must be at least
        ``max_value_length`` (the longest sequence any row can produce).
    pad_program_length:
        When set, the step dimension of :meth:`encode_trace_batch` is
        padded to exactly this many steps instead of the longest program
        in the batch.  Samples longer than this are rejected.

    The two ``pad_*`` widths are what makes scoring batch-shape-invariant
    (see ``docs/execution.md``); trailing all-padding columns are exact
    no-ops for the masked encoders, and the models skip them, so fixed
    widths cost nothing at inference time.
    """

    max_value_length: int = 16
    registry: FunctionRegistry = field(default_factory=lambda: REGISTRY)
    pad_value_width: Optional[int] = None
    pad_program_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pad_value_width is not None and self.pad_value_width < self.max_value_length:
            raise ValueError(
                f"pad_value_width={self.pad_value_width} is below "
                f"max_value_length={self.max_value_length}; rows could overflow it"
            )
        if self.pad_program_length is not None and self.pad_program_length <= 0:
            raise ValueError("pad_program_length must be positive")

    # ------------------------------------------------------------------
    @property
    def n_functions(self) -> int:
        return len(self.registry)

    def encode_value(self, value: Value) -> List[int]:
        """Token sequence for a single DSL value (truncated, never padded)."""
        flat = flatten_value(value)[: self.max_value_length]
        return [value_to_token(v) for v in flat]

    def _pack_values(self, values: Sequence[Value]) -> Tuple[np.ndarray, np.ndarray]:
        """Pad a list of DSL values into (tokens, mask) arrays.

        The width is the longest sequence in the batch, or the fixed
        ``pad_value_width`` when configured (batch-shape invariance).
        """
        sequences = [self.encode_value(v) for v in values]
        if self.pad_value_width is not None:
            width = self.pad_value_width
        else:
            width = max(1, max((len(s) for s in sequences), default=1))
        tokens = np.full((len(sequences), width), VALUE_PAD, dtype=np.int64)
        mask = np.zeros((len(sequences), width), dtype=np.float64)
        for row, seq in enumerate(sequences):
            if seq:
                tokens[row, : len(seq)] = seq
                mask[row, : len(seq)] = 1.0
        return tokens, mask

    # ------------------------------------------------------------------
    def encode_trace_batch(self, samples: Sequence[FitnessSample]) -> Dict[str, np.ndarray]:
        """Encode samples for the trace-based (CF/LCS) model.

        All samples in a batch must have the same number of IO examples;
        program lengths may differ (shorter programs are padded and
        masked).  Returns a dict of arrays:

        ``input_tokens/input_mask``  — ``(B*m, T_in)``
        ``output_tokens/output_mask`` — ``(B*m, T_out)``
        ``step_functions``            — ``(B*m, L)`` 0-based function indices
        ``step_mask``                 — ``(B*m, L)``
        ``step_value_tokens/mask``    — ``(B*m*L, T_val)``
        ``labels``                    — ``(B,)`` when every sample has one
        ``shape``                     — ``(B, m, L)`` bookkeeping triple
        """
        if not samples:
            raise ValueError("cannot encode an empty batch")
        m = samples[0].n_examples
        if any(s.n_examples != m for s in samples):
            raise ValueError("all samples in a batch must have the same number of IO examples")
        batch = len(samples)
        max_len = max(s.program_length for s in samples)
        if self.pad_program_length is not None:
            if max_len > self.pad_program_length:
                raise ValueError(
                    f"sample of length {max_len} exceeds "
                    f"pad_program_length={self.pad_program_length}"
                )
            max_len = self.pad_program_length

        # flatten (sample, example) pairs
        flat_inputs: List[Value] = []
        flat_outputs: List[Value] = []
        step_functions = np.zeros((batch * m, max_len), dtype=np.int64)
        step_mask = np.zeros((batch * m, max_len), dtype=np.float64)
        flat_step_values: List[Value] = []

        for b, sample in enumerate(samples):
            for e in range(m):
                row = b * m + e
                # inputs: a program may take several inputs; concatenate them
                # into one token sequence (they are separated by truncation
                # boundaries only, which is sufficient for the encoder).
                combined_input: List[int] = []
                for value in sample.io_inputs[e]:
                    combined_input.extend(flatten_value(value))
                flat_inputs.append(combined_input)
                flat_outputs.append(sample.io_outputs[e])

                trace = sample.traces[e]
                for k in range(max_len):
                    if k < sample.program_length:
                        step_functions[row, k] = self.registry.index_of(sample.function_ids[k])
                        step_mask[row, k] = 1.0
                        flat_step_values.append(trace[k] if k < len(trace) else [])
                    else:
                        flat_step_values.append([])

        input_tokens, input_mask = self._pack_values(flat_inputs)
        output_tokens, output_mask = self._pack_values(flat_outputs)
        step_value_tokens, step_value_mask = self._pack_values(flat_step_values)

        encoded: Dict[str, np.ndarray] = {
            "input_tokens": input_tokens,
            "input_mask": input_mask,
            "output_tokens": output_tokens,
            "output_mask": output_mask,
            "step_functions": step_functions,
            "step_mask": step_mask,
            "step_value_tokens": step_value_tokens,
            "step_value_mask": step_value_mask,
            "shape": np.array([batch, m, max_len], dtype=np.int64),
        }
        if all(s.label is not None for s in samples):
            encoded["labels"] = np.array([s.label for s in samples], dtype=np.int64)
        return encoded

    # ------------------------------------------------------------------
    def encode_io_batch(
        self, io_sets: Sequence[IOSet], fp_targets: Optional[Sequence[Sequence[float]]] = None
    ) -> Dict[str, np.ndarray]:
        """Encode IO specifications only (for the function-probability model)."""
        if not io_sets:
            raise ValueError("cannot encode an empty batch")
        m = len(io_sets[0])
        if any(len(s) != m for s in io_sets):
            raise ValueError("all IO sets in a batch must have the same number of examples")
        batch = len(io_sets)
        flat_inputs: List[Value] = []
        flat_outputs: List[Value] = []
        for io_set in io_sets:
            for example in io_set:
                combined_input: List[int] = []
                for value in example.inputs:
                    combined_input.extend(flatten_value(value))
                flat_inputs.append(combined_input)
                flat_outputs.append(example.output)
        input_tokens, input_mask = self._pack_values(flat_inputs)
        output_tokens, output_mask = self._pack_values(flat_outputs)
        encoded: Dict[str, np.ndarray] = {
            "input_tokens": input_tokens,
            "input_mask": input_mask,
            "output_tokens": output_tokens,
            "output_mask": output_mask,
            "shape": np.array([batch, m], dtype=np.int64),
        }
        if fp_targets is not None:
            encoded["fp_targets"] = np.asarray(fp_targets, dtype=np.float64)
        return encoded
