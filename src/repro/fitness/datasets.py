"""Array-backed datasets feeding the neural fitness models."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.equivalence import IOSet
from repro.fitness.features import FeatureEncoder, FitnessSample


class TraceFitnessDataset:
    """Dataset of :class:`FitnessSample` for the CF/LCS trace model."""

    def __init__(self, samples: Sequence[FitnessSample], encoder: Optional[FeatureEncoder] = None) -> None:
        self.samples: List[FitnessSample] = list(samples)
        self.encoder = encoder or FeatureEncoder()

    def __len__(self) -> int:
        return len(self.samples)

    def get_batch(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        batch = [self.samples[int(i)] for i in indices]
        return self.encoder.encode_trace_batch(batch)

    # ------------------------------------------------------------------
    def label_distribution(self) -> Dict[int, int]:
        """Histogram of the ideal fitness labels (for balance checks)."""
        histogram: Dict[int, int] = {}
        for sample in self.samples:
            if sample.label is None:
                continue
            histogram[sample.label] = histogram.get(sample.label, 0) + 1
        return histogram

    def split(self, validation_fraction: float, rng: np.random.Generator) -> Tuple["TraceFitnessDataset", "TraceFitnessDataset"]:
        """Random train/validation split."""
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        order = np.arange(len(self.samples))
        rng.shuffle(order)
        n_val = int(round(len(order) * validation_fraction))
        val_idx, train_idx = order[:n_val], order[n_val:]
        train = TraceFitnessDataset([self.samples[i] for i in train_idx], self.encoder)
        val = TraceFitnessDataset([self.samples[i] for i in val_idx], self.encoder)
        return train, val


class FunctionProbabilityDataset:
    """Dataset of (IO set, membership vector) pairs for the FP model."""

    def __init__(
        self,
        io_sets: Sequence[IOSet],
        fp_targets: Sequence[Sequence[float]],
        encoder: Optional[FeatureEncoder] = None,
    ) -> None:
        if len(io_sets) != len(fp_targets):
            raise ValueError("io_sets and fp_targets must have the same length")
        self.io_sets: List[IOSet] = list(io_sets)
        self.fp_targets = np.asarray(fp_targets, dtype=np.float64)
        self.encoder = encoder or FeatureEncoder()

    def __len__(self) -> int:
        return len(self.io_sets)

    def get_batch(self, indices: np.ndarray) -> Dict[str, np.ndarray]:
        io_sets = [self.io_sets[int(i)] for i in indices]
        targets = self.fp_targets[np.asarray(indices, dtype=np.int64)]
        return self.encoder.encode_io_batch(io_sets, fp_targets=targets)

    def split(self, validation_fraction: float, rng: np.random.Generator) -> Tuple["FunctionProbabilityDataset", "FunctionProbabilityDataset"]:
        """Random train/validation split."""
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")
        order = np.arange(len(self.io_sets))
        rng.shuffle(order)
        n_val = int(round(len(order) * validation_fraction))
        val_idx, train_idx = order[:n_val], order[n_val:]
        train = FunctionProbabilityDataset(
            [self.io_sets[i] for i in train_idx], self.fp_targets[train_idx], self.encoder
        )
        val = FunctionProbabilityDataset(
            [self.io_sets[i] for i in val_idx], self.fp_targets[val_idx], self.encoder
        )
        return train, val
