"""Concrete fitness functions the genetic algorithm can use.

* :class:`LearnedTraceFitness` — the paper's NN-FF for CF or LCS.
* :class:`ProbabilityMapFitness` — the FP fitness (and the probability
  map used to guide mutation).
* :class:`EditDistanceFitness` — the hand-crafted baseline the paper
  criticizes (output edit distance).
* :class:`OracleFitness` — the ideal upper bound that peeks at the target
  program (row "Oracle" of Tables 3 and 4).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.equivalence import IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.execution import ExecutionEngine, LRUCache, ScoreCache, io_set_key
from repro.execution.cache import CacheStats, program_key
from repro.fitness.base import FitnessFunction
from repro.fitness.features import FeatureEncoder, FitnessSample, sample_from_execution
from repro.fitness.ideal import (
    common_functions,
    fp_score,
    ideal_fitness,
    lcs_length,
    output_edit_distance,
)
from repro.fitness.models import FunctionProbabilityModel, TraceFitnessModel


def _io_set_key(io_set: IOSet) -> Tuple:
    """Hashable key for an IO specification (used for caching).

    Delegates to the structural :func:`repro.execution.io_set_key`: the
    key is the frozen content of the examples, not Python's process-salted
    ``hash()``, so it is stable (and shareable) across worker processes.
    """
    return io_set_key(io_set)


class LearnedTraceFitness(FitnessFunction):
    """NN-FF fitness: a trained :class:`TraceFitnessModel` scores candidates.

    The score of a candidate is the model's *expected* class value (a soft
    version of the predicted CF/LCS), which gives the Roulette Wheel
    smoother weights than the hard argmax.

    Scoring is memoized per ``(program, io_set)`` by default: the encoder
    pads every batch to fixed, config-derived widths and forward batches
    are never singletons (a lone gene is doubled and the first row kept),
    so a program's predicted score does not depend on which other genes
    share its batch — which is what makes skipping already-scored genes
    safe.  Elites, reproduced survivors and re-visited neighbors then cost
    one :class:`~repro.execution.ScoreCache` lookup instead of a forward
    pass.  ``memoize=False`` restores the historical
    score-everything-every-generation path (the bit-identity control).
    """

    def __init__(
        self,
        model: TraceFitnessModel,
        kind: str = "cf",
        encoder: Optional[FeatureEncoder] = None,
        interpreter: Optional[Interpreter] = None,
        batch_size: int = 128,
        executor: Optional[ExecutionEngine] = None,
        memoize: bool = True,
        score_cache: Optional[ScoreCache] = None,
        score_cache_size: int = 100_000,
        sample_cache: Optional[LRUCache] = None,
        sample_cache_size: int = 50_000,
        program_length: Optional[int] = None,
    ) -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.model = model
        self.kind = kind
        self.encoder = encoder or FeatureEncoder(registry=model.registry)
        self.interpreter = interpreter or Interpreter()
        self.batch_size = int(batch_size)
        self.name = f"nnff_{kind}"
        # a default engine honors the interpreter's execution mode
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)
        self.score_cache: Optional[ScoreCache] = None
        if memoize:
            # explicit None check: an empty cache is falsy (len() == 0)
            if score_cache is None:
                score_cache = ScoreCache(capacity=score_cache_size, namespace=f"score:{self.name}")
            self.score_cache = score_cache
            # Batch-shape invariance: pad value sequences and the step
            # dimension to fixed widths derived from configuration (the
            # encoder's own truncation bound and the run's program
            # length), never from whichever genes happen to need scoring.
            self.encoder = dataclasses.replace(
                self.encoder,
                pad_value_width=self.encoder.pad_value_width or self.encoder.max_value_length,
                pad_program_length=program_length or self.encoder.pad_program_length,
            )
        # Trace-sample memo (bounded LRU); shareable across fitness
        # instances serving the same model, e.g. across a backend's runs.
        self._sample_cache = (
            sample_cache if sample_cache is not None else LRUCache(sample_cache_size)
        )

    # ------------------------------------------------------------------
    def _samples_for(self, programs: Sequence[Program], io_set: IOSet) -> List[FitnessSample]:
        """One :class:`FitnessSample` per program, trace-cached per spec.

        Trace collection (interpreting the candidate on every example) is
        an expensive part of NN-FF scoring; the shared executor memoizes
        the raw traces and a bounded LRU keeps the assembled samples, so
        candidates the GA already executed for the solution check cost a
        lookup.  The forward pass on top is memoized separately in
        :attr:`score_cache` (see :meth:`score`).
        """
        io_key = self.executor.io_key(io_set)
        samples: List[Optional[FitnessSample]] = [None] * len(programs)
        pending: List[int] = []
        for index, program in enumerate(programs):
            key = (program_key(program), io_key)
            sample = self._sample_cache.get(key, namespace="samples")
            if sample is None:
                pending.append(index)
            else:
                samples[index] = sample
        if pending:
            # batch-capable executors collect every missing trace in one
            # columnar pass; traces land in the shared evaluation cache
            # exactly as the per-program path would store them
            if getattr(self.executor, "is_batch", False):
                traces_list = self.executor.traces_batch(
                    [programs[i] for i in pending], io_set, io_key=io_key
                )
            else:
                traces_list = [
                    self.executor.traces(programs[i], io_set, io_key=io_key) for i in pending
                ]
            for index, traces in zip(pending, traces_list):
                program = programs[index]
                sample = sample_from_execution(program, io_set, traces)
                self._sample_cache.put((program_key(program), io_key), sample)
                samples[index] = sample
        return samples

    def _forward_samples(self, samples: Sequence[FitnessSample], pad_singletons: bool) -> np.ndarray:
        """Predicted fitness per sample, in ``batch_size`` chunks.

        With ``pad_singletons`` a 1-sample chunk is encoded twice and the
        first prediction kept: BLAS routes single-row matmuls through a
        different (gemv) kernel whose rounding can differ from the batched
        one, and a 2-row batch restores the batched kernel — keeping every
        score identical to the value the gene would get inside any larger
        batch.  (``batch_size=1`` scoring never pads: there the historical
        contract is one single-row forward per gene.)
        """
        scores = np.zeros(len(samples))
        for start in range(0, len(samples), self.batch_size):
            chunk = samples[start : start + self.batch_size]
            if pad_singletons and len(chunk) == 1:
                batch = self.encoder.encode_trace_batch([chunk[0], chunk[0]])
                scores[start] = self.model.predict_fitness(batch)[0]
            else:
                batch = self.encoder.encode_trace_batch(chunk)
                scores[start : start + len(chunk)] = self.model.predict_fitness(batch)
        return scores

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        if self.score_cache is None:
            # historical path: forward the entire population every call
            return self._forward_samples(self._samples_for(programs, io_set), False)
        io_key = self.executor.io_key(io_set)
        scores, pending = self.score_cache.partition(programs, io_key)
        if pending:
            fresh = [program for program, _ in pending.values()]
            samples = self._samples_for(fresh, io_set)
            values = self._forward_samples(samples, self.batch_size > 1)
            for (key, (_, positions)), value in zip(pending.items(), values):
                self.score_cache.put_key(key, io_key, value)
                scores[positions] = value
        return scores

    def cache_stats(self) -> List[CacheStats]:
        stats = [self._sample_cache.stats]
        if self.score_cache is not None:
            stats.append(self.score_cache.stats)
        return stats

    def mutation_scores(self, program: Program, io_set: IOSet) -> Optional[np.ndarray]:
        """Score each position by how much removing confidence it carries.

        The paper selects the mutation point using the learned NN-FF.  We
        approximate "how wrong is position k" by how much the predicted
        fitness *improves* when the position is replaced by each candidate
        being equally likely — cheaply estimated as the drop in predicted
        fitness attributable to that position via leave-one-out masking is
        too expensive per generation, so instead we return a uniform prior
        here and let :class:`ProbabilityMapFitness` provide sharper
        guidance when FP mutation is enabled.
        """
        return None


class ProbabilityMapFitness(FitnessFunction):
    """FP fitness: sum of predicted membership probabilities of a gene's functions."""

    def __init__(
        self,
        model: FunctionProbabilityModel,
        encoder: Optional[FeatureEncoder] = None,
        registry: FunctionRegistry = REGISTRY,
        executor: Optional[ExecutionEngine] = None,
        cache_tag: Optional[str] = None,
        map_cache: Optional[LRUCache] = None,
        map_cache_size: int = 512,
    ) -> None:
        self.model = model
        self.encoder = encoder or FeatureEncoder(registry=registry)
        self.registry = registry
        self.name = "nnff_fp"
        self.executor = executor or ExecutionEngine()
        # score cache namespace is model-specific: executors are shared
        # across fitness instances, and two FP models must never read
        # each other's cached scores.  A caller-supplied tag makes the
        # namespace process-stable, which is what lets cache snapshots
        # cross worker boundaries (id() is process-local).
        self._score_ns = f"score:nnff_fp:{cache_tag or id(self.model)}"
        # probability maps are one small vector per specification, but a
        # long-lived serving session sees unboundedly many specs — LRU
        self._cache = map_cache if map_cache is not None else LRUCache(map_cache_size)

    # ------------------------------------------------------------------
    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The predicted probability map for a specification (LRU-cached)."""
        key = self.executor.io_key(io_set)
        cached = self._cache.get(key, namespace="probability_map")
        if cached is None:
            batch = self.encoder.encode_io_batch([io_set])
            cached = self.model.predict_probability_map(batch)[0]
            self._cache.put(key, cached)
        return cached

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        prob_map = self.probability_map(io_set)
        io_key = self.executor.io_key(io_set)
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            cached = self.executor.get_cached(self._score_ns, program, io_key)
            if cached is None:
                cached = float(fp_score(program, prob_map, self.registry))
                self.executor.put_cached(self._score_ns, program, io_key, cached)
            scores[index] = cached
        return scores

    def cache_stats(self) -> List[CacheStats]:
        return [self._cache.stats]


class EditDistanceFitness(FitnessFunction):
    """Hand-crafted baseline: similarity of candidate outputs to target outputs.

    The fitness is ``Σ_j 1 / (1 + edit_distance(Pζ(I_j), O_j))`` so that a
    perfect candidate scores ``m`` and scores decrease smoothly with the
    output mismatch — the standard fitness the paper argues is misleading.
    """

    def __init__(
        self,
        interpreter: Optional[Interpreter] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        self.interpreter = interpreter or Interpreter(trace=False)
        self.name = "edit"
        # a default engine honors the interpreter's execution mode
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        io_key = self.executor.io_key(io_set)
        scores = np.zeros(len(programs))
        pending: List[int] = []
        for index, program in enumerate(programs):
            cached = self.executor.get_cached("score:edit", program, io_key)
            if cached is None:
                pending.append(index)
            else:
                scores[index] = cached
        if pending:
            # batch-capable executors evaluate every unscored candidate in
            # one columnar pass; either way outputs come from (and land in)
            # the same evaluation cache the GA's solution check uses
            if getattr(self.executor, "is_batch", False):
                outputs_list = self.executor.outputs_batch(
                    [programs[i] for i in pending], io_set, io_key=io_key
                )
            else:
                outputs_list = [
                    self.executor.outputs(programs[i], io_set, io_key=io_key) for i in pending
                ]
            for index, outputs in zip(pending, outputs_list):
                value = float(
                    sum(
                        1.0 / (1.0 + output_edit_distance(output, example.output))
                        for output, example in zip(outputs, io_set)
                    )
                )
                self.executor.put_cached("score:edit", programs[index], io_key, value)
                scores[index] = value
        return scores


class OracleFitness(FitnessFunction):
    """Ideal fitness that compares candidates directly against the target program.

    Impossible in practice (the target is unknown); used as the upper
    bound ``Oracle_{LCS|CF}`` in the paper's Tables 3 and 4.
    """

    def __init__(
        self,
        target: Program,
        kind: str = "lcs",
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.target = target
        self.kind = kind
        self.name = f"oracle_{kind}"
        self.executor = executor or ExecutionEngine()
        # oracle scores depend on the target, not the IO examples
        self._target_key = ("target",) + tuple(target.function_ids)

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            cached = self.executor.get_cached(self.name, program, self._target_key)
            if cached is None:
                cached = float(ideal_fitness(self.kind, program, self.target))
                self.executor.put_cached(self.name, program, self._target_key, cached)
            scores[index] = cached
        return scores

    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The exact membership vector of the target (a perfect FP map)."""
        from repro.fitness.ideal import function_membership

        return function_membership(self.target, self.target.registry)
