"""Concrete fitness functions the genetic algorithm can use.

* :class:`LearnedTraceFitness` — the paper's NN-FF for CF or LCS.
* :class:`ProbabilityMapFitness` — the FP fitness (and the probability
  map used to guide mutation).
* :class:`EditDistanceFitness` — the hand-crafted baseline the paper
  criticizes (output edit distance).
* :class:`OracleFitness` — the ideal upper bound that peeks at the target
  program (row "Oracle" of Tables 3 and 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.equivalence import IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.execution import ExecutionEngine, io_set_key
from repro.fitness.base import FitnessFunction
from repro.fitness.features import FeatureEncoder, FitnessSample, sample_from_execution
from repro.fitness.ideal import (
    common_functions,
    fp_score,
    ideal_fitness,
    lcs_length,
    output_edit_distance,
)
from repro.fitness.models import FunctionProbabilityModel, TraceFitnessModel


def _io_set_key(io_set: IOSet) -> Tuple:
    """Hashable key for an IO specification (used for caching).

    Delegates to the structural :func:`repro.execution.io_set_key`: the
    key is the frozen content of the examples, not Python's process-salted
    ``hash()``, so it is stable (and shareable) across worker processes.
    """
    return io_set_key(io_set)


class LearnedTraceFitness(FitnessFunction):
    """NN-FF fitness: a trained :class:`TraceFitnessModel` scores candidates.

    The score of a candidate is the model's *expected* class value (a soft
    version of the predicted CF/LCS), which gives the Roulette Wheel
    smoother weights than the hard argmax.
    """

    def __init__(
        self,
        model: TraceFitnessModel,
        kind: str = "cf",
        encoder: Optional[FeatureEncoder] = None,
        interpreter: Optional[Interpreter] = None,
        batch_size: int = 128,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.model = model
        self.kind = kind
        self.encoder = encoder or FeatureEncoder(registry=model.registry)
        self.interpreter = interpreter or Interpreter()
        self.batch_size = int(batch_size)
        self.name = f"nnff_{kind}"
        # a default engine honors the interpreter's execution mode
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)

    # ------------------------------------------------------------------
    def _samples_for(self, programs: Sequence[Program], io_set: IOSet) -> List[FitnessSample]:
        """One :class:`FitnessSample` per program, trace-cached per spec.

        Trace collection (interpreting the candidate on every example) is
        the expensive part of NN-FF scoring; the shared executor memoizes
        it, so elites re-scored in later generations — and candidates the
        GA already executed for the solution check — cost one lookup.
        The NN forward pass itself is *not* memoized: batch composition
        stays exactly as in the uncached implementation, which keeps
        seeded runs bit-identical (batched score memoization is tracked
        as a ROADMAP open item).
        """
        io_key = self.executor.io_key(io_set)
        samples: List[FitnessSample] = []
        for program in programs:
            sample = self.executor.get_cached("samples", program, io_key)
            if sample is None:
                traces = self.executor.traces(program, io_set, io_key=io_key)
                sample = sample_from_execution(program, io_set, traces)
                self.executor.put_cached("samples", program, io_key, sample)
            samples.append(sample)
        return samples

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        samples = self._samples_for(programs, io_set)
        scores = np.zeros(len(samples))
        for start in range(0, len(samples), self.batch_size):
            chunk = samples[start : start + self.batch_size]
            batch = self.encoder.encode_trace_batch(chunk)
            scores[start : start + len(chunk)] = self.model.predict_fitness(batch)
        return scores

    def mutation_scores(self, program: Program, io_set: IOSet) -> Optional[np.ndarray]:
        """Score each position by how much removing confidence it carries.

        The paper selects the mutation point using the learned NN-FF.  We
        approximate "how wrong is position k" by how much the predicted
        fitness *improves* when the position is replaced by each candidate
        being equally likely — cheaply estimated as the drop in predicted
        fitness attributable to that position via leave-one-out masking is
        too expensive per generation, so instead we return a uniform prior
        here and let :class:`ProbabilityMapFitness` provide sharper
        guidance when FP mutation is enabled.
        """
        return None


class ProbabilityMapFitness(FitnessFunction):
    """FP fitness: sum of predicted membership probabilities of a gene's functions."""

    def __init__(
        self,
        model: FunctionProbabilityModel,
        encoder: Optional[FeatureEncoder] = None,
        registry: FunctionRegistry = REGISTRY,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        self.model = model
        self.encoder = encoder or FeatureEncoder(registry=registry)
        self.registry = registry
        self.name = "nnff_fp"
        self.executor = executor or ExecutionEngine()
        # score cache namespace is model-specific: executors are shared
        # across fitness instances, and two FP models must never read
        # each other's cached scores
        self._score_ns = f"score:nnff_fp:{id(self.model)}"
        self._cache: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The predicted probability map for a specification (cached)."""
        key = self.executor.io_key(io_set)
        if key not in self._cache:
            batch = self.encoder.encode_io_batch([io_set])
            self._cache[key] = self.model.predict_probability_map(batch)[0]
        return self._cache[key]

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        prob_map = self.probability_map(io_set)
        io_key = self.executor.io_key(io_set)
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            cached = self.executor.get_cached(self._score_ns, program, io_key)
            if cached is None:
                cached = float(fp_score(program, prob_map, self.registry))
                self.executor.put_cached(self._score_ns, program, io_key, cached)
            scores[index] = cached
        return scores


class EditDistanceFitness(FitnessFunction):
    """Hand-crafted baseline: similarity of candidate outputs to target outputs.

    The fitness is ``Σ_j 1 / (1 + edit_distance(Pζ(I_j), O_j))`` so that a
    perfect candidate scores ``m`` and scores decrease smoothly with the
    output mismatch — the standard fitness the paper argues is misleading.
    """

    def __init__(
        self,
        interpreter: Optional[Interpreter] = None,
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        self.interpreter = interpreter or Interpreter(trace=False)
        self.name = "edit"
        # a default engine honors the interpreter's execution mode
        self.executor = executor or ExecutionEngine(compiled=self.interpreter.compiled)

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        io_key = self.executor.io_key(io_set)
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            cached = self.executor.get_cached("score:edit", program, io_key)
            if cached is None:
                outputs = self.executor.outputs(program, io_set, io_key=io_key)
                cached = float(
                    sum(
                        1.0 / (1.0 + output_edit_distance(output, example.output))
                        for output, example in zip(outputs, io_set)
                    )
                )
                self.executor.put_cached("score:edit", program, io_key, cached)
            scores[index] = cached
        return scores


class OracleFitness(FitnessFunction):
    """Ideal fitness that compares candidates directly against the target program.

    Impossible in practice (the target is unknown); used as the upper
    bound ``Oracle_{LCS|CF}`` in the paper's Tables 3 and 4.
    """

    def __init__(
        self,
        target: Program,
        kind: str = "lcs",
        executor: Optional[ExecutionEngine] = None,
    ) -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.target = target
        self.kind = kind
        self.name = f"oracle_{kind}"
        self.executor = executor or ExecutionEngine()
        # oracle scores depend on the target, not the IO examples
        self._target_key = ("target",) + tuple(target.function_ids)

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            cached = self.executor.get_cached(self.name, program, self._target_key)
            if cached is None:
                cached = float(ideal_fitness(self.kind, program, self.target))
                self.executor.put_cached(self.name, program, self._target_key, cached)
            scores[index] = cached
        return scores

    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The exact membership vector of the target (a perfect FP map)."""
        from repro.fitness.ideal import function_membership

        return function_membership(self.target, self.target.registry)
