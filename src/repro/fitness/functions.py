"""Concrete fitness functions the genetic algorithm can use.

* :class:`LearnedTraceFitness` — the paper's NN-FF for CF or LCS.
* :class:`ProbabilityMapFitness` — the FP fitness (and the probability
  map used to guide mutation).
* :class:`EditDistanceFitness` — the hand-crafted baseline the paper
  criticizes (output edit distance).
* :class:`OracleFitness` — the ideal upper bound that peeks at the target
  program (row "Oracle" of Tables 3 and 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsl.equivalence import IOSet
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.dsl.interpreter import Interpreter
from repro.dsl.program import Program
from repro.fitness.base import FitnessFunction
from repro.fitness.features import FeatureEncoder, FitnessSample, sample_from_execution
from repro.fitness.ideal import (
    common_functions,
    fp_score,
    ideal_fitness,
    lcs_length,
    output_edit_distance,
)
from repro.fitness.models import FunctionProbabilityModel, TraceFitnessModel


def _io_set_key(io_set: IOSet) -> Tuple:
    """Hashable key for an IO specification (used for caching)."""
    return tuple(hash(example) for example in io_set)


class LearnedTraceFitness(FitnessFunction):
    """NN-FF fitness: a trained :class:`TraceFitnessModel` scores candidates.

    The score of a candidate is the model's *expected* class value (a soft
    version of the predicted CF/LCS), which gives the Roulette Wheel
    smoother weights than the hard argmax.
    """

    def __init__(
        self,
        model: TraceFitnessModel,
        kind: str = "cf",
        encoder: Optional[FeatureEncoder] = None,
        interpreter: Optional[Interpreter] = None,
        batch_size: int = 128,
    ) -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.model = model
        self.kind = kind
        self.encoder = encoder or FeatureEncoder(registry=model.registry)
        self.interpreter = interpreter or Interpreter()
        self.batch_size = int(batch_size)
        self.name = f"nnff_{kind}"

    # ------------------------------------------------------------------
    def _samples_for(self, programs: Sequence[Program], io_set: IOSet) -> List[FitnessSample]:
        samples: List[FitnessSample] = []
        for program in programs:
            traces = [self.interpreter.run(program, example.inputs) for example in io_set]
            samples.append(sample_from_execution(program, io_set, traces))
        return samples

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        samples = self._samples_for(programs, io_set)
        scores = np.zeros(len(samples))
        for start in range(0, len(samples), self.batch_size):
            chunk = samples[start : start + self.batch_size]
            batch = self.encoder.encode_trace_batch(chunk)
            scores[start : start + len(chunk)] = self.model.predict_fitness(batch)
        return scores

    def mutation_scores(self, program: Program, io_set: IOSet) -> Optional[np.ndarray]:
        """Score each position by how much removing confidence it carries.

        The paper selects the mutation point using the learned NN-FF.  We
        approximate "how wrong is position k" by how much the predicted
        fitness *improves* when the position is replaced by each candidate
        being equally likely — cheaply estimated as the drop in predicted
        fitness attributable to that position via leave-one-out masking is
        too expensive per generation, so instead we return a uniform prior
        here and let :class:`ProbabilityMapFitness` provide sharper
        guidance when FP mutation is enabled.
        """
        return None


class ProbabilityMapFitness(FitnessFunction):
    """FP fitness: sum of predicted membership probabilities of a gene's functions."""

    def __init__(
        self,
        model: FunctionProbabilityModel,
        encoder: Optional[FeatureEncoder] = None,
        registry: FunctionRegistry = REGISTRY,
    ) -> None:
        self.model = model
        self.encoder = encoder or FeatureEncoder(registry=registry)
        self.registry = registry
        self.name = "nnff_fp"
        self._cache: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The predicted probability map for a specification (cached)."""
        key = _io_set_key(io_set)
        if key not in self._cache:
            batch = self.encoder.encode_io_batch([io_set])
            self._cache[key] = self.model.predict_probability_map(batch)[0]
        return self._cache[key]

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        if not programs:
            return np.zeros(0)
        prob_map = self.probability_map(io_set)
        return np.array([fp_score(p, prob_map, self.registry) for p in programs])


class EditDistanceFitness(FitnessFunction):
    """Hand-crafted baseline: similarity of candidate outputs to target outputs.

    The fitness is ``Σ_j 1 / (1 + edit_distance(Pζ(I_j), O_j))`` so that a
    perfect candidate scores ``m`` and scores decrease smoothly with the
    output mismatch — the standard fitness the paper argues is misleading.
    """

    def __init__(self, interpreter: Optional[Interpreter] = None) -> None:
        self.interpreter = interpreter or Interpreter(trace=False)
        self.name = "edit"

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        scores = np.zeros(len(programs))
        for index, program in enumerate(programs):
            total = 0.0
            for example in io_set:
                output = self.interpreter.output_of(program, example.inputs)
                total += 1.0 / (1.0 + output_edit_distance(output, example.output))
            scores[index] = total
        return scores


class OracleFitness(FitnessFunction):
    """Ideal fitness that compares candidates directly against the target program.

    Impossible in practice (the target is unknown); used as the upper
    bound ``Oracle_{LCS|CF}`` in the paper's Tables 3 and 4.
    """

    def __init__(self, target: Program, kind: str = "lcs") -> None:
        if kind not in ("cf", "lcs"):
            raise ValueError("kind must be 'cf' or 'lcs'")
        self.target = target
        self.kind = kind
        self.name = f"oracle_{kind}"

    def score(self, programs: Sequence[Program], io_set: IOSet) -> np.ndarray:
        return np.array([ideal_fitness(self.kind, program, self.target) for program in programs])

    def probability_map(self, io_set: IOSet) -> np.ndarray:
        """The exact membership vector of the target (a perfect FP map)."""
        from repro.fitness.ideal import function_membership

        return function_membership(self.target, self.target.registry)
