"""Neural fitness models.

:class:`TraceFitnessModel` is the NN-FF of Figure 2: per IO example it
encodes the input, the output and the candidate's execution trace
(function embedding + encoded intermediate value per step), combines them
into a hidden vector ``H_i``, aggregates the per-example vectors and
predicts the ideal fitness value (CF or LCS) as a multiclass output.

:class:`FunctionProbabilityModel` is the FP model (and the DeepCoder-style
predictor): it looks only at the IO examples and predicts, for each of the
41 DSL functions, the probability that the function appears in the target
program.

Differences from the paper, both documented in DESIGN.md:

* per-example vectors are combined by averaging instead of a second LSTM
  (order over IO examples carries no information);
* a faster mean-pool encoder can replace the LSTM encoders via
  ``NNConfig.encoder = "pooled"``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.config import NNConfig
from repro.dsl.functions import FunctionRegistry, REGISTRY
from repro.nn.autograd import Tensor, concat, no_grad
from repro.nn.layers import Dense, Dropout, Embedding, active_length
from repro.nn.losses import (
    sigmoid_binary_cross_entropy,
    softmax_cross_entropy,
    softmax_probabilities,
)
from repro.nn.lstm import LSTM
from repro.nn.module import Module
from repro.nn.encoders import make_sequence_encoder
from repro.fitness.features import value_vocabulary_size


class _PooledStepEncoder(Module):
    """Masked mean over step feature vectors followed by a dense projection."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.projection = Dense(input_dim, hidden_dim, activation="tanh", rng=rng)

    def forward(self, features: Tensor, mask: np.ndarray) -> Tensor:
        mask = np.asarray(mask, dtype=np.float64)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        weights = mask / counts
        pooled = (features * Tensor(weights[:, :, None])).sum(axis=1)
        return self.projection(pooled)


class TraceFitnessModel(Module):
    """Multiclass NN-FF predicting the CF or LCS value of a candidate program.

    Parameters
    ----------
    n_classes:
        Number of fitness classes (``program_length + 1``: values 0..L).
    config:
        Architecture hyper-parameters.
    registry:
        DSL function registry (defines the function-embedding vocabulary).
    rng:
        Generator used for weight initialization.
    """

    def __init__(
        self,
        n_classes: int,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if n_classes < 2:
            raise ValueError("n_classes must be at least 2")
        self.config = config or NNConfig()
        self.config.validate()
        self.registry = registry
        self.n_classes = n_classes
        rng = rng or np.random.default_rng(0)

        emb = self.config.embedding_dim
        hidden = self.config.hidden_dim
        fc = self.config.fc_dim
        vocab = value_vocabulary_size()

        self.value_encoder = make_sequence_encoder(self.config.encoder, vocab, emb, hidden, rng=rng)
        self.function_embedding = Embedding(len(registry), emb, rng=rng)
        step_input = emb + hidden
        if self.config.encoder == "lstm":
            self.step_encoder = LSTM(step_input, hidden, rng=rng)
        else:
            self.step_encoder = _PooledStepEncoder(step_input, hidden, rng=rng)
        self.example_dense = Dense(3 * hidden, fc, activation="tanh", rng=rng)
        self.dropout = Dropout(self.config.dropout, rng=rng)
        self.hidden_head = Dense(fc, fc, activation="relu", rng=rng)
        self.output_head = Dense(fc, n_classes, rng=rng)

    # ------------------------------------------------------------------
    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """Logits ``(B, n_classes)`` for an encoded trace batch."""
        b, m, length = (int(x) for x in batch["shape"])
        hidden = self.config.hidden_dim

        # The encoder may pad the step dimension to a fixed, batch-independent
        # width; trailing steps masked for *every* sample are exact no-ops
        # (masked LSTM steps keep their state, masked mean weights are zero),
        # so they are sliced off before any encoding work is spent on them.
        step_mask = batch["step_mask"]
        step_value_tokens = batch["step_value_tokens"]
        step_value_mask = batch["step_value_mask"]
        step_functions = batch["step_functions"]
        effective = active_length(step_mask, length)
        if effective < length:
            step_mask = step_mask[:, :effective]
            step_functions = step_functions[:, :effective]
            width = step_value_tokens.shape[1]
            step_value_tokens = step_value_tokens.reshape(b * m, length, width)[
                :, :effective, :
            ].reshape(b * m * effective, width)
            step_value_mask = step_value_mask.reshape(b * m, length, width)[
                :, :effective, :
            ].reshape(b * m * effective, width)
            length = effective

        enc_input = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        enc_steps_flat = self.value_encoder(step_value_tokens, step_value_mask)
        enc_steps = enc_steps_flat.reshape(b * m, length, hidden)

        func_embedded = self.function_embedding(step_functions)  # (B*m, L, emb)
        step_features = concat([func_embedded, enc_steps], axis=-1)
        if isinstance(self.step_encoder, LSTM):
            trace_vec = self.step_encoder(step_features, mask=step_mask)
        else:
            trace_vec = self.step_encoder(step_features, step_mask)

        example_vec = self.example_dense(concat([enc_input, enc_output, trace_vec], axis=-1))
        example_vec = self.dropout(example_vec)
        combined = example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)
        return self.output_head(self.hidden_head(combined))

    # ------------------------------------------------------------------
    def compute_loss(self, batch: Dict[str, np.ndarray]) -> Tuple[Tensor, Dict[str, float]]:
        """Cross-entropy loss plus accuracy metrics for the trainer."""
        if "labels" not in batch:
            raise ValueError("batch has no labels")
        logits = self.forward(batch)
        labels = batch["labels"]
        loss = softmax_cross_entropy(logits, labels)
        predictions = logits.data.argmax(axis=1)
        accuracy = float((predictions == labels).mean())
        # "close" accuracy: prediction within one class of the label, the
        # notion of usable accuracy discussed around Figure 7
        close = float((np.abs(predictions - labels) <= 1).mean())
        return loss, {"accuracy": accuracy, "close_accuracy": close}

    # ------------------------------------------------------------------
    def predict_probabilities(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Class probabilities ``(B, n_classes)`` without building a graph."""
        with no_grad():
            logits = self.forward(batch)
        return softmax_probabilities(logits)

    def predict_fitness(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Expected fitness value per sample (soft-argmax over classes)."""
        probabilities = self.predict_probabilities(batch)
        classes = np.arange(self.n_classes, dtype=np.float64)
        return probabilities @ classes

    def predict_classes(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Hard class predictions per sample."""
        return self.predict_probabilities(batch).argmax(axis=1)


class FunctionProbabilityModel(Module):
    """Multi-label model predicting function membership from IO examples only."""

    def __init__(
        self,
        config: Optional[NNConfig] = None,
        registry: FunctionRegistry = REGISTRY,
        rng: Optional[np.random.Generator] = None,
        pos_weight: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.config = config or NNConfig()
        self.config.validate()
        self.registry = registry
        rng = rng or np.random.default_rng(0)
        # Positive-class weight for the BCE loss: a length-L program covers
        # only a handful of the 41 functions, so positives are up-weighted
        # by roughly the inverse class ratio unless a value is supplied.
        self.pos_weight = float(pos_weight) if pos_weight is not None else None

        emb = self.config.embedding_dim
        hidden = self.config.hidden_dim
        fc = self.config.fc_dim
        vocab = value_vocabulary_size()

        self.value_encoder = make_sequence_encoder(self.config.encoder, vocab, emb, hidden, rng=rng)
        self.example_dense = Dense(2 * hidden, fc, activation="tanh", rng=rng)
        self.dropout = Dropout(self.config.dropout, rng=rng)
        self.hidden_head = Dense(fc, fc, activation="relu", rng=rng)
        self.output_head = Dense(fc, len(registry), rng=rng)

    # ------------------------------------------------------------------
    def forward(self, batch: Dict[str, np.ndarray]) -> Tensor:
        """Logits ``(B, |ΣDSL|)`` for an encoded IO batch."""
        b, m = (int(x) for x in batch["shape"][:2])
        enc_input = self.value_encoder(batch["input_tokens"], batch["input_mask"])
        enc_output = self.value_encoder(batch["output_tokens"], batch["output_mask"])
        example_vec = self.example_dense(concat([enc_input, enc_output], axis=-1))
        example_vec = self.dropout(example_vec)
        combined = example_vec.reshape(b, m, self.config.fc_dim).mean(axis=1)
        return self.output_head(self.hidden_head(combined))

    # ------------------------------------------------------------------
    def compute_loss(self, batch: Dict[str, np.ndarray]) -> Tuple[Tensor, Dict[str, float]]:
        """Binary cross-entropy plus the paper's positive-accuracy metric."""
        if "fp_targets" not in batch:
            raise ValueError("batch has no fp_targets")
        logits = self.forward(batch)
        targets = batch["fp_targets"]
        if self.pos_weight is not None:
            pos_weight = self.pos_weight
        else:
            positive_fraction = max(float((targets >= 0.5).mean()), 1e-3)
            pos_weight = (1.0 - positive_fraction) / positive_fraction
        loss = sigmoid_binary_cross_entropy(logits, targets, pos_weight=pos_weight)
        probabilities = 1.0 / (1.0 + np.exp(-logits.data))
        predictions = probabilities >= 0.5
        accuracy = float((predictions == (targets >= 0.5)).mean())
        positives = targets >= 0.5
        positive_accuracy = (
            float(predictions[positives].mean()) if positives.any() else 0.0
        )
        return loss, {"accuracy": accuracy, "positive_accuracy": positive_accuracy}

    # ------------------------------------------------------------------
    def predict_probability_map(self, batch: Dict[str, np.ndarray]) -> np.ndarray:
        """Per-function membership probabilities ``(B, |ΣDSL|)``."""
        with no_grad():
            logits = self.forward(batch)
        return 1.0 / (1.0 + np.exp(-logits.data))
