"""Figure 4(d)-(f): distribution of per-program synthesis rates.

The paper shows violin plots of the fraction of K runs that synthesize
each program; this benchmark prints the underlying distribution summary
(min / median / mean / max and the sorted rates) for every method.
"""

import numpy as np

from repro.evaluation.figures import fig4_synthesis_rate_series


def test_fig4_synthesis_rate_distribution(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods
    length = bench_report.lengths[0]

    series = benchmark(lambda: fig4_synthesis_rate_series(records, methods, length))

    print(f"\nFigure 4(d-f) data — per-program synthesis rate distribution (length {length})")
    for method, rates in sorted(series.items()):
        if rates.size == 0:
            print(f"  {method:12s}: no data")
            continue
        print(
            f"  {method:12s}: min={rates.min():.2f} median={np.median(rates):.2f} "
            f"mean={rates.mean():.2f} max={rates.max():.2f}  rates={list(np.round(rates, 2))}"
        )
    assert all(np.all((r >= 0) & (r <= 1)) for r in series.values())
