"""NN-FF scoring throughput: cold vs warm, and shared-memory worker RSS.

The GA re-scores its whole population every generation, but with
batch-shape-invariant scoring (fixed padding widths, never-singleton GEMM
batches) the predicted fitness of a gene is one well-defined number and
can be memoized per ``(program, io_set)``.  This benchmark measures what
that buys:

* **cold** — an empty :class:`~repro.execution.ScoreCache`: every gene is
  traced, encoded and forwarded;
* **warm** — a GA-shaped re-scoring of the same population (elites and
  survivors dominate): mostly cache lookups;
* **serving** — per-worker memory for parallel sessions, pickled model
  copies vs the mmap-packed shared segment
  (:meth:`~repro.core.artifacts.ArtifactStore.pack_shared`).

Results are appended to ``BENCH_nn_scoring.json`` at the repository root
so the trajectory across PRs is preserved.

Scale knobs: ``NETSYN_BENCH_POPULATION`` (genes, default 120),
``NETSYN_BENCH_GENERATIONS`` (warm re-scoring rounds, default 5),
``NETSYN_BENCH_SURVIVORS`` (fraction of the population kept per round,
default 0.7), ``NETSYN_BENCH_WORKERS`` (serving comparison, default 2;
0 skips it), ``NETSYN_BENCH_JOBS`` (jobs for the serving run, default 4).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.config import NetSynConfig, ServiceConfig
from repro.core.artifacts import ArtifactStore
from repro.core.service import SynthesisSession
from repro.data import make_benchmark_suite, make_synthesis_task
from repro.execution import ScoreCache
from repro.fitness.functions import LearnedTraceFitness
from repro.baselines.registry import ensure_artifacts
from repro.ga.operators import GeneOperators

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_nn_scoring.json"

POPULATION = int(os.environ.get("NETSYN_BENCH_POPULATION", "120"))
GENERATIONS = int(os.environ.get("NETSYN_BENCH_GENERATIONS", "5"))
SURVIVORS = float(os.environ.get("NETSYN_BENCH_SURVIVORS", "0.7"))
WORKERS = int(os.environ.get("NETSYN_BENCH_WORKERS", "2"))
JOBS = int(os.environ.get("NETSYN_BENCH_JOBS", "4"))


def _rss_bytes() -> int:
    """Resident set size of this process (bytes; 0 when unreadable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return 0


def _store_and_task():
    config = NetSynConfig.small("cf")
    store = ArtifactStore()
    ensure_artifacts(store, config, methods=("netsyn_cf",))
    task = make_synthesis_task(length=config.program_length, seed=3, dsl_config=config.dsl)
    return config, store, task


def _populations(config, rng_seed=23):
    """GA-shaped scoring rounds: each round keeps a survivor fraction."""
    operators = GeneOperators(program_length=config.program_length, rng=np.random.default_rng(rng_seed))
    population = [operators.random_gene() for _ in range(POPULATION)]
    rounds = [list(population)]
    rng = np.random.default_rng(rng_seed + 1)
    for _ in range(GENERATIONS - 1):
        keep = int(POPULATION * SURVIVORS)
        survivors = [population[i] for i in rng.permutation(POPULATION)[:keep]]
        fresh = [operators.random_gene() for _ in range(POPULATION - keep)]
        population = survivors + fresh
        rounds.append(list(population))
    return rounds


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def _serving_memory(config, store, record: dict) -> None:
    """Per-worker RSS: pickled model copies vs the shared mmap segment."""
    if WORKERS <= 0:
        return
    suite = make_benchmark_suite(
        length=config.program_length, n_programs=JOBS, seed=9, dsl_config=config.dsl
    )

    def run(shared: bool):
        session = SynthesisSession(
            config,
            store,
            methods=("netsyn_cf",),
            service_config=ServiceConfig(shared_weights=shared),
        )
        jobs = [session.submit(task, budget=300, seed=1) for task in suite]
        start = time.perf_counter()
        session.run(jobs, n_workers=WORKERS)
        elapsed = time.perf_counter() - start
        states = [job.state.value for job in jobs]
        return elapsed, states

    import resource

    before = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    pickled_time, pickled_states = run(shared=False)
    pickled_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    shared_time, shared_states = run(shared=True)
    shared_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    assert pickled_states == shared_states, "shared-memory serving changed results"
    record["serving"] = {
        "n_workers": WORKERS,
        "n_jobs": len(suite),
        "pickled_seconds": pickled_time,
        "shared_seconds": shared_time,
        # ru_maxrss is cumulative-max over children (KiB on Linux): the
        # first delta includes the private model copies, the second only
        # whatever the shared-segment run added on top of that high-water
        # mark (0 when sharing fits under the pickled footprint).
        "pickled_worker_peak_kib": pickled_rss - before,
        "shared_worker_extra_kib": max(0, shared_rss - pickled_rss),
    }


def test_nn_scoring_throughput_and_serving():
    config, store, task = _store_and_task()
    artifacts = store.get("cf")
    rounds = _populations(config)
    total_scored = sum(len(r) for r in rounds)

    def build(memoize: bool) -> LearnedTraceFitness:
        return LearnedTraceFitness(
            artifacts.model,
            kind="cf",
            encoder=artifacts.encoder,
            memoize=memoize,
            score_cache=ScoreCache(capacity=100_000) if memoize else None,
            program_length=config.program_length,
        )

    # -- reference: the historical path, every gene forwarded every round
    legacy = build(memoize=False)
    start = time.perf_counter()
    legacy_scores = [legacy.score(population, task.io_set) for population in rounds]
    legacy_elapsed = time.perf_counter() - start

    # -- cold: first scoring of a fresh population (empty score cache) --
    memoized = build(memoize=True)
    start = time.perf_counter()
    memo_scores = [memoized.score(rounds[0], task.io_set)]
    cold_elapsed = time.perf_counter() - start

    # -- warm: re-scoring the already-scored population (the elites /
    # survivors case memoization exists for: pure cache lookups) --------
    start = time.perf_counter()
    warm_scores = memoized.score(rounds[0], task.io_set)
    warm_elapsed = time.perf_counter() - start
    np.testing.assert_array_equal(warm_scores, memo_scores[0])

    # -- GA-shaped: later rounds keep a survivor fraction ---------------
    start = time.perf_counter()
    memo_scores += [memoized.score(population, task.io_set) for population in rounds[1:]]
    ga_elapsed = time.perf_counter() - start

    for want, got in zip(legacy_scores, memo_scores):
        np.testing.assert_array_equal(want, got)

    cold_rate = len(rounds[0]) / cold_elapsed
    warm_rate = len(rounds[0]) / warm_elapsed
    ga_scored = sum(len(r) for r in rounds[1:])
    stats = memoized.score_cache.stats

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "population": POPULATION,
        "generations": GENERATIONS,
        "survivor_fraction": SURVIVORS,
        "total_scored": total_scored,
        "cold_scores_per_second": cold_rate,
        "warm_scores_per_second": warm_rate,
        "warm_speedup": warm_rate / cold_rate,
        "ga_shaped_scores_per_second": ga_scored / ga_elapsed if ga_elapsed else None,
        "legacy_scores_per_second": total_scored / legacy_elapsed,
        "end_to_end_speedup_vs_legacy": legacy_elapsed / (cold_elapsed + warm_elapsed + ga_elapsed),
        "score_cache_hit_rate": stats.hit_rate,
        "rss_bytes": _rss_bytes(),
    }
    speedup = record["warm_speedup"]
    _serving_memory(config, store, record)
    _append_trajectory(record)
    print(json.dumps(record, indent=2))

    # Regression gate: re-scoring a population whose majority survived
    # must be at least 2x the score-everything path.
    assert speedup >= 2.0, f"warm scoring speedup {speedup:.2f}x below the 2x gate"
    assert stats.hit_rate > 0.0


if __name__ == "__main__":
    test_nn_scoring_throughput_and_serving()
