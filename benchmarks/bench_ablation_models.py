"""Section 5.3.1 ablation: alternative fitness-model designs.

Trains the classification NN-FF (the paper's choice), the regression-head
variant, the two-tier variant and the pairwise-ranking variant on the same
corpus and compares their validation behaviour; the paper reports that the
alternatives underperform the plain multiclass classifier.
"""

import numpy as np

from repro.config import NNConfig
from repro.data.corpus import CorpusBuilder
from repro.fitness.ablations import (
    PairwiseRankingDataset,
    PairwiseRankingModel,
    RegressionFitnessModel,
    TwoTierFitnessModel,
)
from repro.fitness.datasets import TraceFitnessDataset
from repro.fitness.models import TraceFitnessModel
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer


def _train(model, dataset, epochs, batch_size, seed=0):
    trainer = Trainer(model, Adam(model.parameters(), learning_rate=1e-2), rng=np.random.default_rng(seed))
    history = trainer.fit(dataset, epochs=epochs, batch_size=batch_size)
    return history


def test_fitness_model_ablation(benchmark, bench_config):
    training, dsl = bench_config.training, bench_config.dsl
    nn = NNConfig(embedding_dim=8, hidden_dim=16, fc_dim=16, encoder="pooled")
    builder = CorpusBuilder(training=training, dsl=dsl)
    samples = builder.build_trace_samples(kind="cf", count=min(400, training.corpus_size))
    dataset = TraceFitnessDataset(samples)
    n_classes = training.program_length + 1

    def run_ablation():
        results = {}
        classifier = TraceFitnessModel(n_classes=n_classes, config=nn, rng=np.random.default_rng(0))
        results["classifier"] = _train(classifier, dataset, training.epochs, training.batch_size).last()
        regression = RegressionFitnessModel(max_fitness=n_classes - 1, config=nn, rng=np.random.default_rng(0))
        results["regression"] = _train(regression, dataset, training.epochs, training.batch_size).last()
        two_tier = TwoTierFitnessModel(n_classes=n_classes, config=nn, rng=np.random.default_rng(0))
        results["two_tier"] = _train(two_tier, dataset, training.epochs, training.batch_size).last()
        pairs = PairwiseRankingDataset(samples, np.random.default_rng(0), n_pairs=len(samples))
        ranking = PairwiseRankingModel(n_classes=n_classes, config=nn, rng=np.random.default_rng(0))
        results["pairwise_ranking"] = _train(ranking, pairs, training.epochs, training.batch_size).last()
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print("\nSection 5.3.1 ablation — training metrics of each fitness-model design:")
    for name, metrics in results.items():
        rendered = ", ".join(f"{k}={v:.3f}" for k, v in sorted(metrics.items()))
        print(f"  {name:18s}: {rendered}")
    print("Expected shape (paper): the plain multiclass classifier is the "
          "strongest choice; regression regresses to the median, the two-tier "
          "model loses good genes to first-tier mistakes, and the ranking "
          "model is no more accurate than absolute fitness prediction.")
    assert set(results) == {"classifier", "regression", "two_tier", "pairwise_ranking"}
