"""Table 3: synthesis time required to synthesize each percentile of programs."""

from repro.evaluation.tables import format_percentile_table


def test_table3_synthesis_time(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods
    lengths = bench_report.lengths

    table = benchmark(
        lambda: format_percentile_table(records, methods, lengths, metric="time")
    )
    print("\nTable 3 (synthesis time to reach each percentile of programs):")
    print(table)
    # every method appears and unreached percentiles are rendered as dashes
    assert all(method in table for method in methods)
