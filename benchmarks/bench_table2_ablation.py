"""Table 2: contribution of neighborhood search and FP-guided mutation.

Runs GA + learned CF fitness in the paper's five configurations over a
shared suite and prints the reproduced table.  The benchmark times one
full ablation sweep.
"""

from repro.evaluation.runner import ABLATION_VARIANTS, AblationRunner
from repro.evaluation.tables import format_ablation_table


def test_table2_ablation(benchmark, bench_config):
    runner = AblationRunner(
        base_config=bench_config,
        length=4,
        n_tasks=3,
        n_runs=1,
        max_search_space=4_000,
        seed=11,
    )

    rows = benchmark.pedantic(lambda: runner.run(ABLATION_VARIANTS), rounds=1, iterations=1)

    print("\nTable 2 (GA + fCF ablation):")
    print(format_ablation_table(rows))
    print("Expected shape (paper): NS and MutationFP each help; "
          "GA+fCF+NS_BFS+MutationFP synthesizes the most programs in the "
          "fewest generations.")
    assert len(rows) == len(ABLATION_VARIANTS)
    assert rows[0].approach == "GA+fCF"
