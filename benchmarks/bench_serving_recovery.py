"""What durability costs: journal overhead, recovery and resume latency.

The serving tier's durability guarantees (``docs/serving.md``,
``docs/robustness.md``) are bought with a write-ahead job journal and a
self-healing client.  This benchmark prices all three purchases:

* **journal append overhead** — the same concurrent-client workload is
  driven against a plain server and a journaled one in interleaved
  rounds; the jobs/s ratio is the steady-state price of crash safety.
  The contract is <10% — gated on quiet machines, recorded always (the
  journal adds two flushed appends per job to a workload that runs a
  whole synthesis search per job, so it should be far below that).
* **recovery latency vs journal size** — servers are constructed on
  authored journals holding N settled jobs plus a few journaled
  cancellations; construction time (which includes the replay and the
  re-admissions) is exactly what a restart adds before the socket
  listens.
* **reconnect-resume latency** — a real ``python -m repro.serving``
  process is SIGKILLed mid-job and restarted on its journal; the
  client-observed stream outage (kill to first resumed event, which
  covers detection, seeded-backoff reconnect, server restart and the
  ``since=`` catch-up) is what a deploy restart costs a live client.

Results are appended to ``BENCH_serving_recovery.json`` at the
repository root so the trajectory across PRs is preserved.

Scale knobs: ``NETSYN_BENCH_RECOVERY_BUDGET`` (candidate budget per job,
default 2000), ``NETSYN_BENCH_RECOVERY_CLIENTS`` (concurrent clients in
the overhead rounds, default 4), ``NETSYN_BENCH_RECOVERY_ROUNDS``
(interleaved overhead sample pairs, default 3),
``NETSYN_BENCH_RECOVERY_COUNTS`` (journaled-job counts for the recovery
sweep, default ``16,128,1024``), ``NETSYN_BENCH_RECOVERY_RESUMES``
(kill/restart rounds, default 2).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.config import NetSynConfig, ServiceConfig, ServingConfig
from repro.core import ArtifactStore, JobState, SynthesisSession
from repro.data.tasks import SynthesisTask, make_synthesis_task
from repro.dsl.equivalence import IOExample
from repro.serving import JobJournal, RemoteSynthesisSession, SynthesisServer
from repro.serving import protocol

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_serving_recovery.json"

BUDGET = int(os.environ.get("NETSYN_BENCH_RECOVERY_BUDGET", "2000"))
CLIENTS = int(os.environ.get("NETSYN_BENCH_RECOVERY_CLIENTS", "4"))
ROUNDS = int(os.environ.get("NETSYN_BENCH_RECOVERY_ROUNDS", "3"))
COUNTS = tuple(
    int(n) for n in os.environ.get("NETSYN_BENCH_RECOVERY_COUNTS", "16,128,1024").split(",")
)
RESUMES = int(os.environ.get("NETSYN_BENCH_RECOVERY_RESUMES", "2"))


def _edit_session() -> SynthesisSession:
    config = NetSynConfig.small("edit", seed=11).replace(fp_guided_mutation=False)
    return SynthesisSession(
        config,
        ArtifactStore(),
        methods=("edit",),
        service_config=ServiceConfig(persist_caches=False),
    )


def _impossible_task() -> SynthesisTask:
    """Contradictory examples: runs its whole budget, so the kill in the
    resume rounds provably lands while the job is mid-run."""
    target = make_synthesis_task(length=3, seed=1).target
    return SynthesisTask(
        target=target,
        io_set=[
            IOExample(inputs=([1, 2, 3],), output=[1]),
            IOExample(inputs=([1, 2, 3],), output=[2]),
        ],
        length=3,
        is_singleton=False,
        task_id="impossible",
    )


# ---------------------------------------------------------------------------
# journal append overhead
# ---------------------------------------------------------------------------


def _drive_round(server: SynthesisServer) -> float:
    """CLIENTS concurrent clients, one job each; returns the elapsed wall."""
    errors: list = []

    def drive(index: int) -> None:
        try:
            with RemoteSynthesisSession(server.address) as client:
                job = client.submit(
                    make_synthesis_task(length=3, seed=50 + index),
                    budget=BUDGET,
                    seed=index,
                )
                client.run([job])
                assert job.state in (JobState.SOLVED, JobState.EXHAUSTED)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=drive, args=(i,)) for i in range(CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"client failed: {errors[0]!r}"
    return elapsed


def _journal_overhead() -> dict:
    """Interleaved plain/journaled rounds over per-variant warm sessions."""
    plain_session = _edit_session()
    journal_session = _edit_session()
    plain_times, journal_times = [], []
    appends = size = 0
    with tempfile.TemporaryDirectory() as journal_root:
        for sample in range(ROUNDS):
            with SynthesisServer(
                plain_session, ServingConfig(batch_window=0.05)
            ) as server:
                plain_times.append(_drive_round(server))
            journal_dir = Path(journal_root) / f"round-{sample}"
            with SynthesisServer(
                journal_session, ServingConfig(batch_window=0.05, journal_dir=journal_dir)
            ) as server:
                journal_times.append(_drive_round(server))
                appends = server._journal.appends
                size = server._journal.size()
    overhead = min(journal_times) / min(plain_times) - 1.0
    return {
        "clients": CLIENTS,
        "budget": BUDGET,
        "rounds": ROUNDS,
        "plain_seconds_best": min(plain_times),
        "journaled_seconds_best": min(journal_times),
        "plain_jobs_per_second": CLIENTS / min(plain_times),
        "journaled_jobs_per_second": CLIENTS / min(journal_times),
        "journal_overhead_fraction": overhead,
        "journal_appends_per_round": appends,
        "journal_bytes_per_round": size,
    }


# ---------------------------------------------------------------------------
# recovery latency vs journaled-job count
# ---------------------------------------------------------------------------


def _settled_template() -> tuple:
    """One real settled (admit payload, job wire form) pair to replicate."""
    with tempfile.TemporaryDirectory() as journal_dir:
        with SynthesisServer(
            _edit_session(), ServingConfig(batch_window=0.01, journal_dir=journal_dir)
        ) as server:
            with RemoteSynthesisSession(server.address) as client:
                client.run([client.submit(
                    make_synthesis_task(length=3, seed=5), budget=BUDGET, seed=1
                )])
            state = server._journal.replay()
    (job_id, job_wire), = state.settled.items()
    return job_id, job_wire


def _recovery_latency() -> list:
    """Construction time of a server on journals of growing size.

    Settled records are replicas of one real journaled outcome (distinct
    ids and idempotency keys); four journaled-cancelled admissions ride
    along so the re-admission path is exercised without re-running."""
    _, job_wire = _settled_template()
    task_wire = protocol.task_to_wire(make_synthesis_task(length=3, seed=5))
    sweep = []
    for count in COUNTS:
        with tempfile.TemporaryDirectory() as journal_root:
            with JobJournal(journal_root) as journal:
                for index in range(count):
                    wire = dict(job_wire, job_id=f"job-{index}")
                    journal.admit(
                        f"job-{index}", task_wire, "edit", BUDGET, 1,
                        idempotency_key=f"bench-{index}",
                    )
                    journal.settle(f"job-{index}", wire, f"bench-{index}")
                for index in range(count, count + 4):
                    journal.admit(f"job-{index}", task_wire, "edit", BUDGET, 1)
                    journal.cancel(f"job-{index}")
                journal_bytes = journal.size()
            start = time.perf_counter()
            server = SynthesisServer(
                _edit_session(),
                ServingConfig(journal_dir=journal_root),
            )
            elapsed = time.perf_counter() - start
            try:
                assert len(server._settled_wire) == count + 4, "recovery lost jobs"
                assert server.recovery_events, "no server_recovered event"
            finally:
                server.stop()
        sweep.append(
            {
                "journaled_jobs": count,
                "journal_bytes": journal_bytes,
                "recovery_seconds": elapsed,
            }
        )
    return sweep


# ---------------------------------------------------------------------------
# reconnect-resume latency (kill -9, restart, client-observed outage)
# ---------------------------------------------------------------------------


def _spawn_server(port: int, journal_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serving",
            "--port", str(port), "--journal-dir", journal_dir,
            "--batch-window", "0.05",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line.startswith("SERVING"):
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return proc


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _resume_round() -> dict:
    port = _free_port()
    with tempfile.TemporaryDirectory() as journal_dir:
        proc = _spawn_server(port, journal_dir)
        procs = [proc]
        stamps: dict = {}

        def kill_then_restart(event) -> None:
            if event.generation >= 2 and "killed" not in stamps:
                stamps["killed"] = time.perf_counter()
                proc.kill()
                proc.wait(timeout=30)
                procs.append(_spawn_server(port, journal_dir))
                stamps["restarted"] = time.perf_counter()
            elif event.kind == "server_recovered":
                stamps["resumed"] = time.perf_counter()

        client = RemoteSynthesisSession(
            f"127.0.0.1:{port}",
            reconnect_attempts=20, backoff_base=0.2, backoff_cap=1.0,
        )
        try:
            job = client.submit(_impossible_task(), budget=20_000, seed=1)
            client.add_listener(kill_then_restart)
            client.run([job])
            assert job.done and "resumed" in stamps, "the stream never resumed"
            assert client.reconnects >= 1
        finally:
            client.close()
            for p in procs:
                if p.poll() is None:
                    p.kill()
                    p.wait(timeout=30)
    return {
        "server_restart_seconds": stamps["restarted"] - stamps["killed"],
        "stream_outage_seconds": stamps["resumed"] - stamps["killed"],
    }


# ---------------------------------------------------------------------------


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_serving_recovery_costs():
    overhead = _journal_overhead()
    recovery = _recovery_latency()
    resumes = [_resume_round() for _ in range(RESUMES)]

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "journal_overhead": overhead,
        "recovery_latency": recovery,
        "reconnect_resume": {
            "rounds": RESUMES,
            "server_restart_seconds_best": min(r["server_restart_seconds"] for r in resumes),
            "stream_outage_seconds_best": min(r["stream_outage_seconds"] for r in resumes),
        },
    }
    _append_trajectory(record)
    print(json.dumps(record, indent=2))

    # Gate only on quiet machines: shared CI runners are too noisy to
    # fail on wall-clock ratios, so the threshold is generous there and
    # the 10% contract is checked locally / recorded always.
    gate = 0.10 if os.environ.get("CI") is None else 0.50
    assert overhead["journal_overhead_fraction"] < gate, (
        f"journal overhead {overhead['journal_overhead_fraction']:.1%} exceeds "
        f"the {gate:.0%} gate (plain {overhead['plain_seconds_best']:.2f}s vs "
        f"journaled {overhead['journaled_seconds_best']:.2f}s)"
    )
    # recovery is an index-and-readmit pass: even the largest journal in
    # the sweep must recover in single-digit seconds
    assert all(point["recovery_seconds"] < 10.0 for point in recovery)


if __name__ == "__main__":
    test_serving_recovery_costs()
