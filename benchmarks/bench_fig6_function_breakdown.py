"""Figure 6: synthesis rate across the 41 DSL functions.

The paper shows that tasks containing singleton-producing functions
(ids 1-11) tend to have lower synthesis rates.  This benchmark prints the
per-function synthesis rate for the NetSyn variants in the shared report
and compares the singleton-producing group against the rest.
"""

import numpy as np

from repro.dsl import REGISTRY
from repro.evaluation.figures import fig6_function_breakdown


def test_fig6_per_function_synthesis_rate(benchmark, bench_report):
    records = bench_report.records
    methods = [m for m in bench_report.methods if m.startswith("netsyn")] or bench_report.methods

    rates = benchmark(lambda: fig6_function_breakdown(records, methods))

    singleton_ids = set(REGISTRY.singleton_producing_ids())
    print("\nFigure 6 data — synthesis rate of tasks containing each DSL function")
    for method, values in sorted(rates.items()):
        used = [(fid, values[fid - 1]) for fid in REGISTRY.ids if not np.isnan(values[fid - 1])]
        print(f"  {method}:")
        for fid, value in used:
            marker = "(singleton-producing)" if fid in singleton_ids else ""
            print(f"    f{fid:02d} {REGISTRY.by_id(fid).name:14s} {value * 100:5.1f}% {marker}")
        singleton_rates = [v for fid, v in used if fid in singleton_ids]
        list_rates = [v for fid, v in used if fid not in singleton_ids]
        if singleton_rates and list_rates:
            print(
                f"    mean over singleton-producing functions: {np.mean(singleton_rates) * 100:.1f}% ; "
                f"over the rest: {np.mean(list_rates) * 100:.1f}%"
            )
    assert all(values.shape == (41,) for values in rates.values())
