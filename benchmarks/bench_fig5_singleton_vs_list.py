"""Figure 5: synthesis ability split by output type (singleton vs list programs).

The paper observes that programs producing a single integer are harder to
synthesize than programs producing a list, across all three NetSyn fitness
variants.  This benchmark prints the per-type synthesis rates for every
method in the shared comparison report.
"""

import numpy as np

from repro.evaluation.figures import fig5_singleton_vs_list


def test_fig5_singleton_vs_list(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods

    breakdown = benchmark(lambda: fig5_singleton_vs_list(records, methods))

    print("\nFigure 5 data — mean synthesis rate by target output type")
    print(f"  {'method':12s}  {'singleton':>10s}  {'list':>10s}")
    for method in sorted(breakdown):
        summary = breakdown[method]["summary"]

        def fmt(value):
            return "  n/a  " if np.isnan(value) else f"{value * 100:5.1f}%"

        print(f"  {method:12s}  {fmt(summary['singleton']):>10s}  {fmt(summary['list']):>10s}")
    print("Expected shape (paper): singleton programs have a lower synthesis "
          "rate than list programs for every NetSyn variant.")
    assert set(breakdown) == set(methods)
