"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because
the underlying synthesis comparison is shared between Figure 4, Figure 5,
Figure 6, Table 3 and Table 4, the expensive part — running every method
over the benchmark suite — is executed once per pytest session and reused.

Scale knobs (all default to a laptop-friendly quick run):

``NETSYN_SCALE``         multiplies task counts, run counts and budgets.
``NETSYN_BENCH_LENGTH``  program length of the benchmark suite (default 4;
                         the paper uses 5, 7 and 10).
``NETSYN_BENCH_WORKERS`` fan the comparison grid out over N worker
                         processes (default 1 = serial; results are
                         byte-identical either way, so this only changes
                         wall time on runners with cores to spare).
"""

from __future__ import annotations

import os

import pytest

from repro.config import ExperimentConfig, NetSynConfig
from repro.evaluation.runner import EvaluationRunner


BENCH_METHODS = (
    "netsyn_cf",
    "netsyn_fp",
    "deepcoder",
    "pccoder",
    "robustfill",
    "pushgp",
    "edit",
    "oracle",
)


def bench_length() -> int:
    return int(os.environ.get("NETSYN_BENCH_LENGTH", "4"))


def bench_workers() -> int:
    return int(os.environ.get("NETSYN_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def bench_config() -> NetSynConfig:
    """Base NetSyn configuration used by every benchmark."""
    config = NetSynConfig.small(fitness_kind="cf", seed=11)
    config.training.corpus_size = 1600
    config.training.epochs = 12
    config.ga.max_generations = 2000
    return config


@pytest.fixture(scope="session")
def bench_experiment() -> ExperimentConfig:
    return ExperimentConfig(
        lengths=(bench_length(),),
        n_test_programs=6,
        n_runs=1,
        max_search_space=12_000,
        methods=BENCH_METHODS,
        seed=11,
    )


@pytest.fixture(scope="session")
def bench_runner(bench_experiment, bench_config) -> EvaluationRunner:
    return EvaluationRunner(bench_experiment, bench_config, n_workers=bench_workers())


@pytest.fixture(scope="session")
def bench_report(bench_runner):
    """The shared method-comparison report (runs every method once)."""
    return bench_runner.run()
