"""Figure 4(a)-(c): search space used vs. percentage of programs synthesized.

Regenerates the paper's headline comparison: for each method, the fraction
of the candidate budget needed to synthesize each percentile of the test
programs.  The printed series corresponds to one panel of Figure 4 (one
program length); run with ``NETSYN_BENCH_LENGTH=5/7/10`` and
``NETSYN_SCALE`` to widen the experiment towards paper scale.
"""

from repro.evaluation.figures import fig4_search_space_series


def test_fig4_search_space(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods
    length = bench_report.lengths[0]

    series = benchmark(lambda: fig4_search_space_series(records, methods, length))

    print(f"\nFigure 4(a-c) data — program length {length}")
    print("(x = % of test programs synthesized, y = % of the candidate budget used)")
    for method, (x, y) in sorted(series.items()):
        if len(x) == 0:
            print(f"  {method:12s}: no programs synthesized within the budget")
            continue
        points = ", ".join(f"({px:.0f}%, {py * 100:.1f}%)" for px, py in zip(x, y))
        print(f"  {method:12s}: {points}")

    # Expected shape (paper): NetSyn variants synthesize more programs with a
    # smaller search-space fraction than DeepCoder/PCCoder/RobustFill, PushGP
    # and the edit-distance GA trail, and the oracle dominates everything.
    assert set(series) == set(methods)
