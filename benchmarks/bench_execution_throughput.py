"""Execution-engine throughput: interpreted vs compiled vs compiled+cached.

Phase 2 spends essentially all of its time executing candidate programs,
so candidates/second through the execution layer bounds end-to-end search
throughput.  This benchmark replays a GA-shaped workload — a pool of
distinct genes evaluated repeatedly across generations (solution check +
fitness scoring re-executions) — through the three execution strategies:

* **interpreted** — the seed implementation: reference interpreter with a
  backwards type-scan per argument, no reuse;
* **compiled**    — compile-once static argument binding
  (:mod:`repro.dsl.compiler`), no reuse;
* **compiled+cached** — the :class:`~repro.execution.ExecutionEngine`
  used by the GA engine and fitness functions, which memoizes executions
  per (program, io_set).

Results (candidates/sec, speedups, cache hit-rate) are appended to
``BENCH_execution_throughput.json`` at the repository root so the
trajectory across PRs is preserved.

A second workload measures the **vectorized** columnar engine
(:class:`~repro.execution.BatchExecutionEngine`) against the compiled
per-candidate baseline on the population shape it was built for:
many concurrent GA islands whose genes share crossover prefixes.  The
vectorized engine is timed *cold* — a fresh engine with caching disabled
every round, so every candidate is a cache miss — and must still beat
the warm compiled path.

A third workload measures the **generation-persistent trie**: one
engine kept alive across an island run's successive generations (the
incremental-trie path) against a cold columnar rebuild per generation.
A fourth measures **cross-job fusion**: two same-inputs populations
dispatched through one shared columnar plane versus two private
evaluators (:mod:`repro.execution.fusion`).

Scale knobs: ``NETSYN_BENCH_PROGRAMS`` (distinct genes, default 60),
``NETSYN_BENCH_ROUNDS`` (re-evaluations per gene, default 5),
``NETSYN_BENCH_ISLANDS`` x ``NETSYN_BENCH_ISLAND_SIZE`` (vectorized
workload, default 10 x 100).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import numpy as np

import threading

from repro.dsl import Interpreter, Program, clear_compile_cache
from repro.data import make_synthesis_task
from repro.execution import (
    BatchExecutionEngine,
    ColumnarEvaluator,
    EvaluationCache,
    ExecutionEngine,
    FusionPlane,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_execution_throughput.json"

N_PROGRAMS = int(os.environ.get("NETSYN_BENCH_PROGRAMS", "60"))
N_ROUNDS = int(os.environ.get("NETSYN_BENCH_ROUNDS", "5"))
N_ISLANDS = int(os.environ.get("NETSYN_BENCH_ISLANDS", "10"))
ISLAND_SIZE = int(os.environ.get("NETSYN_BENCH_ISLAND_SIZE", "100"))
PROGRAM_LENGTH = 5


def _workload(seed: int = 17):
    """A GA-shaped workload: distinct genes + an IO specification."""
    rng = np.random.default_rng(seed)
    programs = [
        Program([int(fid) for fid in rng.integers(1, 42, size=PROGRAM_LENGTH)])
        for _ in range(N_PROGRAMS)
    ]
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return programs, task.io_set


def _island_workload(seed: int = 17, n_parents: int = 8, n_generations: int = 8):
    """Concurrent GA islands mid-run: populations bred by crossover.

    Each island evolves for a few generations from an ``n_parents``-elite
    pool via single-cut crossover plus a 50% point mutation — the
    population shape the GA engine hands to the batch executor once
    islands have begun converging, where genes share crossover prefixes
    and the columnar trie collapses them.  Real NetSyn runs go for
    thousands of generations, so generation ``n_generations`` is still an
    early, conservatively diverse population.
    """
    fids = list(range(1, 42))
    programs = []
    for island in range(N_ISLANDS):
        rng = random.Random(100 + seed + island)
        pool = [[rng.choice(fids) for _ in range(PROGRAM_LENGTH)] for _ in range(n_parents)]
        for _ in range(n_generations):
            generation = []
            for _ in range(ISLAND_SIZE):
                a, b = rng.sample(pool, 2)
                cut = rng.randint(1, PROGRAM_LENGTH - 1)
                child = a[:cut] + b[cut:]
                if rng.random() < 0.5:
                    child[rng.randrange(PROGRAM_LENGTH)] = rng.choice(fids)
                generation.append(child)
            pool = generation[:n_parents]
        programs.extend(Program(tuple(child)) for child in generation)
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return programs, task.io_set


def _generation_stream(seed: int = 17, n_parents: int = 8, n_generations: int = 8):
    """The island workload's per-generation populations, in breeding order.

    Same breeding loop (and RNG stream) as :func:`_island_workload`, but
    every intermediate generation is kept: the warm-trie workload replays
    them in order against one persistent engine, the shape a live GA run
    presents — survivors recur verbatim and children extend prefixes the
    trie already holds.
    """
    fids = list(range(1, 42))
    generations: list = [[] for _ in range(n_generations)]
    for island in range(N_ISLANDS):
        rng = random.Random(100 + seed + island)
        pool = [[rng.choice(fids) for _ in range(PROGRAM_LENGTH)] for _ in range(n_parents)]
        for step in range(n_generations):
            generation = []
            for _ in range(ISLAND_SIZE):
                a, b = rng.sample(pool, 2)
                cut = rng.randint(1, PROGRAM_LENGTH - 1)
                child = a[:cut] + b[cut:]
                if rng.random() < 0.5:
                    child[rng.randrange(PROGRAM_LENGTH)] = rng.choice(fids)
                generation.append(child)
            pool = generation[:n_parents]
            generations[step].extend(Program(tuple(child)) for child in generation)
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return generations, task.io_set


def _checksum(outputs) -> int:
    """Cheap value-sensitive digest of one candidate's example outputs."""
    total = 0
    for value in outputs:
        if isinstance(value, int):
            total += value
        else:
            total += sum(value) + len(value)
    return total


def _time_strategy(evaluate, programs, io_set) -> tuple:
    """Total candidate evaluations per second for one strategy."""
    start = time.perf_counter()
    checksum = 0
    for _ in range(N_ROUNDS):
        for program in programs:
            outputs = evaluate(program, io_set)
            checksum += len(outputs)
    elapsed = time.perf_counter() - start
    candidates = N_PROGRAMS * N_ROUNDS
    return candidates / elapsed, elapsed, checksum


def _round_ratio(baseline_times: list, candidate_times: list) -> float:
    """Best per-round ``baseline / candidate`` time ratio.

    The two strategies run back-to-back inside each round, so both halves
    share that round's ambient load; the best round is the one least
    disturbed by transient noise — the ratio analogue of ``timeit``'s
    min-time rule.  Independent per-strategy minima would instead pair
    one strategy's quiet window with the other's noisy one.
    """
    return max(b / c for b, c in zip(baseline_times, candidate_times))


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_execution_throughput_compiled_and_cached():
    programs, io_set = _workload()

    # -- interpreted (seed behaviour): reference interpreter, no reuse ----
    reference = Interpreter(trace=False, compiled=False)

    def interpreted(program, io_set):
        return [reference.output_of(program, example.inputs) for example in io_set]

    interpreted_rate, interpreted_s, check_a = _time_strategy(interpreted, programs, io_set)

    # -- compiled: static argument binding, fresh compile cache -----------
    clear_compile_cache()
    fast = Interpreter(trace=False, compiled=True)

    def compiled(program, io_set):
        return [fast.output_of(program, example.inputs) for example in io_set]

    compiled_rate, compiled_s, check_b = _time_strategy(compiled, programs, io_set)

    # -- compiled + cached: the shared execution engine --------------------
    clear_compile_cache()
    engine = ExecutionEngine()

    def cached(program, io_set):
        return engine.outputs(program, io_set)

    cached_rate, cached_s, check_c = _time_strategy(cached, programs, io_set)

    assert check_a == check_b == check_c, "strategies must evaluate identical workloads"

    compiled_speedup = compiled_rate / interpreted_rate
    cached_speedup = cached_rate / interpreted_rate
    hit_rate = engine.stats.hit_rate

    print(
        f"\nExecution throughput ({N_PROGRAMS} genes x {N_ROUNDS} rounds x "
        f"{len(io_set)} examples, length {PROGRAM_LENGTH})"
    )
    print(f"  interpreted     : {interpreted_rate:10.0f} candidates/sec  ({interpreted_s:.3f}s)")
    print(
        f"  compiled        : {compiled_rate:10.0f} candidates/sec  "
        f"({compiled_s:.3f}s, {compiled_speedup:.2f}x)"
    )
    print(
        f"  compiled+cached : {cached_rate:10.0f} candidates/sec  "
        f"({cached_s:.3f}s, {cached_speedup:.2f}x, hit-rate {hit_rate:.2f})"
    )

    _append_trajectory(
        {
            "benchmark": "execution_throughput",
            "n_programs": N_PROGRAMS,
            "n_rounds": N_ROUNDS,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "interpreted_candidates_per_sec": interpreted_rate,
            "compiled_candidates_per_sec": compiled_rate,
            "cached_candidates_per_sec": cached_rate,
            "compiled_speedup": compiled_speedup,
            "cached_speedup": cached_speedup,
            "cache_hit_rate": hit_rate,
        }
    )

    # the GA re-evaluates survivors every generation, so the cache sees
    # (rounds - 1) / rounds of the workload again: hit-rate must reflect it
    assert hit_rate >= (N_ROUNDS - 1) / N_ROUNDS - 0.05
    # acceptance: compiled+cached execution is >= 3x the seed interpreter
    assert cached_speedup >= 3.0, (
        f"compiled+cached speedup {cached_speedup:.2f}x below the 3x target "
        f"(interpreted {interpreted_rate:.0f}/s vs cached {cached_rate:.0f}/s)"
    )


def test_vectorized_cold_throughput_vs_compiled():
    """Cold columnar batches vs the warm compiled per-candidate path.

    The vectorized engine is rebuilt every round with caching disabled
    (``max_entries=0``) so its hit-rate is exactly 0% — every candidate
    is executed.  The compiled baseline keeps a warm compile cache, its
    steady state inside a GA run.  The two strategies are interleaved
    round-by-round and the gate scores the best per-round ratio
    (:func:`_round_ratio`), so transient machine load cannot skew it.
    The gate is deliberately one-sided: even with zero reuse the columnar
    engine must not be slower than the per-candidate path it replaces.
    """
    programs, io_set = _island_workload()
    n = len(programs)
    rounds = max(1, N_ROUNDS)

    clear_compile_cache()
    fast = Interpreter(trace=False, compiled=True)

    def compiled_outputs(program):
        return [fast.output_of(program, example.inputs) for example in io_set]

    def cold_engine():
        return BatchExecutionEngine(cache=EvaluationCache(max_entries=0))

    # warm both paths once (compile cache / numpy allocators), and use the
    # warm pass to cross-check the two strategies value for value
    check_compiled = sum(_checksum(compiled_outputs(program)) for program in programs)
    check_vectorized = sum(
        _checksum(outputs) for outputs in cold_engine().outputs_batch(programs, io_set)
    )
    assert check_compiled == check_vectorized, (
        "vectorized outputs diverge from the compiled per-candidate path"
    )

    compiled_times: list = []
    vectorized_times: list = []
    kernel_stats: dict = {}
    for _ in range(rounds):
        start = time.perf_counter()
        for program in programs:
            compiled_outputs(program)
        compiled_times.append(time.perf_counter() - start)
        engine = cold_engine()
        start = time.perf_counter()
        engine.outputs_batch(programs, io_set)
        vectorized_times.append(time.perf_counter() - start)
        kernel_stats = engine.kernel_stats()

    compiled_s, vectorized_s = min(compiled_times), min(vectorized_times)
    compiled_rate = n / compiled_s
    vectorized_rate = n / vectorized_s

    vectorized_speedup = _round_ratio(compiled_times, vectorized_times)
    unique = len({program.function_ids for program in programs})

    print(
        f"\nVectorized cold throughput ({N_ISLANDS} islands x {ISLAND_SIZE} genes, "
        f"{unique} unique, best of {rounds} rounds x {len(io_set)} examples, "
        f"length {PROGRAM_LENGTH})"
    )
    print(f"  compiled (warm) : {compiled_rate:10.0f} candidates/sec  ({compiled_s:.3f}s/round)")
    print(
        f"  vectorized cold : {vectorized_rate:10.0f} candidates/sec  "
        f"({vectorized_s:.3f}s/round, {vectorized_speedup:.2f}x)"
    )

    _append_trajectory(
        {
            "benchmark": "vectorized_execution_throughput",
            "n_islands": N_ISLANDS,
            "island_size": ISLAND_SIZE,
            "n_unique_programs": unique,
            "n_rounds": rounds,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "compiled_candidates_per_sec": compiled_rate,
            "vectorized_candidates_per_sec": vectorized_rate,
            "vectorized_speedup": vectorized_speedup,
            "dispatch_count": kernel_stats.get("dispatch_count", 0),
            "fused_group_count": kernel_stats.get("fused_group_count", 0),
            "reuse_ratio": kernel_stats.get("reuse_ratio", 0.0),
        }
    )

    # CI gate: cold vectorized execution must never lose to the warm
    # per-candidate compiled path it replaces
    assert vectorized_speedup >= 1.0, (
        f"cold vectorized throughput {vectorized_rate:.0f}/s below compiled "
        f"{compiled_rate:.0f}/s ({vectorized_speedup:.2f}x)"
    )
    # acceptance (full GA-shaped scale only): >= 3x the compiled path
    if n >= 1000:
        assert vectorized_speedup >= 3.0, (
            f"vectorized speedup {vectorized_speedup:.2f}x below the 3x target "
            f"at full scale (n={n})"
        )


def test_warm_trie_throughput_vs_cold_columnar():
    """Generation-persistent trie vs a cold columnar rebuild per generation.

    The warm strategy keeps ONE engine (evaluation cache disabled, so
    every hit is the trie/leaf-memo's, never the value cache's) alive
    across an island run's successive generations: recurring survivors
    resolve through the leaf memo and children only insert their novel
    suffixes.  The cold strategy rebuilds a fresh columnar engine per
    generation — the pre-incremental behaviour.  Interleaved rounds,
    gated on the best per-round ratio (:func:`_round_ratio`), as in the
    cold-vectorized workload.
    """
    generations, io_set = _generation_stream()
    per_generation = N_ISLANDS * ISLAND_SIZE
    candidates = per_generation * len(generations)
    rounds = max(1, N_ROUNDS)

    def cold_engine():
        return BatchExecutionEngine(cache=EvaluationCache(max_entries=0))

    warm = cold_engine()  # persistent across generations *and* rounds

    # value cross-check doubles as the warm engine's first incremental pass
    for population in generations:
        check_cold = sum(
            _checksum(outputs)
            for outputs in cold_engine().outputs_batch(population, io_set)
        )
        check_warm = sum(
            _checksum(outputs) for outputs in warm.outputs_batch(population, io_set)
        )
        assert check_cold == check_warm, (
            "incremental-trie outputs diverge from a cold rebuild"
        )

    warm_times: list = []
    cold_times: list = []
    for _ in range(rounds):
        start = time.perf_counter()
        for population in generations:
            warm.outputs_batch(population, io_set)
        warm_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for population in generations:
            cold_engine().outputs_batch(population, io_set)
        cold_times.append(time.perf_counter() - start)

    warm_s, cold_s = min(warm_times), min(cold_times)
    warm_rate = candidates / warm_s
    cold_rate = candidates / cold_s
    warm_speedup = _round_ratio(cold_times, warm_times)
    kernel = warm.kernel_stats()

    print(
        f"\nWarm-trie throughput ({N_ISLANDS} islands x {ISLAND_SIZE} genes x "
        f"{len(generations)} generations, best of {rounds} rounds x "
        f"{len(io_set)} examples, length {PROGRAM_LENGTH})"
    )
    print(f"  cold columnar   : {cold_rate:10.0f} candidates/sec  ({cold_s:.3f}s/round)")
    print(
        f"  warm trie       : {warm_rate:10.0f} candidates/sec  "
        f"({warm_s:.3f}s/round, {warm_speedup:.2f}x, "
        f"reuse {kernel['reuse_ratio']:.2f})"
    )

    _append_trajectory(
        {
            "benchmark": "warm_trie_throughput",
            "n_islands": N_ISLANDS,
            "island_size": ISLAND_SIZE,
            "n_generations": len(generations),
            "n_rounds": rounds,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "cold_candidates_per_sec": cold_rate,
            "warm_candidates_per_sec": warm_rate,
            "warm_trie_speedup": warm_speedup,
            "dispatch_count": kernel.get("dispatch_count", 0),
            "fused_group_count": kernel.get("fused_group_count", 0),
            "reuse_ratio": kernel.get("reuse_ratio", 0.0),
            "trie_leaf_hits": kernel.get("trie_leaf_hits", 0),
            "trie_nodes_inserted": kernel.get("trie_nodes_inserted", 0),
        }
    )

    # CI gate (any scale): keeping the trie alive must never lose to
    # rebuilding it from scratch every generation
    assert warm_speedup >= 1.0, (
        f"warm-trie throughput {warm_rate:.0f}/s below cold columnar "
        f"{cold_rate:.0f}/s ({warm_speedup:.2f}x)"
    )
    # acceptance (full converged-islands scale): >= 1.5x cold columnar
    if per_generation >= 1000:
        assert warm_speedup >= 1.5, (
            f"warm-trie speedup {warm_speedup:.2f}x below the 1.5x target "
            f"at full scale (population={per_generation})"
        )


def test_fused_jobs_shared_dispatches():
    """Two same-inputs jobs through one fusion plane vs private evaluators.

    The timed comparison models the plane's combined call without thread
    scheduling noise: one evaluator dispatching the concatenated
    populations (their tries merge, shared prefixes dispatch once)
    versus a private evaluator per job.  A threaded pass through the
    real :class:`FusionPlane` cross-checks row ownership and records the
    ``fused_dispatches`` each job observes.
    """
    pop_a, io_set = _island_workload(seed=17)
    pop_b, _ = _island_workload(seed=29)
    example_inputs = [example.inputs for example in io_set]
    rounds = max(1, N_ROUNDS)
    candidates = len(pop_a) + len(pop_b)

    # -- correctness through the real rendezvous ------------------------
    plane = FusionPlane(example_inputs, max_wait=5.0)
    tokens = {plane.register(): pop for pop in (pop_a, pop_b)}
    rows: dict = {}

    def job(token, population):
        rows[token] = plane.evaluate(token, "outputs", population)
        plane.unregister(token)

    threads = [
        threading.Thread(target=job, args=(token, population))
        for token, population in tokens.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    control = ColumnarEvaluator(example_inputs)
    for token, population in tokens.items():
        assert rows[token] == control.outputs(population), (
            "fused rows diverge from a private evaluation"
        )
    plane_fused = min(plane.fused_dispatches(token) for token in tokens)
    assert plane_fused > 0, "concurrent same-inputs jobs never shared a dispatch"

    # -- timed: combined dispatch vs per-job evaluators -----------------
    separate_times: list = []
    fused_times: list = []
    separate_dispatches = fused_dispatches = 0
    for _ in range(rounds):
        evaluators = [ColumnarEvaluator(example_inputs) for _ in range(2)]
        start = time.perf_counter()
        evaluators[0].outputs(pop_a)
        evaluators[1].outputs(pop_b)
        separate_times.append(time.perf_counter() - start)
        separate_dispatches = sum(
            evaluator.stats()["dispatch_count"] for evaluator in evaluators
        )
        shared = ColumnarEvaluator(example_inputs)
        start = time.perf_counter()
        shared.outputs(list(pop_a) + list(pop_b))
        fused_times.append(time.perf_counter() - start)
        fused_dispatches = shared.stats()["dispatch_count"]

    separate_s, fused_s = min(separate_times), min(fused_times)
    fused_speedup = _round_ratio(separate_times, fused_times)
    savings = 1.0 - fused_dispatches / max(1, separate_dispatches)

    print(
        f"\nFused-jobs dispatch sharing (2 jobs x {len(pop_a)} genes, best of "
        f"{rounds} rounds x {len(io_set)} examples, length {PROGRAM_LENGTH})"
    )
    print(
        f"  separate        : {candidates / separate_s:10.0f} candidates/sec  "
        f"({separate_s:.3f}s/round, {separate_dispatches} dispatches)"
    )
    print(
        f"  fused           : {candidates / fused_s:10.0f} candidates/sec  "
        f"({fused_s:.3f}s/round, {fused_dispatches} dispatches, "
        f"{fused_speedup:.2f}x, {savings:.1%} fewer dispatches)"
    )

    _append_trajectory(
        {
            "benchmark": "fused_jobs_dispatch_sharing",
            "n_jobs": 2,
            "population_size": len(pop_a),
            "n_rounds": rounds,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "separate_candidates_per_sec": candidates / separate_s,
            "fused_candidates_per_sec": candidates / fused_s,
            "fused_speedup": fused_speedup,
            "separate_dispatch_count": separate_dispatches,
            "fused_dispatch_count": fused_dispatches,
            "dispatch_savings": savings,
            "plane_fused_dispatches": plane_fused,
        }
    )

    # CI gate: fusing must strictly reduce kernel dispatches.  This is
    # deterministic (the union trie shares prefix nodes), unlike the
    # wall-clock ratio of two sub-50ms passes, which is recorded as
    # telemetry above but too load-sensitive to gate on.
    assert fused_dispatches < separate_dispatches, (
        f"fused dispatch count {fused_dispatches} not below separate "
        f"{separate_dispatches}"
    )
