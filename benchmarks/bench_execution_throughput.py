"""Execution-engine throughput: interpreted vs compiled vs compiled+cached.

Phase 2 spends essentially all of its time executing candidate programs,
so candidates/second through the execution layer bounds end-to-end search
throughput.  This benchmark replays a GA-shaped workload — a pool of
distinct genes evaluated repeatedly across generations (solution check +
fitness scoring re-executions) — through the three execution strategies:

* **interpreted** — the seed implementation: reference interpreter with a
  backwards type-scan per argument, no reuse;
* **compiled**    — compile-once static argument binding
  (:mod:`repro.dsl.compiler`), no reuse;
* **compiled+cached** — the :class:`~repro.execution.ExecutionEngine`
  used by the GA engine and fitness functions, which memoizes executions
  per (program, io_set).

Results (candidates/sec, speedups, cache hit-rate) are appended to
``BENCH_execution_throughput.json`` at the repository root so the
trajectory across PRs is preserved.

Scale knobs: ``NETSYN_BENCH_PROGRAMS`` (distinct genes, default 60),
``NETSYN_BENCH_ROUNDS`` (re-evaluations per gene, default 5).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.dsl import Interpreter, Program, clear_compile_cache
from repro.data import make_synthesis_task
from repro.execution import ExecutionEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_execution_throughput.json"

N_PROGRAMS = int(os.environ.get("NETSYN_BENCH_PROGRAMS", "60"))
N_ROUNDS = int(os.environ.get("NETSYN_BENCH_ROUNDS", "5"))
PROGRAM_LENGTH = 5


def _workload(seed: int = 17):
    """A GA-shaped workload: distinct genes + an IO specification."""
    rng = np.random.default_rng(seed)
    programs = [
        Program([int(fid) for fid in rng.integers(1, 42, size=PROGRAM_LENGTH)])
        for _ in range(N_PROGRAMS)
    ]
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return programs, task.io_set


def _time_strategy(evaluate, programs, io_set) -> tuple:
    """Total candidate evaluations per second for one strategy."""
    start = time.perf_counter()
    checksum = 0
    for _ in range(N_ROUNDS):
        for program in programs:
            outputs = evaluate(program, io_set)
            checksum += len(outputs)
    elapsed = time.perf_counter() - start
    candidates = N_PROGRAMS * N_ROUNDS
    return candidates / elapsed, elapsed, checksum


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_execution_throughput_compiled_and_cached():
    programs, io_set = _workload()

    # -- interpreted (seed behaviour): reference interpreter, no reuse ----
    reference = Interpreter(trace=False, compiled=False)

    def interpreted(program, io_set):
        return [reference.output_of(program, example.inputs) for example in io_set]

    interpreted_rate, interpreted_s, check_a = _time_strategy(interpreted, programs, io_set)

    # -- compiled: static argument binding, fresh compile cache -----------
    clear_compile_cache()
    fast = Interpreter(trace=False, compiled=True)

    def compiled(program, io_set):
        return [fast.output_of(program, example.inputs) for example in io_set]

    compiled_rate, compiled_s, check_b = _time_strategy(compiled, programs, io_set)

    # -- compiled + cached: the shared execution engine --------------------
    clear_compile_cache()
    engine = ExecutionEngine()

    def cached(program, io_set):
        return engine.outputs(program, io_set)

    cached_rate, cached_s, check_c = _time_strategy(cached, programs, io_set)

    assert check_a == check_b == check_c, "strategies must evaluate identical workloads"

    compiled_speedup = compiled_rate / interpreted_rate
    cached_speedup = cached_rate / interpreted_rate
    hit_rate = engine.stats.hit_rate

    print(
        f"\nExecution throughput ({N_PROGRAMS} genes x {N_ROUNDS} rounds x "
        f"{len(io_set)} examples, length {PROGRAM_LENGTH})"
    )
    print(f"  interpreted     : {interpreted_rate:10.0f} candidates/sec  ({interpreted_s:.3f}s)")
    print(
        f"  compiled        : {compiled_rate:10.0f} candidates/sec  "
        f"({compiled_s:.3f}s, {compiled_speedup:.2f}x)"
    )
    print(
        f"  compiled+cached : {cached_rate:10.0f} candidates/sec  "
        f"({cached_s:.3f}s, {cached_speedup:.2f}x, hit-rate {hit_rate:.2f})"
    )

    _append_trajectory(
        {
            "benchmark": "execution_throughput",
            "n_programs": N_PROGRAMS,
            "n_rounds": N_ROUNDS,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "interpreted_candidates_per_sec": interpreted_rate,
            "compiled_candidates_per_sec": compiled_rate,
            "cached_candidates_per_sec": cached_rate,
            "compiled_speedup": compiled_speedup,
            "cached_speedup": cached_speedup,
            "cache_hit_rate": hit_rate,
        }
    )

    # the GA re-evaluates survivors every generation, so the cache sees
    # (rounds - 1) / rounds of the workload again: hit-rate must reflect it
    assert hit_rate >= (N_ROUNDS - 1) / N_ROUNDS - 0.05
    # acceptance: compiled+cached execution is >= 3x the seed interpreter
    assert cached_speedup >= 3.0, (
        f"compiled+cached speedup {cached_speedup:.2f}x below the 3x target "
        f"(interpreted {interpreted_rate:.0f}/s vs cached {cached_rate:.0f}/s)"
    )
