"""Execution-engine throughput: interpreted vs compiled vs compiled+cached.

Phase 2 spends essentially all of its time executing candidate programs,
so candidates/second through the execution layer bounds end-to-end search
throughput.  This benchmark replays a GA-shaped workload — a pool of
distinct genes evaluated repeatedly across generations (solution check +
fitness scoring re-executions) — through the three execution strategies:

* **interpreted** — the seed implementation: reference interpreter with a
  backwards type-scan per argument, no reuse;
* **compiled**    — compile-once static argument binding
  (:mod:`repro.dsl.compiler`), no reuse;
* **compiled+cached** — the :class:`~repro.execution.ExecutionEngine`
  used by the GA engine and fitness functions, which memoizes executions
  per (program, io_set).

Results (candidates/sec, speedups, cache hit-rate) are appended to
``BENCH_execution_throughput.json`` at the repository root so the
trajectory across PRs is preserved.

A second workload measures the **vectorized** columnar engine
(:class:`~repro.execution.BatchExecutionEngine`) against the compiled
per-candidate baseline on the population shape it was built for:
many concurrent GA islands whose genes share crossover prefixes.  The
vectorized engine is timed *cold* — a fresh engine with caching disabled
every round, so every candidate is a cache miss — and must still beat
the warm compiled path.

Scale knobs: ``NETSYN_BENCH_PROGRAMS`` (distinct genes, default 60),
``NETSYN_BENCH_ROUNDS`` (re-evaluations per gene, default 5),
``NETSYN_BENCH_ISLANDS`` x ``NETSYN_BENCH_ISLAND_SIZE`` (vectorized
workload, default 10 x 100).
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import numpy as np

from repro.dsl import Interpreter, Program, clear_compile_cache
from repro.data import make_synthesis_task
from repro.execution import BatchExecutionEngine, EvaluationCache, ExecutionEngine

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_execution_throughput.json"

N_PROGRAMS = int(os.environ.get("NETSYN_BENCH_PROGRAMS", "60"))
N_ROUNDS = int(os.environ.get("NETSYN_BENCH_ROUNDS", "5"))
N_ISLANDS = int(os.environ.get("NETSYN_BENCH_ISLANDS", "10"))
ISLAND_SIZE = int(os.environ.get("NETSYN_BENCH_ISLAND_SIZE", "100"))
PROGRAM_LENGTH = 5


def _workload(seed: int = 17):
    """A GA-shaped workload: distinct genes + an IO specification."""
    rng = np.random.default_rng(seed)
    programs = [
        Program([int(fid) for fid in rng.integers(1, 42, size=PROGRAM_LENGTH)])
        for _ in range(N_PROGRAMS)
    ]
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return programs, task.io_set


def _island_workload(seed: int = 17, n_parents: int = 8, n_generations: int = 8):
    """Concurrent GA islands mid-run: populations bred by crossover.

    Each island evolves for a few generations from an ``n_parents``-elite
    pool via single-cut crossover plus a 50% point mutation — the
    population shape the GA engine hands to the batch executor once
    islands have begun converging, where genes share crossover prefixes
    and the columnar trie collapses them.  Real NetSyn runs go for
    thousands of generations, so generation ``n_generations`` is still an
    early, conservatively diverse population.
    """
    fids = list(range(1, 42))
    programs = []
    for island in range(N_ISLANDS):
        rng = random.Random(100 + seed + island)
        pool = [[rng.choice(fids) for _ in range(PROGRAM_LENGTH)] for _ in range(n_parents)]
        for _ in range(n_generations):
            generation = []
            for _ in range(ISLAND_SIZE):
                a, b = rng.sample(pool, 2)
                cut = rng.randint(1, PROGRAM_LENGTH - 1)
                child = a[:cut] + b[cut:]
                if rng.random() < 0.5:
                    child[rng.randrange(PROGRAM_LENGTH)] = rng.choice(fids)
                generation.append(child)
            pool = generation[:n_parents]
        programs.extend(Program(tuple(child)) for child in generation)
    task = make_synthesis_task(length=PROGRAM_LENGTH, seed=seed)
    return programs, task.io_set


def _checksum(outputs) -> int:
    """Cheap value-sensitive digest of one candidate's example outputs."""
    total = 0
    for value in outputs:
        if isinstance(value, int):
            total += value
        else:
            total += sum(value) + len(value)
    return total


def _time_strategy(evaluate, programs, io_set) -> tuple:
    """Total candidate evaluations per second for one strategy."""
    start = time.perf_counter()
    checksum = 0
    for _ in range(N_ROUNDS):
        for program in programs:
            outputs = evaluate(program, io_set)
            checksum += len(outputs)
    elapsed = time.perf_counter() - start
    candidates = N_PROGRAMS * N_ROUNDS
    return candidates / elapsed, elapsed, checksum


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_execution_throughput_compiled_and_cached():
    programs, io_set = _workload()

    # -- interpreted (seed behaviour): reference interpreter, no reuse ----
    reference = Interpreter(trace=False, compiled=False)

    def interpreted(program, io_set):
        return [reference.output_of(program, example.inputs) for example in io_set]

    interpreted_rate, interpreted_s, check_a = _time_strategy(interpreted, programs, io_set)

    # -- compiled: static argument binding, fresh compile cache -----------
    clear_compile_cache()
    fast = Interpreter(trace=False, compiled=True)

    def compiled(program, io_set):
        return [fast.output_of(program, example.inputs) for example in io_set]

    compiled_rate, compiled_s, check_b = _time_strategy(compiled, programs, io_set)

    # -- compiled + cached: the shared execution engine --------------------
    clear_compile_cache()
    engine = ExecutionEngine()

    def cached(program, io_set):
        return engine.outputs(program, io_set)

    cached_rate, cached_s, check_c = _time_strategy(cached, programs, io_set)

    assert check_a == check_b == check_c, "strategies must evaluate identical workloads"

    compiled_speedup = compiled_rate / interpreted_rate
    cached_speedup = cached_rate / interpreted_rate
    hit_rate = engine.stats.hit_rate

    print(
        f"\nExecution throughput ({N_PROGRAMS} genes x {N_ROUNDS} rounds x "
        f"{len(io_set)} examples, length {PROGRAM_LENGTH})"
    )
    print(f"  interpreted     : {interpreted_rate:10.0f} candidates/sec  ({interpreted_s:.3f}s)")
    print(
        f"  compiled        : {compiled_rate:10.0f} candidates/sec  "
        f"({compiled_s:.3f}s, {compiled_speedup:.2f}x)"
    )
    print(
        f"  compiled+cached : {cached_rate:10.0f} candidates/sec  "
        f"({cached_s:.3f}s, {cached_speedup:.2f}x, hit-rate {hit_rate:.2f})"
    )

    _append_trajectory(
        {
            "benchmark": "execution_throughput",
            "n_programs": N_PROGRAMS,
            "n_rounds": N_ROUNDS,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "interpreted_candidates_per_sec": interpreted_rate,
            "compiled_candidates_per_sec": compiled_rate,
            "cached_candidates_per_sec": cached_rate,
            "compiled_speedup": compiled_speedup,
            "cached_speedup": cached_speedup,
            "cache_hit_rate": hit_rate,
        }
    )

    # the GA re-evaluates survivors every generation, so the cache sees
    # (rounds - 1) / rounds of the workload again: hit-rate must reflect it
    assert hit_rate >= (N_ROUNDS - 1) / N_ROUNDS - 0.05
    # acceptance: compiled+cached execution is >= 3x the seed interpreter
    assert cached_speedup >= 3.0, (
        f"compiled+cached speedup {cached_speedup:.2f}x below the 3x target "
        f"(interpreted {interpreted_rate:.0f}/s vs cached {cached_rate:.0f}/s)"
    )


def test_vectorized_cold_throughput_vs_compiled():
    """Cold columnar batches vs the warm compiled per-candidate path.

    The vectorized engine is rebuilt every round with caching disabled
    (``max_entries=0``) so its hit-rate is exactly 0% — every candidate
    is executed.  The compiled baseline keeps a warm compile cache, its
    steady state inside a GA run.  The two strategies are interleaved
    round-by-round and scored on their best round (``timeit``-style
    minimum), so transient machine load cannot skew the ratio.  The gate
    is deliberately one-sided: even with zero reuse the columnar engine
    must not be slower than the per-candidate path it replaces.
    """
    programs, io_set = _island_workload()
    n = len(programs)
    rounds = max(1, N_ROUNDS)

    clear_compile_cache()
    fast = Interpreter(trace=False, compiled=True)

    def compiled_outputs(program):
        return [fast.output_of(program, example.inputs) for example in io_set]

    def cold_engine():
        return BatchExecutionEngine(cache=EvaluationCache(max_entries=0))

    # warm both paths once (compile cache / numpy allocators), and use the
    # warm pass to cross-check the two strategies value for value
    check_compiled = sum(_checksum(compiled_outputs(program)) for program in programs)
    check_vectorized = sum(
        _checksum(outputs) for outputs in cold_engine().outputs_batch(programs, io_set)
    )
    assert check_compiled == check_vectorized, (
        "vectorized outputs diverge from the compiled per-candidate path"
    )

    compiled_times: list = []
    vectorized_times: list = []
    for _ in range(rounds):
        start = time.perf_counter()
        for program in programs:
            compiled_outputs(program)
        compiled_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        cold_engine().outputs_batch(programs, io_set)
        vectorized_times.append(time.perf_counter() - start)

    compiled_s, vectorized_s = min(compiled_times), min(vectorized_times)
    compiled_rate = n / compiled_s
    vectorized_rate = n / vectorized_s

    vectorized_speedup = vectorized_rate / compiled_rate
    unique = len({program.function_ids for program in programs})

    print(
        f"\nVectorized cold throughput ({N_ISLANDS} islands x {ISLAND_SIZE} genes, "
        f"{unique} unique, best of {rounds} rounds x {len(io_set)} examples, "
        f"length {PROGRAM_LENGTH})"
    )
    print(f"  compiled (warm) : {compiled_rate:10.0f} candidates/sec  ({compiled_s:.3f}s/round)")
    print(
        f"  vectorized cold : {vectorized_rate:10.0f} candidates/sec  "
        f"({vectorized_s:.3f}s/round, {vectorized_speedup:.2f}x)"
    )

    _append_trajectory(
        {
            "benchmark": "vectorized_execution_throughput",
            "n_islands": N_ISLANDS,
            "island_size": ISLAND_SIZE,
            "n_unique_programs": unique,
            "n_rounds": rounds,
            "n_examples": len(io_set),
            "program_length": PROGRAM_LENGTH,
            "compiled_candidates_per_sec": compiled_rate,
            "vectorized_candidates_per_sec": vectorized_rate,
            "vectorized_speedup": vectorized_speedup,
        }
    )

    # CI gate: cold vectorized execution must never lose to the warm
    # per-candidate compiled path it replaces
    assert vectorized_speedup >= 1.0, (
        f"cold vectorized throughput {vectorized_rate:.0f}/s below compiled "
        f"{compiled_rate:.0f}/s ({vectorized_speedup:.2f}x)"
    )
    # acceptance (full GA-shaped scale only): >= 3x the compiled path
    if n >= 1000:
        assert vectorized_speedup >= 3.0, (
            f"vectorized speedup {vectorized_speedup:.2f}x below the 3x target "
            f"at full scale (n={n})"
        )
