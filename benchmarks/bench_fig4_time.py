"""Figure 4(g)-(i): synthesis time vs. percentage of programs synthesized.

Wall-clock numbers are machine-dependent (the paper makes the same
caveat); the *relative ordering* — enumerative baselines find their easy
programs fastest, the oracle is nearly instant, NetSyn pays a per-
generation neural-network cost — is the shape being reproduced.
"""

from repro.evaluation.figures import fig4_time_series


def test_fig4_time(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods
    length = bench_report.lengths[0]

    series = benchmark(lambda: fig4_time_series(records, methods, length))

    print(f"\nFigure 4(g-i) data — program length {length}")
    print("(x = % of test programs synthesized, y = synthesis time in seconds)")
    for method, (x, y) in sorted(series.items()):
        if len(x) == 0:
            print(f"  {method:12s}: no programs synthesized within the budget")
            continue
        points = ", ".join(f"({px:.0f}%, {py:.2f}s)" for px, py in zip(x, y))
        print(f"  {method:12s}: {points}")
    assert set(series) == set(methods)
