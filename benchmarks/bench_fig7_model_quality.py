"""Figure 7: quality of the learned fitness models.

(a)/(b): confusion matrices of the CF and LCS trace models on held-out
validation data — the paper highlights that candidates whose true fitness
is high are predicted high with probability ~0.7.
(c): the FP model's positive-prediction accuracy over training epochs.
"""

import numpy as np

from repro.core.phase1 import train_fp_model, train_trace_model
from repro.data.corpus import CorpusBuilder
from repro.evaluation.confusion import close_prediction_rate
from repro.evaluation.figures import fig7_model_quality
from repro.fitness.datasets import TraceFitnessDataset


def test_fig7_model_quality(benchmark, bench_config):
    training, nn, dsl = bench_config.training, bench_config.nn, bench_config.dsl

    cf = train_trace_model(kind="cf", training=training, nn=nn, dsl=dsl)
    lcs = train_trace_model(kind="lcs", training=training, nn=nn, dsl=dsl)
    fp = train_fp_model(training=training, nn=nn, dsl=dsl)

    # held-out labelled data from a different corpus seed
    import dataclasses

    held_out_cfg = dataclasses.replace(training, seed=training.seed + 900)
    builder = CorpusBuilder(training=held_out_cfg, dsl=dsl)
    validation = {
        "cf": TraceFitnessDataset(builder.build_trace_samples(kind="cf", count=120), cf.encoder),
        "lcs": TraceFitnessDataset(builder.build_trace_samples(kind="lcs", count=120), lcs.encoder),
    }

    output = benchmark.pedantic(
        lambda: fig7_model_quality({"cf": cf.model, "lcs": lcs.model}, validation, fp_history=fp.history),
        rounds=1,
        iterations=1,
    )

    for kind in ("cf", "lcs"):
        matrix = output[f"confusion_{kind}"]
        print(f"\nFigure 7 — {kind.upper()} confusion matrix (rows = true value):")
        for row_index, row in enumerate(matrix):
            print(f"  true={row_index}: " + " ".join(f"{v:.2f}" for v in row))
        high = matrix.shape[0] - 2
        print(f"  P(predicted >= {high} | true >= {high}) = {close_prediction_rate(matrix, high):.2f}")
        assert matrix.shape[0] == training.program_length + 1
        assert np.all(matrix >= 0) and np.all(matrix <= 1.000001)

    accuracy = output["fp_accuracy_over_epochs"]
    print("\nFigure 7(c) — FP positive-prediction accuracy over epochs:")
    print("  " + " ".join(f"{v:.2f}" for v in accuracy))
    print("Expected shape (paper): accuracy rises over epochs towards a high "
          "plateau (~0.9 at paper scale).")
    assert len(accuracy) == training.epochs
