"""Table 4: search space used to synthesize each percentile of programs."""

from repro.evaluation.tables import format_percentile_table


def test_table4_search_space(benchmark, bench_report):
    records = bench_report.records
    methods = bench_report.methods
    lengths = bench_report.lengths

    table = benchmark(
        lambda: format_percentile_table(records, methods, lengths, metric="search_space")
    )
    print("\nTable 4 (fraction of the candidate budget used per percentile):")
    print(table)
    assert all(method in table for method in methods)
