"""Cache-tier costs: L3 append vs whole-file rewrite, L2 table throughput.

The L3 tier replaced the whole-file ``cache_snapshots.pkl`` rewrite with
an append-only segment log: persisting after a run now costs O(new
entries) instead of O(accumulated cache).  This benchmark measures both
ways at a configurable cache size, plus the raw put/get throughput of
the L2 shared mmap table (:class:`~repro.execution.SharedScoreTable`).

Results are appended to ``BENCH_cache_tiers.json`` at the repository
root so the trajectory across PRs is preserved.

Scale knobs: ``NETSYN_BENCH_CACHE_ENTRIES`` (accumulated entries,
default 50000), ``NETSYN_BENCH_DIRTY_FRACTION`` (per-run new-entry
fraction, default 0.01), ``NETSYN_BENCH_TABLE_OPS`` (L2 ops, default
20000).
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path

from repro.core.artifacts import CACHE_SNAPSHOTS_FILE, ArtifactStore
from repro.execution.shared_table import SharedScoreTable, io_token, structural_key64

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_cache_tiers.json"

N_ENTRIES = int(os.environ.get("NETSYN_BENCH_CACHE_ENTRIES", "50000"))
DIRTY_FRACTION = float(os.environ.get("NETSYN_BENCH_DIRTY_FRACTION", "0.01"))
TABLE_OPS = int(os.environ.get("NETSYN_BENCH_TABLE_OPS", "20000"))
ROUNDS = 8


def _entries(start: int, count: int) -> list:
    """Synthetic structural score entries shaped like the real ones."""
    return [
        (((start + i, 7, 3, 1), ((1, 2, 3), (4, 5, 6))), float(start + i) / 7.0)
        for i in range(count)
    ]


def _legacy_rewrite(directory: Path, store: ArtifactStore, snapshots: dict) -> None:
    """The pre-log persistence: pickle the whole accumulated cache."""
    payload = {
        "format_version": 1,
        "model_hash": store.model_hash(),
        "snapshots": snapshots,
    }
    with (directory / CACHE_SNAPSHOTS_FILE).open("wb") as handle:
        pickle.dump(payload, handle)


def _append_trajectory(record: dict) -> None:
    history = []
    if TRAJECTORY_PATH.exists():
        try:
            history = json.loads(TRAJECTORY_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def test_l3_append_vs_whole_file_rewrite():
    store = ArtifactStore()  # empty store: a stable model hash, no training
    dirty = max(1, int(N_ENTRIES * DIRTY_FRACTION))
    base = _entries(0, N_ENTRIES)
    workdir = Path(tempfile.mkdtemp(prefix="netsyn-bench-tiers-"))
    try:
        # -- legacy: every "run" rewrites base + everything so far ------
        legacy_dir = workdir / "legacy"
        legacy_dir.mkdir()
        accumulated = list(base)
        start = time.perf_counter()
        for round_index in range(ROUNDS):
            accumulated += _entries(N_ENTRIES + round_index * dirty, dirty)
            _legacy_rewrite(
                legacy_dir, store, {"netsyn_cf:None": {"scores": accumulated}}
            )
        legacy_elapsed = (time.perf_counter() - start) / ROUNDS

        # -- L3: seed once, then append only each run's dirty entries
        # (threshold kept above ROUNDS so compaction is timed separately)
        log_dir = workdir / "log"
        log_dir.mkdir()
        store.save_caches(log_dir, {"netsyn_cf:None": {"scores": base}})
        start = time.perf_counter()
        for round_index in range(ROUNDS):
            delta = _entries(N_ENTRIES + round_index * dirty, dirty)
            store.save_caches(
                log_dir,
                {"netsyn_cf:None": {"scores": delta}},
                compact_threshold=ROUNDS + 2,
            )
        append_elapsed = (time.perf_counter() - start) / ROUNDS

        # the occasional cost appends amortize: folding the whole log
        start = time.perf_counter()
        store.compact_cache_log(log_dir)
        compact_elapsed = time.perf_counter() - start

        # the log still reloads to the same contents the rewrite holds
        merged = store.load_caches(log_dir)
        assert len(merged["netsyn_cf:None"]["scores"]) == N_ENTRIES + ROUNDS * dirty

        # -- L2: raw shared-table throughput ----------------------------
        # size the table to a <50% load factor so probe chains stay short
        table = SharedScoreTable.create(
            workdir / "scores.bin", n_slots=1 << max(TABLE_OPS.bit_length() + 1, 10)
        )
        token = io_token(((1, 2, 3), (4, 5, 6)))
        keys = [structural_key64((i,), token) for i in range(TABLE_OPS)]
        start = time.perf_counter()
        for index, key in enumerate(keys):
            table.put(key, float(index))
        put_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        for key in keys:
            table.get(key)
        get_elapsed = time.perf_counter() - start
        assert table.stats.hits == TABLE_OPS
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cache_entries": N_ENTRIES,
        "dirty_entries_per_run": dirty,
        "rounds": ROUNDS,
        "legacy_rewrite_seconds_per_run": legacy_elapsed,
        "l3_append_seconds_per_run": append_elapsed,
        "l3_compaction_seconds": compact_elapsed,
        "append_speedup_vs_rewrite": legacy_elapsed / append_elapsed,
        "l2_table_ops": TABLE_OPS,
        "l2_puts_per_second": TABLE_OPS / put_elapsed,
        "l2_gets_per_second": TABLE_OPS / get_elapsed,
    }
    _append_trajectory(record)
    print(json.dumps(record, indent=2))

    # Regression gate: appending a 1% delta must beat rewriting the
    # whole accumulated cache comfortably, even on noisy runners.
    assert append_elapsed < legacy_elapsed, (
        f"L3 append ({append_elapsed:.4f}s) is not cheaper than the "
        f"whole-file rewrite ({legacy_elapsed:.4f}s)"
    )


if __name__ == "__main__":
    test_l3_append_vs_whole_file_rewrite()
